//! The dispatcher routing table (gridt index).
//!
//! Section IV-C: instead of traversing the kdt-tree for every tuple, the
//! dispatcher keeps a **gridt** index — a uniform grid in which every cell
//! stores two hash maps: `H1` maps terms of the complete term set to worker
//! ids, and `H2` maps terms appearing in registered STS queries to worker
//! ids. Objects are routed by looking up their terms in `H2` of their cell
//! (and discarded when no term is present); query insertions/deletions are
//! routed by looking up the least frequent keyword of each conjunction in
//! `H1` of every overlapped cell, updating `H2` along the way.
//!
//! [`RoutingTable`] is that structure, generalized so that the same type can
//! express the output of every partitioning strategy:
//!
//! * space partitioning — every cell routes to a single worker,
//! * text partitioning — every cell shares one global term→worker map,
//! * hybrid partitioning — a mix of both, some cells having their own
//!   term→worker map.

use crate::registry::TermRegistry;
use ps2stream_geo::{CellId, Rect, UniformGrid};
use ps2stream_model::{SpatioTextualObject, StsQuery, WorkerId};
use ps2stream_text::{TermId, TermStats};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A term → worker mapping with a default worker for unmapped terms.
#[derive(Debug, Clone, PartialEq)]
pub struct TermRouting {
    map: HashMap<TermId, WorkerId>,
    default: WorkerId,
}

impl TermRouting {
    /// Creates a term routing with an explicit map and default worker.
    pub fn new(map: HashMap<TermId, WorkerId>, default: WorkerId) -> Self {
        Self { map, default }
    }

    /// The worker responsible for a term.
    #[inline]
    pub fn worker_for(&self, term: TermId) -> WorkerId {
        self.map.get(&term).copied().unwrap_or(self.default)
    }

    /// Reassigns a single term to a worker.
    pub fn assign(&mut self, term: TermId, worker: WorkerId) {
        self.map.insert(term, worker);
    }

    /// Number of explicitly mapped terms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if no term is explicitly mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The default worker used for unmapped terms.
    pub fn default_worker(&self) -> WorkerId {
        self.default
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.map.len()
                * (std::mem::size_of::<TermId>() + std::mem::size_of::<WorkerId>() + 16)
    }

    /// Distinct workers referenced by the mapping (including the default).
    pub fn workers(&self) -> HashSet<WorkerId> {
        let mut out: HashSet<WorkerId> = self.map.values().copied().collect();
        out.insert(self.default);
        out
    }
}

/// How one grid cell routes tuples to workers (the per-cell `H1`).
#[derive(Debug, Clone)]
pub enum CellRouting {
    /// The whole cell is assigned to a single worker (space partitioning).
    Single(WorkerId),
    /// The cell routes by term using a map shared with other cells (global
    /// text partitioning). Shared maps are counted once in memory accounting.
    SharedTerms(Arc<TermRouting>),
    /// The cell routes by term using its own map (hybrid partitioning or a
    /// cell that was text-split by the dynamic load adjustment).
    OwnedTerms(TermRouting),
}

impl CellRouting {
    /// The worker responsible for a term in this cell.
    #[inline]
    pub fn worker_for(&self, term: TermId) -> WorkerId {
        match self {
            CellRouting::Single(w) => *w,
            CellRouting::SharedTerms(r) => r.worker_for(term),
            CellRouting::OwnedTerms(r) => r.worker_for(term),
        }
    }

    /// Returns true if the cell is text-partitioned (routes by term).
    pub fn is_text_partitioned(&self) -> bool {
        !matches!(self, CellRouting::Single(_))
    }
}

/// The dispatcher routing table: a uniform grid of [`CellRouting`]s plus the
/// per-cell `H2` query-term filters.
///
/// The `H2` filters live in a sharded, read-mostly [`TermRegistry`], so
/// [`RoutingTable::route_insert`] takes `&self`: several dispatcher executors
/// sharing this table behind an `RwLock` route objects, insertions **and**
/// deletions under read locks; the table-level write lock is only needed for
/// the control-path mutations of the dynamic load adjustment
/// ([`RoutingTable::reassign_cell`], [`RoutingTable::split_cell_by_terms`]).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    grid: UniformGrid,
    cells: Vec<CellRouting>,
    /// `H2`: for each cell, the terms under which at least one registered
    /// query is posted. Objects containing none of these terms are discarded.
    query_terms: TermRegistry,
    num_workers: usize,
    /// Object term frequencies used to pick the least frequent keyword when
    /// routing queries.
    object_stats: Arc<TermStats>,
    strategy: String,
}

impl RoutingTable {
    /// Creates a routing table from per-cell routings.
    ///
    /// # Panics
    /// Panics if `cells.len() != grid.num_cells()` or `num_workers == 0`.
    pub fn new(
        grid: UniformGrid,
        cells: Vec<CellRouting>,
        num_workers: usize,
        object_stats: Arc<TermStats>,
        strategy: impl Into<String>,
    ) -> Self {
        assert_eq!(
            cells.len(),
            grid.num_cells(),
            "RoutingTable: one CellRouting required per grid cell"
        );
        assert!(num_workers > 0, "RoutingTable requires at least one worker");
        let query_terms = TermRegistry::new(cells.len());
        Self {
            grid,
            cells,
            query_terms,
            num_workers,
            object_stats,
            strategy: strategy.into(),
        }
    }

    /// A routing table in which every cell is assigned to the same single
    /// worker (useful as a degenerate baseline and in tests).
    pub fn single_worker(bounds: Rect, granularity_exp: u32, stats: Arc<TermStats>) -> Self {
        let grid = UniformGrid::with_power_of_two(bounds, granularity_exp);
        let cells = vec![CellRouting::Single(WorkerId(0)); grid.num_cells()];
        Self::new(grid, cells, 1, stats, "single-worker")
    }

    /// The grid geometry.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Number of workers the table routes to.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Name of the partitioning strategy that produced this table.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// The routing of one cell.
    pub fn cell_routing(&self, cell: CellId) -> &CellRouting {
        &self.cells[self.grid.cell_index(cell)]
    }

    /// The registered query terms (`H2`) of one cell (a control-path
    /// snapshot; the hot path uses per-term membership probes instead).
    pub fn cell_query_terms(&self, cell: CellId) -> HashSet<TermId> {
        self.query_terms
            .terms_of_cell(self.grid.cell_index(cell) as u32)
    }

    /// Routes a spatio-textual object: the set of workers that must receive
    /// it. Objects outside the grid or containing no registered query term in
    /// their cell are discarded (empty result).
    pub fn route_object(&self, object: &SpatioTextualObject) -> Vec<WorkerId> {
        let Some(cell) = self.grid.cell_of(&object.location) else {
            return Vec::new();
        };
        let idx = self.grid.cell_index(cell);
        if self.query_terms.cell_is_empty(idx) {
            return Vec::new();
        }
        let routing = &self.cells[idx];
        let mut workers: Vec<WorkerId> = Vec::with_capacity(2);
        self.query_terms
            .probe_terms(idx as u32, &object.terms, |term| {
                let w = routing.worker_for(term);
                if !workers.contains(&w) {
                    workers.push(w);
                }
                // a Single cell maps every registered term to the same
                // worker; no need to continue scanning.
                !matches!(routing, CellRouting::Single(_))
            });
        workers
    }

    /// Routes an STS query insertion: the set of workers that must index it.
    /// Updates the per-cell `H2` filters with the query's posting terms.
    ///
    /// Takes `&self`: the `H2` registration goes through the sharded
    /// [`TermRegistry`], so concurrent dispatchers insert queries without a
    /// table-level write lock (the steady-state requirement of Section IV-C).
    pub fn route_insert(&self, query: &StsQuery) -> Vec<WorkerId> {
        let rep_terms = query
            .keywords
            .representative_terms(|t| self.object_stats.frequency(t));
        let cells = self.grid.cells_overlapping(&query.region);
        let mut workers: Vec<WorkerId> = Vec::with_capacity(2);
        for cell in cells {
            let idx = self.grid.cell_index(cell);
            for &t in &rep_terms {
                self.query_terms.insert(idx as u32, t);
                let w = self.cells[idx].worker_for(t);
                if !workers.contains(&w) {
                    workers.push(w);
                }
            }
        }
        workers
    }

    /// Routes an STS query deletion (same destinations as the insertion, but
    /// `H2` is left untouched — filters are rebuilt by the periodic global
    /// adjustment instead).
    pub fn route_delete(&self, query: &StsQuery) -> Vec<WorkerId> {
        // A deletion must reach every worker that could hold a copy of the
        // query, and that is a strictly wider set than the insertion's
        // representative-term routing: text-split migrations *replicate* a
        // query to the worker owning any of its terms in a cell (the
        // straddling-query rule of `Gi2Index::replicate_cell_where`), and
        // the registry's and the workers' representative-term choices can
        // drift as term statistics evolve. Routing the delete by **all** of
        // the query's terms covers every such worker; a delete for an
        // absent id is a cheap no-op at the worker, and deletions are rare
        // relative to objects.
        let all_terms = query.keywords.all_terms();
        let cells = self.grid.cells_overlapping(&query.region);
        let mut workers: Vec<WorkerId> = Vec::with_capacity(2);
        for cell in cells {
            let idx = self.grid.cell_index(cell);
            for &t in &all_terms {
                let w = self.cells[idx].worker_for(t);
                if !workers.contains(&w) {
                    workers.push(w);
                }
            }
        }
        workers
    }

    /// Rebuilds the `H2` term registry under a NUMA-aware shard-group
    /// layout (`num_groups` node-local groups of `shards_per_group` shards;
    /// see [`TermRegistry::with_groups`]), preserving every registration.
    /// Called by the system launcher once the machine topology is known;
    /// a single-group layout is exactly the previous flat sharding.
    pub fn reshard_registry(&mut self, num_groups: usize, shards_per_group: usize) {
        self.query_terms = self.query_terms.resharded(num_groups, shards_per_group);
    }

    /// Reshards the `H2` registry for a machine with `num_nodes` NUMA nodes
    /// (optionally overriding the per-group shard count). No-op when the
    /// registry already has the requested layout.
    pub fn reshard_for_topology(&mut self, num_nodes: usize, shards_per_group: Option<usize>) {
        let (groups, per_group) = TermRegistry::node_layout(num_nodes, shards_per_group);
        if (groups, per_group)
            != (
                self.query_terms.num_groups(),
                self.query_terms.shards_per_group(),
            )
        {
            self.reshard_registry(groups, per_group);
        }
    }

    /// The `H2` query-term registry (diagnostics: layout and promotion
    /// observability).
    pub fn term_registry(&self) -> &TermRegistry {
        &self.query_terms
    }

    /// Exports the `H2` registry in canonical order for embedding in a
    /// durability snapshot (see `TermRegistry::export_cells`).
    pub fn registry_export(&self) -> Vec<(u32, Vec<TermId>)> {
        self.query_terms.export_cells()
    }

    /// Re-registers a snapshot's registry export. Idempotent: replaying the
    /// recovered query log afterwards re-inserts the same pairs harmlessly.
    pub fn import_registry(&self, cells: &[(u32, Vec<TermId>)]) {
        self.query_terms.import_cells(cells);
    }

    /// Reassigns an entire cell to a different worker (local load adjustment
    /// migrating a cell). The cell becomes [`CellRouting::Single`].
    pub fn reassign_cell(&mut self, cell: CellId, to: WorkerId) {
        let idx = self.grid.cell_index(cell);
        self.cells[idx] = CellRouting::Single(to);
    }

    /// Text-splits a cell: the given terms are reassigned to worker `to`
    /// while all remaining terms keep their previous destination (Phase I of
    /// the local load adjustment).
    pub fn split_cell_by_terms(&mut self, cell: CellId, terms: &HashSet<TermId>, to: WorkerId) {
        let idx = self.grid.cell_index(cell);
        let previous = self.cells[idx].clone();
        let mut routing = match previous {
            CellRouting::Single(w) => TermRouting::new(HashMap::new(), w),
            CellRouting::SharedTerms(shared) => (*shared).clone(),
            CellRouting::OwnedTerms(owned) => owned,
        };
        for &t in terms {
            routing.assign(t, to);
        }
        self.cells[idx] = CellRouting::OwnedTerms(routing);
    }

    /// The workers currently referenced by a cell's routing together with the
    /// registered terms they receive (used to decide migrations).
    pub fn cell_worker_terms(&self, cell: CellId) -> HashMap<WorkerId, Vec<TermId>> {
        let idx = self.grid.cell_index(cell);
        let mut out: HashMap<WorkerId, Vec<TermId>> = HashMap::new();
        for t in self.query_terms.terms_of_cell(idx as u32) {
            out.entry(self.cells[idx].worker_for(t))
                .or_default()
                .push(t);
        }
        out
    }

    /// Approximate dispatcher memory footprint in bytes: grid cells, `H2`
    /// filters and term maps; routing maps shared between cells via `Arc` are
    /// counted once.
    pub fn memory_usage(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        total += self.cells.len() * std::mem::size_of::<CellRouting>();
        let mut seen_shared: HashSet<*const TermRouting> = HashSet::new();
        for c in &self.cells {
            match c {
                CellRouting::Single(_) => {}
                CellRouting::SharedTerms(shared) => {
                    if seen_shared.insert(Arc::as_ptr(shared)) {
                        total += shared.memory_usage();
                    }
                }
                CellRouting::OwnedTerms(owned) => total += owned.memory_usage(),
            }
        }
        total += self.query_terms.memory_usage();
        total
    }

    /// Fraction of cells that are text-partitioned.
    pub fn text_partitioned_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .filter(|c| c.is_text_partitioned())
            .count() as f64
            / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Point;
    use ps2stream_model::{ObjectId, QueryId, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn bounds() -> Rect {
        Rect::from_coords(0.0, 0.0, 16.0, 16.0)
    }

    fn obj(terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(0),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    /// A 4x4-cell table whose left half routes to worker 0 and right half to
    /// worker 1.
    fn split_table() -> RoutingTable {
        let grid = UniformGrid::new(bounds(), 4, 4);
        let cells: Vec<CellRouting> = grid
            .all_cells()
            .map(|c| {
                if c.col < 2 {
                    CellRouting::Single(WorkerId(0))
                } else {
                    CellRouting::Single(WorkerId(1))
                }
            })
            .collect();
        RoutingTable::new(grid, cells, 2, Arc::new(TermStats::new()), "test-split")
    }

    #[test]
    fn objects_without_registered_terms_are_discarded() {
        let table = split_table();
        assert!(table.route_object(&obj(&[1], 1.0, 1.0)).is_empty());
        table.route_insert(&qry(1, &[1], Rect::from_coords(0.0, 0.0, 4.0, 4.0)));
        assert_eq!(table.route_object(&obj(&[1], 1.0, 1.0)), vec![WorkerId(0)]);
        // a different term in the same cell is still discarded
        assert!(table.route_object(&obj(&[2], 1.0, 1.0)).is_empty());
    }

    #[test]
    fn insertions_route_through_a_shared_reference() {
        // The steady-state guarantee of the batched dispatcher design: query
        // insertion requires no exclusive access to the routing table. This
        // compiles only while `route_insert` takes `&self`.
        let table = split_table();
        let shared: &RoutingTable = &table;
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                scope.spawn(move || {
                    let q = qry(i, &[i as u32 + 1], Rect::from_coords(0.0, 0.0, 4.0, 4.0));
                    assert_eq!(shared.route_insert(&q), vec![WorkerId(0)]);
                });
            }
        });
        // the registrations are visible to object routing
        assert_eq!(shared.route_object(&obj(&[1], 1.0, 1.0)), vec![WorkerId(0)]);
    }

    #[test]
    fn space_partitioned_query_goes_to_every_overlapped_worker() {
        let table = split_table();
        let q = qry(1, &[5], Rect::from_coords(6.0, 6.0, 10.0, 10.0));
        let mut workers = table.route_insert(&q);
        workers.sort();
        assert_eq!(workers, vec![WorkerId(0), WorkerId(1)]);
        // deletions route to the same workers
        let mut del = table.route_delete(&q);
        del.sort();
        assert_eq!(del, vec![WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn object_routed_to_cell_owner_only() {
        let table = split_table();
        table.route_insert(&qry(1, &[7], Rect::from_coords(0.0, 0.0, 16.0, 16.0)));
        assert_eq!(table.route_object(&obj(&[7], 1.0, 1.0)), vec![WorkerId(0)]);
        assert_eq!(table.route_object(&obj(&[7], 15.0, 1.0)), vec![WorkerId(1)]);
        // outside the grid -> discarded
        assert!(table.route_object(&obj(&[7], 100.0, 1.0)).is_empty());
    }

    #[test]
    fn text_partitioned_table_routes_by_term() {
        let grid = UniformGrid::new(bounds(), 4, 4);
        let mut map = HashMap::new();
        map.insert(TermId(1), WorkerId(0));
        map.insert(TermId(2), WorkerId(1));
        let shared = Arc::new(TermRouting::new(map, WorkerId(0)));
        let cells: Vec<CellRouting> = (0..grid.num_cells())
            .map(|_| CellRouting::SharedTerms(Arc::clone(&shared)))
            .collect();
        let table = RoutingTable::new(grid, cells, 2, Arc::new(TermStats::new()), "test-text");

        table.route_insert(&qry(1, &[1], Rect::from_coords(0.0, 0.0, 16.0, 16.0)));
        table.route_insert(&qry(2, &[2], Rect::from_coords(0.0, 0.0, 16.0, 16.0)));
        // object with both terms goes to both workers, independent of location
        let mut ws = table.route_object(&obj(&[1, 2], 1.0, 1.0));
        ws.sort();
        assert_eq!(ws, vec![WorkerId(0), WorkerId(1)]);
        let ws = table.route_object(&obj(&[2], 15.0, 15.0));
        assert_eq!(ws, vec![WorkerId(1)]);
        assert!(table.text_partitioned_fraction() > 0.99);
    }

    #[test]
    fn insert_routes_by_least_frequent_keyword() {
        // term 1 very frequent among objects, term 2 rare
        let mut stats = TermStats::new();
        for _ in 0..10 {
            stats.observe(&[TermId(1)]);
        }
        stats.observe(&[TermId(2)]);
        let grid = UniformGrid::new(bounds(), 4, 4);
        let mut map = HashMap::new();
        map.insert(TermId(1), WorkerId(0));
        map.insert(TermId(2), WorkerId(1));
        let shared = Arc::new(TermRouting::new(map, WorkerId(0)));
        let cells: Vec<CellRouting> = (0..grid.num_cells())
            .map(|_| CellRouting::SharedTerms(Arc::clone(&shared)))
            .collect();
        let table = RoutingTable::new(grid, cells, 2, Arc::new(stats), "test");
        // AND query: routed only under its least frequent keyword (term 2)
        let ws = table.route_insert(&qry(1, &[1, 2], Rect::from_coords(0.0, 0.0, 3.0, 3.0)));
        assert_eq!(ws, vec![WorkerId(1)]);
        // the frequent keyword is NOT registered in H2
        let cell = table.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(table.cell_query_terms(cell).contains(&TermId(2)));
        assert!(!table.cell_query_terms(cell).contains(&TermId(1)));
    }

    #[test]
    fn or_query_routes_every_branch() {
        let grid = UniformGrid::new(bounds(), 4, 4);
        let mut map = HashMap::new();
        map.insert(TermId(1), WorkerId(0));
        map.insert(TermId(2), WorkerId(1));
        let shared = Arc::new(TermRouting::new(map, WorkerId(0)));
        let cells: Vec<CellRouting> = (0..grid.num_cells())
            .map(|_| CellRouting::SharedTerms(Arc::clone(&shared)))
            .collect();
        let table = RoutingTable::new(grid, cells, 2, Arc::new(TermStats::new()), "test");
        let q = StsQuery::new(
            QueryId(1),
            SubscriberId(1),
            BooleanExpr::or_of([TermId(1), TermId(2)]),
            Rect::from_coords(0.0, 0.0, 3.0, 3.0),
        );
        let mut ws = table.route_insert(&q);
        ws.sort();
        assert_eq!(ws, vec![WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn reassign_cell_changes_object_routing() {
        let mut table = split_table();
        table.route_insert(&qry(1, &[3], Rect::from_coords(0.0, 0.0, 4.0, 4.0)));
        let cell = table.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert_eq!(table.route_object(&obj(&[3], 1.0, 1.0)), vec![WorkerId(0)]);
        table.reassign_cell(cell, WorkerId(1));
        assert_eq!(table.route_object(&obj(&[3], 1.0, 1.0)), vec![WorkerId(1)]);
    }

    #[test]
    fn delete_reaches_text_split_replicas() {
        // Regression: a text split moving a *non-representative* term of a
        // query replicates the query to the destination worker (the
        // worker-side straddling rule), so the deletion must be routed by
        // ALL the query's terms — representative-term routing would miss
        // the replica and leave it matching forever.
        let mut table = split_table();
        // AND(3, 4): with uniform stats the representative term is TermId(3)
        let q = qry(1, &[3, 4], Rect::from_coords(0.0, 0.0, 4.0, 4.0));
        table.route_insert(&q);
        let cell = table.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        // move the non-representative term 4 to worker 1
        let moved: HashSet<TermId> = [TermId(4)].into_iter().collect();
        table.split_cell_by_terms(cell, &moved, WorkerId(1));
        let mut del = table.route_delete(&q);
        del.sort();
        assert_eq!(
            del,
            vec![WorkerId(0), WorkerId(1)],
            "the deletion must reach the replica created by the text split"
        );
    }

    #[test]
    fn split_cell_by_terms_moves_only_those_terms() {
        let mut table = split_table();
        table.route_insert(&qry(1, &[3], Rect::from_coords(0.0, 0.0, 4.0, 4.0)));
        table.route_insert(&qry(2, &[4], Rect::from_coords(0.0, 0.0, 4.0, 4.0)));
        let cell = table.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let moved: HashSet<TermId> = [TermId(3)].into_iter().collect();
        table.split_cell_by_terms(cell, &moved, WorkerId(1));
        assert_eq!(table.route_object(&obj(&[3], 1.0, 1.0)), vec![WorkerId(1)]);
        assert_eq!(table.route_object(&obj(&[4], 1.0, 1.0)), vec![WorkerId(0)]);
        assert!(table.cell_routing(cell).is_text_partitioned());
        let worker_terms = table.cell_worker_terms(cell);
        assert_eq!(worker_terms[&WorkerId(1)], vec![TermId(3)]);
    }

    #[test]
    fn memory_counts_shared_maps_once() {
        let grid = UniformGrid::new(bounds(), 8, 8);
        let mut map = HashMap::new();
        for i in 0..1000u32 {
            map.insert(TermId(i), WorkerId(i % 2));
        }
        let shared = Arc::new(TermRouting::new(map, WorkerId(0)));
        let shared_cells: Vec<CellRouting> = (0..grid.num_cells())
            .map(|_| CellRouting::SharedTerms(Arc::clone(&shared)))
            .collect();
        let shared_table = RoutingTable::new(
            grid.clone(),
            shared_cells,
            2,
            Arc::new(TermStats::new()),
            "shared",
        );
        let owned_cells: Vec<CellRouting> = (0..grid.num_cells())
            .map(|_| CellRouting::OwnedTerms((*shared).clone()))
            .collect();
        let owned_table =
            RoutingTable::new(grid, owned_cells, 2, Arc::new(TermStats::new()), "owned");
        assert!(owned_table.memory_usage() > 10 * shared_table.memory_usage());
    }

    #[test]
    #[should_panic(expected = "one CellRouting required per grid cell")]
    fn mismatched_cell_count_panics() {
        let grid = UniformGrid::new(bounds(), 4, 4);
        let _ = RoutingTable::new(
            grid,
            vec![CellRouting::Single(WorkerId(0))],
            1,
            Arc::new(TermStats::new()),
            "bad",
        );
    }
}
