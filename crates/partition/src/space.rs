//! Space-partitioning baselines (Section VI-B, Figure 6(c)(d)).
//!
//! Space partitioning divides the data space into regions and assigns each
//! region to one worker; tuples are routed purely by location. Three
//! baselines from the paper are implemented:
//!
//! * **Grid** (SpatialHadoop-style) — the space is a uniform grid and the
//!   cells are spread over the workers balancing their load.
//! * **kd-tree** (AQWA / Tornado) — a weighted kd-tree with one leaf per
//!   worker is built over the sampled object locations.
//! * **R-tree** (SpatialHadoop) — an STR-packed R-tree is built over the
//!   sampled objects and its leaf pages are spread over the workers.
//!
//! All three produce a [`RoutingTable`] in which every grid cell routes to a
//! single worker.

use crate::partitioner::{balanced_assignment, Partitioner};
use crate::routing::{CellRouting, RoutingTable};
use crate::sample::WorkloadSample;
use crate::text::DEFAULT_GRID_EXP;
use ps2stream_geo::{
    KdTree, Point, RTree, RTreeEntry, Rect, SplitAxis, UniformGrid, WeightedPoint,
};
use ps2stream_model::WorkerId;
use ps2stream_text::TermStats;
use std::sync::Arc;

fn finish_table(
    sample: &WorkloadSample,
    grid: UniformGrid,
    cells: Vec<CellRouting>,
    num_workers: usize,
    name: &str,
) -> RoutingTable {
    let stats: TermStats = sample.object_stats().clone();
    RoutingTable::new(grid, cells, num_workers, Arc::new(stats), name)
}

/// Uniform-grid space partitioning: cells are assigned to workers with LPT
/// scheduling on their estimated load (objects located in the cell plus
/// queries overlapping it).
#[derive(Debug, Clone)]
pub struct GridPartitioner {
    /// Routing-grid granularity exponent (the paper uses 2⁶×2⁶).
    pub grid_exp: u32,
}

impl Default for GridPartitioner {
    fn default() -> Self {
        Self {
            grid_exp: DEFAULT_GRID_EXP,
        }
    }
}

impl Partitioner for GridPartitioner {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        let grid = UniformGrid::with_power_of_two(sample.bounds(), self.grid_exp);
        let mut weights = vec![0.0f64; grid.num_cells()];
        for o in sample.objects() {
            if let Some(c) = grid.cell_of(&o.location) {
                weights[grid.cell_index(c)] += 1.0;
            }
        }
        for q in sample.insertions() {
            for c in grid.cells_overlapping(&q.region) {
                weights[grid.cell_index(c)] += 0.5;
            }
        }
        let assignment = balanced_assignment(&weights, num_workers);
        let cells: Vec<CellRouting> = assignment.into_iter().map(CellRouting::Single).collect();
        finish_table(sample, grid, cells, num_workers, self.name())
    }
}

/// kd-tree space partitioning: a weighted kd-tree with one leaf per worker is
/// built over the sampled object locations; the kd-tree is then "transformed
/// to a grid index to accelerate the workload distribution in the
/// dispatchers" (Section VI-B), i.e. each routing-grid cell is assigned to
/// the worker owning the kd-tree leaf that contains the cell center.
#[derive(Debug, Clone)]
pub struct KdTreePartitioner {
    /// Routing-grid granularity exponent.
    pub grid_exp: u32,
}

impl Default for KdTreePartitioner {
    fn default() -> Self {
        Self {
            grid_exp: DEFAULT_GRID_EXP,
        }
    }
}

impl Partitioner for KdTreePartitioner {
    fn name(&self) -> &'static str {
        "kd-tree"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        let bounds = sample.bounds();
        let samples: Vec<WeightedPoint> = sample
            .objects()
            .iter()
            .map(|o| WeightedPoint::new(o.location, 1.0))
            .collect();
        let tree = KdTree::build(bounds, &samples, num_workers, SplitAxis::LongestExtent);
        // one leaf per worker; if the tree could not be split far enough the
        // remaining leaves are assigned round-robin
        let leaf_workers: Vec<WorkerId> = (0..tree.leaves().len())
            .map(|i| WorkerId((i % num_workers) as u32))
            .collect();
        let grid = UniformGrid::with_power_of_two(bounds, self.grid_exp);
        let cells: Vec<CellRouting> = grid
            .all_cells()
            .map(|c| {
                let center = grid.cell_rect(c).center();
                let leaf = tree.leaf_of(&center).unwrap_or(0);
                CellRouting::Single(leaf_workers[leaf])
            })
            .collect();
        finish_table(sample, grid, cells, num_workers, self.name())
    }
}

/// R-tree space partitioning: an STR bulk-loaded R-tree over the sampled
/// object locations; its leaf pages are spread over the workers with LPT on
/// their entry counts, and every routing-grid cell is assigned to the worker
/// of the closest covering leaf.
#[derive(Debug, Clone)]
pub struct RTreePartitioner {
    /// Routing-grid granularity exponent.
    pub grid_exp: u32,
    /// R-tree node capacity used for the STR packing.
    pub node_capacity: usize,
}

impl Default for RTreePartitioner {
    fn default() -> Self {
        Self {
            grid_exp: DEFAULT_GRID_EXP,
            node_capacity: 64,
        }
    }
}

impl Partitioner for RTreePartitioner {
    fn name(&self) -> &'static str {
        "R-tree"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        let bounds = sample.bounds();
        let entries: Vec<RTreeEntry<usize>> = sample
            .objects()
            .iter()
            .enumerate()
            .map(|(i, o)| RTreeEntry::new(Rect::from_point(o.location), i))
            .collect();
        let grid = UniformGrid::with_power_of_two(bounds, self.grid_exp);
        if entries.is_empty() {
            let cells = vec![CellRouting::Single(WorkerId(0)); grid.num_cells()];
            return finish_table(sample, grid, cells, num_workers, self.name());
        }
        let tree = RTree::bulk_load_with_capacity(entries, self.node_capacity);
        let leaves = tree.leaf_summaries();
        let weights: Vec<f64> = leaves.iter().map(|l| l.len as f64).collect();
        let leaf_workers = balanced_assignment(&weights, num_workers);
        let cells: Vec<CellRouting> = grid
            .all_cells()
            .map(|c| {
                let center = grid.cell_rect(c).center();
                let worker = nearest_leaf_worker(&leaves, &leaf_workers, &center);
                CellRouting::Single(worker)
            })
            .collect();
        finish_table(sample, grid, cells, num_workers, self.name())
    }
}

/// The worker of the leaf containing the point, or of the leaf whose center
/// is closest when no leaf covers it.
fn nearest_leaf_worker(
    leaves: &[ps2stream_geo::LeafSummary],
    leaf_workers: &[WorkerId],
    p: &Point,
) -> WorkerId {
    debug_assert_eq!(leaves.len(), leaf_workers.len());
    let mut best = WorkerId(0);
    let mut best_dist = f64::INFINITY;
    for (leaf, worker) in leaves.iter().zip(leaf_workers) {
        if leaf.rect.contains_point(p) {
            return *worker;
        }
        let d = leaf.rect.center().distance_sq(p);
        if d < best_dist {
            best_dist = d;
            best = *worker;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::CostConstants;
    use crate::partitioner::evaluate_distribution;
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId};

    fn obj(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    fn sample() -> WorkloadSample {
        let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let mut objects = Vec::new();
        let mut queries = Vec::new();
        for i in 0..300u64 {
            let t1 = (i % 15) as u32;
            // two spatial clusters plus a uniform sprinkle
            let (x, y) = match i % 3 {
                0 => (10.0 + (i % 8) as f64 * 0.5, 10.0 + (i % 5) as f64 * 0.5),
                1 => (50.0 + (i % 8) as f64 * 0.5, 50.0 + (i % 5) as f64 * 0.5),
                _ => ((i % 64) as f64, ((i * 13) % 64) as f64),
            };
            objects.push(obj(i, &[t1, (t1 + 1) % 15], x, y));
            if i % 5 == 0 {
                queries.push(qry(i, &[t1], Rect::square(Point::new(x, y), 6.0)));
            }
        }
        WorkloadSample::from_objects_and_queries(bounds, objects, queries)
    }

    fn check_space_partitioner(p: &dyn Partitioner) {
        let sample = sample();
        let mut table = p.partition(&sample, 4);
        assert_eq!(table.num_workers(), 4);
        assert_eq!(table.strategy(), p.name());
        // space partitioning never text-partitions a cell
        assert_eq!(table.text_partitioned_fraction(), 0.0);
        let summary = evaluate_distribution(&mut table, &sample, CostConstants::default());
        // each object is routed to at most one worker under space partitioning
        let total_obj: u64 = summary.per_worker.iter().map(|w| w.objects).sum();
        assert!(total_obj <= sample.objects().len() as u64);
        // the object load should be spread over several workers
        let busy = summary.per_worker.iter().filter(|w| w.objects > 0).count();
        assert!(
            busy >= 2,
            "{}: objects concentrated on {busy} worker(s)",
            p.name()
        );
    }

    #[test]
    fn grid_partitioner_properties() {
        check_space_partitioner(&GridPartitioner::default());
    }

    #[test]
    fn kdtree_partitioner_properties() {
        check_space_partitioner(&KdTreePartitioner::default());
    }

    #[test]
    fn rtree_partitioner_properties() {
        check_space_partitioner(&RTreePartitioner::default());
    }

    #[test]
    fn space_routing_never_misses_matches() {
        let sample = sample();
        for p in [
            &GridPartitioner::default() as &dyn Partitioner,
            &KdTreePartitioner::default(),
            &RTreePartitioner::default(),
        ] {
            let table = p.partition(&sample, 4);
            let query_workers: Vec<Vec<WorkerId>> = sample
                .insertions()
                .iter()
                .map(|q| table.route_insert(q))
                .collect();
            for o in sample.objects() {
                let ow = table.route_object(o);
                for (q, qw) in sample.insertions().iter().zip(&query_workers) {
                    if q.matches(o) {
                        assert!(
                            qw.iter().any(|w| ow.contains(w)),
                            "{}: query {:?} matches object {:?} but no common worker",
                            p.name(),
                            q.id,
                            o.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rtree_partitioner_handles_empty_sample() {
        let bounds = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let empty = WorkloadSample::new(bounds, vec![], vec![], vec![]);
        let table = RTreePartitioner::default().partition(&empty, 4);
        assert_eq!(table.num_workers(), 4);
    }

    #[test]
    fn kdtree_balances_clustered_objects_better_than_even_grid_assignment() {
        // with two dense clusters, the kd-tree should split through the
        // clusters and spread objects roughly evenly over workers
        let sample = sample();
        let mut table = KdTreePartitioner::default().partition(&sample, 4);
        let summary = evaluate_distribution(&mut table, &sample, CostConstants::default());
        let objs: Vec<u64> = summary.per_worker.iter().map(|w| w.objects).collect();
        let max = *objs.iter().max().unwrap() as f64;
        let total: u64 = objs.iter().sum();
        assert!(total > 0);
        // no worker should hold more than 70% of all routed objects
        assert!(max / total as f64 <= 0.7, "objects per worker: {objs:?}");
    }
}
