//! Text-partitioning baselines (Section VI-B, Figure 6(a)(b)).
//!
//! Text partitioning divides the lexicon into `m` groups, assigns each group
//! to one worker and routes objects/queries purely by their keywords. Three
//! baselines from the paper are implemented:
//!
//! * **Frequency-based** — terms are spread over workers balancing their
//!   object document-frequency (LPT scheduling).
//! * **Hypergraph-based** (Cambazoglu et al.) — terms co-occurring in the
//!   same queries are kept on the same worker when the balance constraint
//!   allows, reducing query replication.
//! * **Metric-based** (S3-TM) — terms are weighted by an estimate of the
//!   matching cost they induce (object traffic × query postings) and spread
//!   with LPT over that metric.
//!
//! All three produce a [`RoutingTable`] in which every grid cell shares one
//! global term → worker map.

use crate::partitioner::{balanced_assignment, Partitioner};
use crate::routing::{CellRouting, RoutingTable, TermRouting};
use crate::sample::WorkloadSample;
use ps2stream_geo::UniformGrid;
use ps2stream_model::WorkerId;
use ps2stream_text::{TermId, TermStats};
use std::collections::HashMap;
use std::sync::Arc;

/// Default routing-grid granularity exponent (a 2⁶×2⁶ grid, as in the paper).
pub const DEFAULT_GRID_EXP: u32 = 6;

/// Gathers the lexicon of a sample: every term appearing in objects or query
/// keywords, together with its object and query document frequencies.
fn lexicon(sample: &WorkloadSample) -> Vec<(TermId, u64, u64)> {
    let mut terms: Vec<TermId> = sample
        .object_stats()
        .terms_by_frequency()
        .into_iter()
        .map(|(t, _)| t)
        .chain(
            sample
                .query_stats()
                .terms_by_frequency()
                .into_iter()
                .map(|(t, _)| t),
        )
        .collect();
    terms.sort_unstable();
    terms.dedup();
    terms
        .into_iter()
        .map(|t| {
            (
                t,
                sample.object_stats().frequency(t),
                sample.query_stats().frequency(t),
            )
        })
        .collect()
}

/// Builds the shared-map routing table from a term → worker assignment.
fn table_from_term_assignment(
    sample: &WorkloadSample,
    assignment: HashMap<TermId, WorkerId>,
    num_workers: usize,
    grid_exp: u32,
    name: &str,
) -> RoutingTable {
    let grid = UniformGrid::with_power_of_two(sample.bounds(), grid_exp);
    let shared = Arc::new(TermRouting::new(assignment, WorkerId(0)));
    let cells: Vec<CellRouting> = (0..grid.num_cells())
        .map(|_| CellRouting::SharedTerms(Arc::clone(&shared)))
        .collect();
    let stats: TermStats = sample.object_stats().clone();
    RoutingTable::new(grid, cells, num_workers, Arc::new(stats), name)
}

/// Frequency-based text partitioning: balance the object document-frequency
/// of the terms across workers.
#[derive(Debug, Clone)]
pub struct FrequencyPartitioner {
    /// Routing-grid granularity exponent.
    pub grid_exp: u32,
}

impl Default for FrequencyPartitioner {
    fn default() -> Self {
        Self {
            grid_exp: DEFAULT_GRID_EXP,
        }
    }
}

impl Partitioner for FrequencyPartitioner {
    fn name(&self) -> &'static str {
        "Frequency"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        let lex = lexicon(sample);
        let weights: Vec<f64> = lex.iter().map(|(_, fo, _)| (*fo as f64).max(1.0)).collect();
        let workers = balanced_assignment(&weights, num_workers);
        let assignment: HashMap<TermId, WorkerId> = lex
            .iter()
            .zip(workers)
            .map(|((t, _, _), w)| (*t, w))
            .collect();
        table_from_term_assignment(sample, assignment, num_workers, self.grid_exp, self.name())
    }
}

/// Hypergraph-based text partitioning: terms are vertices, query keyword sets
/// are hyperedges; the greedy assignment keeps co-occurring terms together
/// subject to a load-balance constraint.
#[derive(Debug, Clone)]
pub struct HypergraphPartitioner {
    /// Routing-grid granularity exponent.
    pub grid_exp: u32,
    /// Allowed imbalance: a worker may exceed the average load by this factor
    /// before the affinity heuristic is overridden.
    pub imbalance: f64,
}

impl Default for HypergraphPartitioner {
    fn default() -> Self {
        Self {
            grid_exp: DEFAULT_GRID_EXP,
            imbalance: 1.10,
        }
    }
}

impl Partitioner for HypergraphPartitioner {
    fn name(&self) -> &'static str {
        "Hypergraph"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        let lex = lexicon(sample);
        // Co-occurrence counts between term pairs appearing in the same query.
        let mut cooccur: HashMap<(TermId, TermId), u64> = HashMap::new();
        for q in sample.insertions() {
            let terms = q.keywords.all_terms();
            for (i, &a) in terms.iter().enumerate() {
                for &b in &terms[i + 1..] {
                    *cooccur.entry((a.min(b), a.max(b))).or_insert(0) += 1;
                }
            }
        }
        let total_weight: f64 = lex.iter().map(|(_, fo, _)| (*fo as f64).max(1.0)).sum();
        let capacity = self.imbalance * total_weight / num_workers as f64;

        // Visit terms in descending object frequency; place each on the
        // worker with the highest co-occurrence affinity that still has
        // capacity, falling back to the lightest worker.
        let mut order: Vec<usize> = (0..lex.len()).collect();
        order.sort_by(|&a, &b| lex[b].1.cmp(&lex[a].1));
        let mut assignment: HashMap<TermId, WorkerId> = HashMap::with_capacity(lex.len());
        let mut worker_load = vec![0.0f64; num_workers];
        for idx in order {
            let (term, fo, _) = lex[idx];
            let weight = (fo as f64).max(1.0);
            let mut affinity = vec![0.0f64; num_workers];
            for (&(a, b), &c) in &cooccur {
                let other = if a == term {
                    Some(b)
                } else if b == term {
                    Some(a)
                } else {
                    None
                };
                if let Some(other) = other {
                    if let Some(w) = assignment.get(&other) {
                        affinity[w.index()] += c as f64;
                    }
                }
            }
            let mut best: Option<usize> = None;
            for w in 0..num_workers {
                if worker_load[w] + weight > capacity {
                    continue;
                }
                match best {
                    None => best = Some(w),
                    Some(b) => {
                        if affinity[w] > affinity[b]
                            || (affinity[w] == affinity[b] && worker_load[w] < worker_load[b])
                        {
                            best = Some(w);
                        }
                    }
                }
            }
            let chosen = best.unwrap_or_else(|| {
                worker_load
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            });
            worker_load[chosen] += weight;
            assignment.insert(term, WorkerId(chosen as u32));
        }
        table_from_term_assignment(sample, assignment, num_workers, self.grid_exp, self.name())
    }
}

/// Metric-based text partitioning (S3-TM style): each term is weighted by the
/// matching cost it is expected to induce — the product of its object traffic
/// and the number of query postings under it — and the terms are spread with
/// LPT over that metric.
#[derive(Debug, Clone)]
pub struct MetricPartitioner {
    /// Routing-grid granularity exponent.
    pub grid_exp: u32,
}

impl Default for MetricPartitioner {
    fn default() -> Self {
        Self {
            grid_exp: DEFAULT_GRID_EXP,
        }
    }
}

impl Partitioner for MetricPartitioner {
    fn name(&self) -> &'static str {
        "Metric"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        let lex = lexicon(sample);
        // Count how many queries would actually be *posted* under each term
        // (least frequent keyword per conjunction), which is what drives the
        // matching cost, rather than raw keyword occurrence.
        let mut postings: HashMap<TermId, u64> = HashMap::new();
        for q in sample.insertions() {
            for t in q
                .keywords
                .representative_terms(|t| sample.object_stats().frequency(t))
            {
                *postings.entry(t).or_insert(0) += 1;
            }
        }
        let weights: Vec<f64> = lex
            .iter()
            .map(|(t, fo, _)| {
                let fo = (*fo as f64).max(1.0);
                let posted = postings.get(t).copied().unwrap_or(0) as f64;
                fo * (posted + 1.0)
            })
            .collect();
        let workers = balanced_assignment(&weights, num_workers);
        let assignment: HashMap<TermId, WorkerId> = lex
            .iter()
            .zip(workers)
            .map(|((t, _, _), w)| (*t, w))
            .collect();
        table_from_term_assignment(sample, assignment, num_workers, self.grid_exp, self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::CostConstants;
    use crate::partitioner::evaluate_distribution;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn obj(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    /// A sample with 20 distinct terms, objects spread over space, each query
    /// using two co-occurring keywords.
    fn sample() -> WorkloadSample {
        let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let mut objects = Vec::new();
        let mut queries = Vec::new();
        for i in 0..200u64 {
            let t1 = (i % 21) as u32;
            let t2 = ((i * i + 1) % 21) as u32;
            let x = (i % 64) as f64;
            let y = ((i * 7) % 64) as f64;
            objects.push(obj(i, &[t1, t2], x, y));
            if i % 4 == 0 {
                queries.push(qry(i, &[t1, t2], Rect::square(Point::new(x, y), 8.0)));
            }
        }
        WorkloadSample::from_objects_and_queries(bounds, objects, queries)
    }

    fn check_partitioner(p: &dyn Partitioner) {
        let sample = sample();
        let mut table = p.partition(&sample, 4);
        assert_eq!(table.num_workers(), 4);
        assert_eq!(table.strategy(), p.name());
        // every cell is text partitioned
        assert!(table.text_partitioned_fraction() > 0.99);
        let summary = evaluate_distribution(&mut table, &sample, CostConstants::default());
        // every insertion must be routed somewhere
        let total_ins: u64 = summary.per_worker.iter().map(|w| w.insertions).sum();
        assert!(total_ins >= sample.insertions().len() as u64);
        // all four workers must receive some queries
        assert!(
            summary
                .per_worker
                .iter()
                .filter(|w| w.insertions > 0)
                .count()
                >= 2,
            "{}: query load concentrated on too few workers",
            p.name()
        );
    }

    #[test]
    fn frequency_partitioner_distributes_terms() {
        check_partitioner(&FrequencyPartitioner::default());
    }

    #[test]
    fn hypergraph_partitioner_distributes_terms() {
        check_partitioner(&HypergraphPartitioner::default());
    }

    #[test]
    fn metric_partitioner_distributes_terms() {
        check_partitioner(&MetricPartitioner::default());
    }

    #[test]
    fn hypergraph_keeps_cooccurring_terms_together_more_often_than_frequency() {
        let sample = sample();
        let hyper = HypergraphPartitioner::default().partition(&sample, 4);
        let freq = FrequencyPartitioner::default().partition(&sample, 4);
        // count queries whose two keywords land on the same worker
        let colocated = |table: &RoutingTable| -> usize {
            sample
                .insertions()
                .iter()
                .filter(|q| {
                    let terms = q.keywords.all_terms();
                    let cell = table.grid().cell_of(&q.region.center()).unwrap();
                    let workers: std::collections::HashSet<_> = terms
                        .iter()
                        .map(|t| table.cell_routing(cell).worker_for(*t))
                        .collect();
                    workers.len() == 1
                })
                .count()
        };
        assert!(colocated(&hyper) >= colocated(&freq));
    }

    #[test]
    fn routing_never_misses_matches() {
        // The fundamental correctness property of any routing table: if a
        // query matches an object, at least one worker receives both.
        let sample = sample();
        for p in [
            &FrequencyPartitioner::default() as &dyn Partitioner,
            &HypergraphPartitioner::default(),
            &MetricPartitioner::default(),
        ] {
            let table = p.partition(&sample, 4);
            let query_workers: Vec<Vec<WorkerId>> = sample
                .insertions()
                .iter()
                .map(|q| table.route_insert(q))
                .collect();
            for o in sample.objects() {
                let ow = table.route_object(o);
                for (q, qw) in sample.insertions().iter().zip(&query_workers) {
                    if q.matches(o) {
                        assert!(
                            qw.iter().any(|w| ow.contains(w)),
                            "{}: query {:?} matches object {:?} but no common worker",
                            p.name(),
                            q.id,
                            o.id
                        );
                    }
                }
            }
        }
    }
}
