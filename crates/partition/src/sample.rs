//! Workload samples — the input of every partitioning algorithm.
//!
//! A [`WorkloadSample`] is a representative snapshot of the recent stream: a
//! set of spatio-textual objects together with the STS query insertions and
//! deletions observed in the same period (the `O`, `Q^i` and `Q^d` of
//! Definition 2). Partitioners analyze the sample to build a routing table;
//! the global load adjustment periodically collects a fresh sample and
//! re-runs the partitioner.

use ps2stream_geo::Rect;
use ps2stream_model::{SpatioTextualObject, StsQuery};
use ps2stream_text::{TermDistribution, TermStats};

/// A snapshot of the recent workload used to drive partitioning decisions.
#[derive(Debug, Clone)]
pub struct WorkloadSample {
    bounds: Rect,
    objects: Vec<SpatioTextualObject>,
    insertions: Vec<StsQuery>,
    deletions: Vec<StsQuery>,
    object_stats: TermStats,
    query_stats: TermStats,
}

impl WorkloadSample {
    /// Builds a sample. `bounds` is the spatial extent of the data space; it
    /// is expanded if any object or query lies outside it.
    pub fn new(
        bounds: Rect,
        objects: Vec<SpatioTextualObject>,
        insertions: Vec<StsQuery>,
        deletions: Vec<StsQuery>,
    ) -> Self {
        let mut bounds = bounds;
        for o in &objects {
            bounds.expand_to_point(&o.location);
        }
        for q in insertions.iter().chain(deletions.iter()) {
            bounds = bounds.union(&q.region);
        }
        let mut object_stats = TermStats::new();
        for o in &objects {
            object_stats.observe(&o.terms);
        }
        let mut query_stats = TermStats::new();
        for q in &insertions {
            query_stats.observe(&q.keywords.all_terms());
        }
        Self {
            bounds,
            objects,
            insertions,
            deletions,
            object_stats,
            query_stats,
        }
    }

    /// Convenience constructor without deletions.
    pub fn from_objects_and_queries(
        bounds: Rect,
        objects: Vec<SpatioTextualObject>,
        insertions: Vec<StsQuery>,
    ) -> Self {
        Self::new(bounds, objects, insertions, Vec::new())
    }

    /// Spatial extent of the sample.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The sampled objects.
    pub fn objects(&self) -> &[SpatioTextualObject] {
        &self.objects
    }

    /// The sampled query insertion requests.
    pub fn insertions(&self) -> &[StsQuery] {
        &self.insertions
    }

    /// The sampled query deletion requests.
    pub fn deletions(&self) -> &[StsQuery] {
        &self.deletions
    }

    /// Term document-frequencies over the sampled objects.
    pub fn object_stats(&self) -> &TermStats {
        &self.object_stats
    }

    /// Term document-frequencies over the sampled query keywords.
    pub fn query_stats(&self) -> &TermStats {
        &self.query_stats
    }

    /// Returns true if the sample has neither objects nor queries.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Term distribution of the object texts whose location falls in `rect`.
    pub fn object_distribution_in(&self, rect: &Rect) -> TermDistribution {
        let mut d = TermDistribution::new();
        for o in &self.objects {
            if rect.contains_point(&o.location) {
                d.add_terms(&o.terms);
            }
        }
        d
    }

    /// Term distribution of the keywords of queries whose region overlaps
    /// `rect`.
    pub fn query_distribution_in(&self, rect: &Rect) -> TermDistribution {
        let mut d = TermDistribution::new();
        for q in &self.insertions {
            if rect.intersects(&q.region) {
                d.add_terms(&q.keywords.all_terms());
            }
        }
        d
    }

    /// The cosine text similarity `simt(O_n, Q_n)` between objects and
    /// queries restricted to `rect` (Algorithm 1, line 5).
    pub fn text_similarity_in(&self, rect: &Rect) -> f64 {
        self.object_distribution_in(rect)
            .cosine_similarity(&self.query_distribution_in(rect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Point;
    use ps2stream_model::{ObjectId, QueryId, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId};

    fn obj(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    fn sample() -> WorkloadSample {
        WorkloadSample::new(
            Rect::from_coords(0.0, 0.0, 10.0, 10.0),
            vec![
                obj(1, &[1, 2], 1.0, 1.0),
                obj(2, &[1], 2.0, 2.0),
                obj(3, &[3], 8.0, 8.0),
            ],
            vec![
                qry(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0)),
                qry(2, &[3], Rect::from_coords(7.0, 7.0, 9.0, 9.0)),
            ],
            vec![qry(3, &[2], Rect::from_coords(0.0, 0.0, 1.0, 1.0))],
        )
    }

    #[test]
    fn stats_computed_on_construction() {
        let s = sample();
        assert_eq!(s.object_stats().frequency(TermId(1)), 2);
        assert_eq!(s.object_stats().frequency(TermId(3)), 1);
        assert_eq!(s.query_stats().frequency(TermId(1)), 1);
        assert_eq!(s.query_stats().num_docs(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.deletions().len(), 1);
    }

    #[test]
    fn bounds_expand_to_cover_data() {
        let s = WorkloadSample::new(
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            vec![obj(1, &[1], 5.0, 5.0)],
            vec![qry(1, &[1], Rect::from_coords(-2.0, -2.0, -1.0, -1.0))],
            vec![],
        );
        assert!(s.bounds().contains_point(&Point::new(5.0, 5.0)));
        assert!(s
            .bounds()
            .contains_rect(&Rect::from_coords(-2.0, -2.0, -1.0, -1.0)));
    }

    #[test]
    fn regional_distributions() {
        let s = sample();
        let left = Rect::from_coords(0.0, 0.0, 5.0, 5.0);
        let d_obj = s.object_distribution_in(&left);
        assert_eq!(d_obj.weight(TermId(1)), 2.0);
        assert_eq!(d_obj.weight(TermId(3)), 0.0);
        let d_qry = s.query_distribution_in(&left);
        assert_eq!(d_qry.weight(TermId(1)), 1.0);
        assert_eq!(d_qry.weight(TermId(3)), 0.0);
    }

    #[test]
    fn text_similarity_reflects_region_alignment() {
        let s = sample();
        // left region: objects {1,2,1} vs queries {1} -> high similarity
        let left = Rect::from_coords(0.0, 0.0, 5.0, 5.0);
        // right region: objects {3} vs queries {3} -> perfect similarity
        let right = Rect::from_coords(6.0, 6.0, 10.0, 10.0);
        assert!(s.text_similarity_in(&left) > 0.5);
        assert!((s.text_similarity_in(&right) - 1.0).abs() < 1e-9);
        // empty region -> zero similarity
        assert_eq!(
            s.text_similarity_in(&Rect::from_coords(4.0, 4.0, 5.0, 5.0)),
            0.0
        );
    }

    #[test]
    fn empty_sample() {
        let s = WorkloadSample::new(
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            vec![],
            vec![],
            vec![],
        );
        assert!(s.is_empty());
        assert_eq!(s.text_similarity_in(&s.bounds()), 0.0);
    }
}
