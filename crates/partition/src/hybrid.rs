//! Hybrid workload partitioning — Algorithm 1 of the paper.
//!
//! The hybrid partitioner decomposes the workload into *units* by choosing,
//! per subspace, between space-partitioning and text-partitioning:
//!
//! 1. **Phase 1** — the space is recursively split (kd-style) driven by the
//!    cosine text similarity between the objects and the queries of each
//!    subspace. Subspaces whose similarity is at least the threshold `δ` go
//!    to `Ns` (candidates for space partitioning); subspaces whose similarity
//!    cannot be reduced further by splitting go to `Nt` (text partitioning).
//! 2. **Phase 2** — if fewer nodes than workers were produced, a dynamic
//!    program (`ComputeNumberPartitions`) decides how many partitions each
//!    node receives so that the total workload is minimized; `PartitionNode`
//!    then splits every node (text-partitioning nodes in `Nt`; whichever of
//!    text/space yields less workload for nodes in `Ns`). Finally
//!    `MergeNodesIntoPartitions` packs the resulting units onto the `m`
//!    workers and keeps splitting the heaviest node until the load-balance
//!    constraint `L_max / L_min ≤ σ` holds (or `θ` nodes exist).
//!
//! The output is a [`RoutingTable`] equivalent to the paper's kdt-tree /
//! gridt index: some cells route to a single worker, others route by term.

use crate::load::CostConstants;
use crate::partitioner::Partitioner;
use crate::routing::{CellRouting, RoutingTable, TermRouting};
use crate::sample::WorkloadSample;
use ps2stream_geo::{Rect, UniformGrid};
use ps2stream_model::WorkerId;
use ps2stream_text::{TermDistribution, TermId, TermStats};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the hybrid partitioner.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Routing-grid granularity exponent (2⁶×2⁶ by default, as in the paper).
    pub grid_exp: u32,
    /// Text-similarity threshold `δ` above which a subspace is considered
    /// unsuitable for text partitioning (Algorithm 1, line 5).
    pub delta: f64,
    /// Load-balance constraint `σ` (`L_max / L_min ≤ σ`).
    pub sigma: f64,
    /// Tolerance for the `|α − simt(O_n, Q_n)| ≈ 0` test (line 9).
    pub epsilon: f64,
    /// Maximum number of nodes `θ` produced while trying to satisfy the
    /// balance constraint (line 26).
    pub theta: usize,
    /// Cost constants of the load model (Definition 1).
    pub costs: CostConstants,
    /// Maximum depth of the Phase-1 similarity-driven splitting.
    pub max_depth: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            grid_exp: 6,
            delta: 0.5,
            sigma: 1.5,
            epsilon: 0.02,
            theta: 512,
            costs: CostConstants::default(),
            max_depth: 8,
        }
    }
}

/// The hybrid partitioning algorithm (the paper's primary contribution).
#[derive(Debug, Clone, Default)]
pub struct HybridPartitioner {
    /// Algorithm parameters.
    pub config: HybridConfig,
}

impl HybridPartitioner {
    /// Creates a hybrid partitioner with explicit configuration.
    pub fn new(config: HybridConfig) -> Self {
        Self { config }
    }
}

/// Whether a node was classified for space- or text-partitioning in Phase 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeClass {
    /// Member of `Ns`: high object/query text similarity.
    Space,
    /// Member of `Nt`: low, locally irreducible text similarity.
    Text,
}

/// A Phase-1 node: a subspace plus the sampled objects/queries it contains.
#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    /// Indices into `sample.objects()` of objects located in the rect.
    objects: Vec<usize>,
    /// Indices into `sample.insertions()` of queries overlapping the rect.
    queries: Vec<usize>,
    class: NodeClass,
}

/// A workload unit produced by Phase 2: either a subspace assigned wholly to
/// one worker, or a (subspace, term group) pair.
#[derive(Debug, Clone)]
struct Unit {
    rect: Rect,
    /// `None` = spatial unit (all terms); `Some(terms)` = text unit.
    terms: Option<Vec<TermId>>,
    objects: Vec<usize>,
    queries: Vec<usize>,
}

impl Unit {
    fn load(&self, costs: &CostConstants) -> f64 {
        node_load(self.objects.len(), self.queries.len(), costs)
    }
}

fn node_load(objects: usize, queries: usize, costs: &CostConstants) -> f64 {
    costs.c1 * objects as f64 * queries as f64
        + costs.c2 * objects as f64
        + costs.c3 * queries as f64
}

impl Partitioner for HybridPartitioner {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable {
        assert!(
            num_workers > 0,
            "hybrid partitioning requires at least one worker"
        );
        let cfg = &self.config;
        let grid = UniformGrid::with_power_of_two(sample.bounds(), cfg.grid_exp);
        let stats: Arc<TermStats> = Arc::new(sample.object_stats().clone());

        if sample.is_empty() {
            let cells = vec![CellRouting::Single(WorkerId(0)); grid.num_cells()];
            return RoutingTable::new(grid, cells, num_workers, stats, self.name());
        }

        // ---- Phase 1: similarity-driven spatial decomposition ----
        let mut nodes = phase1(sample, cfg);

        // ---- Phase 2: decide per-node partition counts and split ----
        let mut units: Vec<Unit> = Vec::new();
        if nodes.len() < num_workers {
            let counts = compute_number_partitions(sample, &nodes, num_workers, cfg);
            for (node, k) in nodes.drain(..).zip(counts) {
                units.extend(partition_node(sample, &node, k, cfg));
            }
        } else {
            units.extend(nodes.drain(..).map(|n| Unit {
                rect: n.rect,
                terms: None,
                objects: n.objects,
                queries: n.queries,
            }));
        }

        // ---- Balance loop: merge into m partitions, split the heaviest
        // unit until the balance constraint holds or θ units exist ----
        let assignment = loop {
            let assignment = merge_units_into_partitions(&units, num_workers, cfg);
            let loads = partition_loads(&units, &assignment, num_workers, cfg);
            let max = loads.iter().cloned().fold(f64::MIN, f64::max);
            let min = loads.iter().cloned().fold(f64::MAX, f64::min);
            let balanced = min > 0.0 && max / min <= cfg.sigma;
            if balanced || units.len() >= cfg.theta {
                break assignment;
            }
            // split the heaviest unit in two
            let heaviest = units
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.load(&cfg.costs)
                        .partial_cmp(&b.1.load(&cfg.costs))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .expect("at least one unit exists");
            let unit = units.swap_remove(heaviest);
            let replacements = split_unit(sample, &unit, cfg);
            if replacements.len() <= 1 {
                // cannot be split further: restore and accept the imbalance
                units.push(unit);
                break merge_units_into_partitions(&units, num_workers, cfg);
            }
            units.extend(replacements);
        };

        build_routing_table(
            sample,
            grid,
            &units,
            &assignment,
            num_workers,
            stats,
            self.name(),
        )
    }
}

// ---------------------------------------------------------------------------
// Phase 1
// ---------------------------------------------------------------------------

fn text_similarity(sample: &WorkloadSample, objects: &[usize], queries: &[usize]) -> f64 {
    let mut od = TermDistribution::new();
    for &i in objects {
        od.add_terms(&sample.objects()[i].terms);
    }
    let mut qd = TermDistribution::new();
    for &i in queries {
        qd.add_terms(&sample.insertions()[i].keywords.all_terms());
    }
    od.cosine_similarity(&qd)
}

/// Splits a node's contents at the spatial median of its objects along `dim`.
fn split_node_contents(sample: &WorkloadSample, node: &Node, dim: usize) -> Option<(Node, Node)> {
    if node.objects.len() < 2 {
        return None;
    }
    let mut coords: Vec<f64> = node
        .objects
        .iter()
        .map(|&i| sample.objects()[i].location.coord(dim))
        .collect();
    coords.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = coords[coords.len() / 2];
    let lo = node.rect.min.coord(dim);
    let hi = node.rect.max.coord(dim);
    if median <= lo || median >= hi {
        return None;
    }
    let (low_rect, high_rect) = node.rect.split_at(dim, median);
    let make = |rect: Rect| {
        let objects: Vec<usize> = node
            .objects
            .iter()
            .copied()
            .filter(|&i| rect.contains_point(&sample.objects()[i].location))
            .collect();
        let queries: Vec<usize> = node
            .queries
            .iter()
            .copied()
            .filter(|&i| rect.intersects(&sample.insertions()[i].region))
            .collect();
        Node {
            rect,
            objects,
            queries,
            class: NodeClass::Space,
        }
    };
    // assign objects on the split line to the low side only
    let mut low = make(low_rect);
    let mut high = make(high_rect);
    // avoid double counting objects exactly on the boundary
    let boundary: Vec<usize> = low
        .objects
        .iter()
        .copied()
        .filter(|i| high.objects.contains(i))
        .collect();
    high.objects.retain(|i| !boundary.contains(i));
    if low.objects.is_empty() && high.objects.is_empty() {
        return None;
    }
    low.class = NodeClass::Space;
    high.class = NodeClass::Space;
    Some((low, high))
}

/// Phase 1 of Algorithm 1 (lines 1–12).
fn phase1(sample: &WorkloadSample, cfg: &HybridConfig) -> Vec<Node> {
    let root = Node {
        rect: sample.bounds(),
        objects: (0..sample.objects().len()).collect(),
        queries: (0..sample.insertions().len()).collect(),
        class: NodeClass::Space,
    };
    let mut unresolved = vec![(root, 0usize)];
    let mut resolved: Vec<Node> = Vec::new();
    while let Some((mut node, depth)) = unresolved.pop() {
        let sim = text_similarity(sample, &node.objects, &node.queries);
        if sim >= cfg.delta || depth >= cfg.max_depth {
            node.class = NodeClass::Space;
            resolved.push(node);
            continue;
        }
        // try both split directions, keep the one minimizing
        // α = min(sim(n1), sim(n2))
        let mut best: Option<(f64, Node, Node)> = None;
        for dim in 0..2 {
            if let Some((a, b)) = split_node_contents(sample, &node, dim) {
                let alpha = text_similarity(sample, &a.objects, &a.queries)
                    .min(text_similarity(sample, &b.objects, &b.queries));
                if best
                    .as_ref()
                    .map(|(best_alpha, _, _)| alpha < *best_alpha)
                    .unwrap_or(true)
                {
                    best = Some((alpha, a, b));
                }
            }
        }
        match best {
            Some((alpha, a, b)) => {
                if (alpha - sim).abs() <= cfg.epsilon {
                    // splitting does not change the similarity: the node is
                    // consistent and goes to Nt
                    node.class = NodeClass::Text;
                    resolved.push(node);
                } else {
                    unresolved.push((a, depth + 1));
                    unresolved.push((b, depth + 1));
                }
            }
            None => {
                // cannot be split spatially; classify by similarity
                node.class = if sim >= cfg.delta {
                    NodeClass::Space
                } else {
                    NodeClass::Text
                };
                resolved.push(node);
            }
        }
    }
    resolved
}

// ---------------------------------------------------------------------------
// Phase 2: ComputeNumberPartitions (DP) and PartitionNode
// ---------------------------------------------------------------------------

/// The dynamic program of Section IV-B: decides how many partitions each node
/// receives so that the sum of loads after partitioning is minimal and the
/// total number of partitions equals `m`.
fn compute_number_partitions(
    sample: &WorkloadSample,
    nodes: &[Node],
    m: usize,
    cfg: &HybridConfig,
) -> Vec<usize> {
    let n = nodes.len();
    if n == 0 {
        return Vec::new();
    }
    if n >= m {
        return vec![1; n];
    }
    let max_k = m - (n - 1);
    // C[i][k] = total load after partitioning node i into k+1 parts
    let mut c = vec![vec![f64::INFINITY; max_k + 1]; n];
    for (i, node) in nodes.iter().enumerate() {
        for (k, cost) in c[i].iter_mut().enumerate().skip(1) {
            *cost = partition_node_cost(sample, node, k, cfg);
        }
    }
    // L[i][j] = minimal load partitioning the first i nodes into j partitions
    let mut l = vec![vec![f64::INFINITY; m + 1]; n + 1];
    let mut choice = vec![vec![0usize; m + 1]; n + 1];
    l[0][0] = 0.0;
    for i in 1..=n {
        for j in i..=m {
            for k in 1..=max_k.min(j - (i - 1)) {
                let prev = l[i - 1][j - k];
                if prev.is_finite() {
                    let cand = prev + c[i - 1][k];
                    if cand < l[i][j] {
                        l[i][j] = cand;
                        choice[i][j] = k;
                    }
                }
            }
        }
    }
    // backtrack
    let mut counts = vec![1usize; n];
    let mut j = m;
    for i in (1..=n).rev() {
        let k = choice[i][j].max(1);
        counts[i - 1] = k;
        j -= k;
    }
    counts
}

/// The load that would result from partitioning `node` into `k` parts,
/// without materializing the partition (the `C[i, k]` of the DP).
fn partition_node_cost(sample: &WorkloadSample, node: &Node, k: usize, cfg: &HybridConfig) -> f64 {
    partition_node(sample, node, k, cfg)
        .iter()
        .map(|u| u.load(&cfg.costs))
        .sum()
}

/// `PartitionNode`: splits a node into `k` units. Nodes in `Nt` are
/// text-partitioned; for nodes in `Ns` both strategies are evaluated and the
/// cheaper one is used.
fn partition_node(sample: &WorkloadSample, node: &Node, k: usize, cfg: &HybridConfig) -> Vec<Unit> {
    if k <= 1 {
        return vec![Unit {
            rect: node.rect,
            terms: None,
            objects: node.objects.clone(),
            queries: node.queries.clone(),
        }];
    }
    match node.class {
        NodeClass::Text => text_partition_node(sample, node, k),
        NodeClass::Space => {
            let by_space = space_partition_node(sample, node, k);
            let by_text = text_partition_node(sample, node, k);
            let space_load: f64 = by_space.iter().map(|u| u.load(&cfg.costs)).sum();
            let text_load: f64 = by_text.iter().map(|u| u.load(&cfg.costs)).sum();
            if text_load < space_load {
                by_text
            } else {
                by_space
            }
        }
    }
}

/// Splits a single unit into two (used by the balance loop). Text units are
/// split by terms, spatial units follow the `PartitionNode` rule.
fn split_unit(sample: &WorkloadSample, unit: &Unit, cfg: &HybridConfig) -> Vec<Unit> {
    let node = Node {
        rect: unit.rect,
        objects: unit.objects.clone(),
        queries: unit.queries.clone(),
        class: if unit.terms.is_some() {
            NodeClass::Text
        } else {
            NodeClass::Space
        },
    };
    if let Some(terms) = &unit.terms {
        // restrict the text split to the unit's terms
        if terms.len() < 2 {
            return vec![unit.clone()];
        }
        return text_partition_node_restricted(sample, &node, 2, Some(terms));
    }
    let parts = partition_node(sample, &node, 2, cfg);
    if parts.len() < 2 {
        vec![unit.clone()]
    } else {
        parts
    }
}

/// Space-partitions a node into `k` spatial units using median kd splits of
/// its objects; queries overlapping several sub-rects are replicated (the
/// source of the extra workload that makes space partitioning lose when query
/// ranges are large).
fn space_partition_node(sample: &WorkloadSample, node: &Node, k: usize) -> Vec<Unit> {
    let mut parts = vec![Node {
        rect: node.rect,
        objects: node.objects.clone(),
        queries: node.queries.clone(),
        class: NodeClass::Space,
    }];
    while parts.len() < k {
        // split the part with the most objects
        let (idx, _) = match parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.objects.len() >= 2)
            .max_by_key(|(_, p)| p.objects.len())
        {
            Some((i, p)) => (i, p),
            None => break,
        };
        let part = parts.swap_remove(idx);
        let dim = part.rect.longest_dim();
        match split_node_contents(sample, &part, dim)
            .or_else(|| split_node_contents(sample, &part, 1 - dim))
        {
            Some((a, b)) => {
                parts.push(a);
                parts.push(b);
            }
            None => {
                parts.push(part);
                break;
            }
        }
    }
    parts
        .into_iter()
        .map(|p| Unit {
            rect: p.rect,
            terms: None,
            objects: p.objects,
            queries: p.queries,
        })
        .collect()
}

/// Text-partitions a node into `k` term groups balanced by the matching load
/// of each posting term; objects containing terms of several groups are
/// replicated.
fn text_partition_node(sample: &WorkloadSample, node: &Node, k: usize) -> Vec<Unit> {
    text_partition_node_restricted(sample, node, k, None)
}

fn text_partition_node_restricted(
    sample: &WorkloadSample,
    node: &Node,
    k: usize,
    restrict_terms: Option<&[TermId]>,
) -> Vec<Unit> {
    // posting term of each query in the node
    let stats = sample.object_stats();
    let mut term_queries: HashMap<TermId, Vec<usize>> = HashMap::new();
    for &qi in &node.queries {
        let q = &sample.insertions()[qi];
        for t in q.keywords.representative_terms(|t| stats.frequency(t)) {
            if let Some(allowed) = restrict_terms {
                if !allowed.contains(&t) {
                    continue;
                }
            }
            term_queries.entry(t).or_default().push(qi);
        }
    }
    if term_queries.is_empty() {
        return vec![Unit {
            rect: node.rect,
            terms: Some(restrict_terms.map(<[TermId]>::to_vec).unwrap_or_default()),
            objects: node.objects.clone(),
            queries: node.queries.clone(),
        }];
    }
    // weight of a term = queries posted under it × objects containing it
    let mut terms: Vec<(TermId, f64)> = term_queries
        .iter()
        .map(|(t, qs)| {
            let obj_count = node
                .objects
                .iter()
                .filter(|&&oi| sample.objects()[oi].contains_term(*t))
                .count();
            (*t, (qs.len() as f64) * (obj_count.max(1) as f64))
        })
        .collect();
    terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let k = k.min(terms.len()).max(1);
    // LPT over term weights
    let mut groups: Vec<Vec<TermId>> = vec![Vec::new(); k];
    let mut group_load = vec![0.0f64; k];
    for (t, w) in terms {
        let (best, _) = group_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("k >= 1");
        groups[best].push(t);
        group_load[best] += w;
    }
    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|terms| {
            let queries: Vec<usize> = {
                let mut qs: Vec<usize> = terms
                    .iter()
                    .flat_map(|t| term_queries.get(t).cloned().unwrap_or_default())
                    .collect();
                qs.sort_unstable();
                qs.dedup();
                qs
            };
            let objects: Vec<usize> = node
                .objects
                .iter()
                .copied()
                .filter(|&oi| terms.iter().any(|t| sample.objects()[oi].contains_term(*t)))
                .collect();
            Unit {
                rect: node.rect,
                terms: Some(terms),
                objects,
                queries,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// MergeNodesIntoPartitions and routing-table construction
// ---------------------------------------------------------------------------

/// Packs the units onto `m` workers: units are visited in descending load
/// order; each goes to the worker whose load increases the least, unless that
/// would worsen the balance factor, in which case it goes to the currently
/// lightest worker (which is the same destination under additive loads, kept
/// as two explicit steps to mirror the paper's description).
fn merge_units_into_partitions(units: &[Unit], m: usize, cfg: &HybridConfig) -> Vec<WorkerId> {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| {
        units[b]
            .load(&cfg.costs)
            .partial_cmp(&units[a].load(&cfg.costs))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut loads = vec![0.0f64; m];
    let mut assignment = vec![WorkerId(0); units.len()];
    for idx in order {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("m >= 1");
        loads[best] += units[idx].load(&cfg.costs);
        assignment[idx] = WorkerId(best as u32);
    }
    assignment
}

fn partition_loads(
    units: &[Unit],
    assignment: &[WorkerId],
    m: usize,
    cfg: &HybridConfig,
) -> Vec<f64> {
    let mut loads = vec![0.0f64; m];
    for (u, w) in units.iter().zip(assignment) {
        loads[w.index()] += u.load(&cfg.costs);
    }
    loads
}

/// Converts the final unit → worker assignment into the gridt routing table.
#[allow(clippy::too_many_arguments)]
fn build_routing_table(
    sample: &WorkloadSample,
    grid: UniformGrid,
    units: &[Unit],
    assignment: &[WorkerId],
    num_workers: usize,
    stats: Arc<TermStats>,
    name: &str,
) -> RoutingTable {
    // group text units by identical rect so one term map per region is built
    let mut cells: Vec<CellRouting> = vec![CellRouting::Single(WorkerId(0)); grid.num_cells()];
    // process spatial units first (they claim whole cells), then text units
    // (they overwrite their cells with term maps)
    for (u, w) in units.iter().zip(assignment) {
        if u.terms.is_some() {
            continue;
        }
        for cell in grid.cells_overlapping(&u.rect) {
            let center = grid.cell_rect(cell).center();
            if u.rect.contains_point(&center) {
                cells[grid.cell_index(cell)] = CellRouting::Single(*w);
            }
        }
    }
    // collect term maps per rect
    let mut rect_maps: Vec<(Rect, TermRouting)> = Vec::new();
    for (u, w) in units.iter().zip(assignment) {
        let Some(terms) = &u.terms else { continue };
        let entry = rect_maps.iter_mut().find(|(r, _)| *r == u.rect);
        let routing = match entry {
            Some((_, routing)) => routing,
            None => {
                rect_maps.push((u.rect, TermRouting::new(HashMap::new(), *w)));
                &mut rect_maps.last_mut().expect("just pushed").1
            }
        };
        for &t in terms {
            routing.assign(t, *w);
        }
    }
    for (rect, routing) in rect_maps {
        for cell in grid.cells_overlapping(&rect) {
            let center = grid.cell_rect(cell).center();
            if rect.contains_point(&center) {
                cells[grid.cell_index(cell)] = CellRouting::OwnedTerms(routing.clone());
            }
        }
    }
    let _ = sample;
    RoutingTable::new(grid, cells, num_workers, stats, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::CostConstants;
    use crate::partitioner::evaluate_distribution;
    use crate::space::KdTreePartitioner;
    use crate::text::MetricPartitioner;
    use ps2stream_geo::Point;
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn obj(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    /// The Figure-2 scenario: region r1 (left) has large, clustered query
    /// ranges whose keywords differ from the local objects (text partitioning
    /// should win there); region r2 (right) has small well-spread queries
    /// whose keywords match the local objects (space partitioning wins).
    fn figure2_sample() -> WorkloadSample {
        let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let mut objects = Vec::new();
        let mut queries = Vec::new();
        let mut id = 0u64;
        // region r1: x in [0, 32): objects talk about terms 0..10, queries
        // ask about rare terms 100..110 with large ranges
        for i in 0..150u64 {
            let x = (i % 30) as f64 + 1.0;
            let y = (i % 60) as f64 + 1.0;
            objects.push(obj(id, &[(i % 10) as u32, ((i + 3) % 10) as u32], x, y));
            id += 1;
        }
        for i in 0..80u64 {
            let x = (i % 25) as f64 + 2.0;
            let y = (i % 50) as f64 + 2.0;
            queries.push(qry(
                id,
                &[(100 + i % 10) as u32],
                Rect::square(Point::new(x, y), 25.0),
            ));
            id += 1;
        }
        // region r2: x in [32, 64): objects and queries share terms 200..220,
        // small query ranges, well spread. Objects carry several terms each
        // (tweet-like), which is what makes text partitioning replicate them.
        for i in 0..150u64 {
            let x = 33.0 + (i % 30) as f64;
            let y = (i % 60) as f64 + 1.0;
            let terms: Vec<u32> = (0..5).map(|k| (200 + (i + 4 * k) % 20) as u32).collect();
            objects.push(obj(id, &terms, x, y));
            id += 1;
        }
        for i in 0..40u64 {
            let x = 34.0 + (i % 28) as f64;
            let y = (i % 55) as f64 + 2.0;
            queries.push(qry(
                id,
                &[(200 + i % 20) as u32],
                Rect::square(Point::new(x, y), 3.0),
            ));
            id += 1;
        }
        WorkloadSample::from_objects_and_queries(bounds, objects, queries)
    }

    #[test]
    fn hybrid_produces_valid_table() {
        let sample = figure2_sample();
        let p = HybridPartitioner::default();
        let table = p.partition(&sample, 8);
        assert_eq!(table.num_workers(), 8);
        assert_eq!(table.strategy(), "Hybrid");
    }

    #[test]
    fn hybrid_mixes_space_and_text_partitioning_on_heterogeneous_data() {
        let sample = figure2_sample();
        let table = HybridPartitioner::default().partition(&sample, 8);
        let frac = table.text_partitioned_fraction();
        assert!(
            frac > 0.0 && frac < 1.0,
            "expected a mix of space- and text-partitioned cells, got fraction {frac}"
        );
    }

    #[test]
    fn hybrid_never_misses_matches() {
        let sample = figure2_sample();
        let table = HybridPartitioner::default().partition(&sample, 8);
        let query_workers: Vec<Vec<WorkerId>> = sample
            .insertions()
            .iter()
            .map(|q| table.route_insert(q))
            .collect();
        for o in sample.objects() {
            let ow = table.route_object(o);
            for (q, qw) in sample.insertions().iter().zip(&query_workers) {
                if q.matches(o) {
                    assert!(
                        qw.iter().any(|w| ow.contains(w)),
                        "query {:?} matches object {:?} but no common worker",
                        q.id,
                        o.id
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_total_load_not_worse_than_both_baselines() {
        // On the heterogeneous Figure-2 workload, hybrid should not produce
        // more total load than the better of the two pure strategies, and
        // should beat the worse one.
        let sample = figure2_sample();
        let costs = CostConstants::default();
        let load_of =
            |mut t: RoutingTable| evaluate_distribution(&mut t, &sample, costs).total_load();
        let hybrid = load_of(HybridPartitioner::default().partition(&sample, 8));
        let kd = load_of(KdTreePartitioner::default().partition(&sample, 8));
        let metric = load_of(MetricPartitioner::default().partition(&sample, 8));
        let best = kd.min(metric);
        let worst = kd.max(metric);
        assert!(
            hybrid <= worst * 1.05,
            "hybrid {hybrid} should not exceed the worse baseline {worst}"
        );
        assert!(
            hybrid <= best * 1.5,
            "hybrid {hybrid} should be in the ballpark of the better baseline {best}"
        );
    }

    #[test]
    fn hybrid_respects_balance_constraint_when_feasible() {
        let sample = figure2_sample();
        let cfg = HybridConfig {
            sigma: 2.0,
            ..HybridConfig::default()
        };
        let mut table = HybridPartitioner::new(cfg).partition(&sample, 4);
        let summary = evaluate_distribution(&mut table, &sample, CostConstants::default());
        // allow slack: the balance constraint is enforced on estimated unit
        // loads, the replay measures true routed load
        assert!(
            summary.balance_factor() < 6.0,
            "balance factor too high: {}",
            summary.balance_factor()
        );
    }

    #[test]
    fn hybrid_handles_single_worker_and_empty_sample() {
        let sample = figure2_sample();
        let table = HybridPartitioner::default().partition(&sample, 1);
        assert_eq!(table.num_workers(), 1);
        let empty = WorkloadSample::new(
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            vec![],
            vec![],
            vec![],
        );
        let table = HybridPartitioner::default().partition(&empty, 4);
        assert_eq!(table.num_workers(), 4);
    }

    #[test]
    fn compute_number_partitions_totals_m() {
        let sample = figure2_sample();
        let cfg = HybridConfig::default();
        let nodes = phase1(&sample, &cfg);
        if nodes.len() < 8 {
            let counts = compute_number_partitions(&sample, &nodes, 8, &cfg);
            assert_eq!(counts.len(), nodes.len());
            assert_eq!(counts.iter().sum::<usize>(), 8);
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn phase1_separates_dissimilar_regions() {
        let sample = figure2_sample();
        let cfg = HybridConfig::default();
        let nodes = phase1(&sample, &cfg);
        assert!(!nodes.is_empty());
        // nodes tile the bounds (approximately, by area)
        let area: f64 = nodes.iter().map(|n| n.rect.area()).sum();
        assert!((area - sample.bounds().area()).abs() / sample.bounds().area() < 1e-6);
        // at least one node should be classified for text partitioning
        // because region r1's objects and queries have disjoint vocabularies
        assert!(
            nodes.iter().any(|n| n.class == NodeClass::Text),
            "expected at least one Nt node"
        );
    }
}
