//! Workload partitioning for PS2Stream.
//!
//! This crate contains the paper's primary algorithmic contribution — the
//! **hybrid workload partitioning** of Section IV — together with the load
//! model (Definition 1), the dispatcher routing table (the gridt index of
//! Section IV-C) and all six baseline partitioners evaluated in Section VI-B:
//! frequency-, hypergraph- and metric-based text partitioning, and grid,
//! kd-tree and R-tree space partitioning.
//!
//! # Example
//!
//! Routing a query insertion and then an object through a (degenerate
//! single-worker) gridt table — both under `&self`, the read-mostly hot
//! path contract:
//!
//! ```
//! use ps2stream_geo::{Point, Rect};
//! use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId, WorkerId};
//! use ps2stream_partition::RoutingTable;
//! use ps2stream_text::{BooleanExpr, TermId, TermStats};
//! use std::sync::Arc;
//!
//! let table = RoutingTable::single_worker(
//!     Rect::from_coords(0.0, 0.0, 16.0, 16.0),
//!     2,
//!     Arc::new(TermStats::new()),
//! );
//! let query = StsQuery::new(
//!     QueryId(1),
//!     SubscriberId(1),
//!     BooleanExpr::and_of([TermId(7)]),
//!     Rect::from_coords(0.0, 0.0, 4.0, 4.0),
//! );
//! assert_eq!(table.route_insert(&query), vec![WorkerId(0)]);
//!
//! // the object carries a registered term: routed to the cell's worker
//! let object = SpatioTextualObject::new(ObjectId(1), vec![TermId(7)], Point::new(1.0, 1.0));
//! assert_eq!(table.route_object(&object), vec![WorkerId(0)]);
//! // an object with no registered term is discarded at the dispatcher
//! let other = SpatioTextualObject::new(ObjectId(2), vec![TermId(8)], Point::new(1.0, 1.0));
//! assert!(table.route_object(&other).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hybrid;
pub mod load;
pub mod partitioner;
pub mod registry;
pub mod routing;
pub mod sample;
pub mod space;
pub mod text;

pub use hybrid::{HybridConfig, HybridPartitioner};
pub use load::{CostConstants, DistributionSummary, WorkerLoad};
pub use partitioner::{balanced_assignment, evaluate_distribution, Partitioner};
pub use registry::TermRegistry;
pub use routing::{CellRouting, RoutingTable, TermRouting};
pub use sample::WorkloadSample;
pub use space::{GridPartitioner, KdTreePartitioner, RTreePartitioner};
pub use text::{FrequencyPartitioner, HypergraphPartitioner, MetricPartitioner};

/// Every partitioner evaluated in the paper, in the order of Figure 6/7.
pub fn all_partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(FrequencyPartitioner::default()),
        Box::new(HypergraphPartitioner::default()),
        Box::new(MetricPartitioner::default()),
        Box::new(GridPartitioner::default()),
        Box::new(KdTreePartitioner::default()),
        Box::new(RTreePartitioner::default()),
        Box::new(HybridPartitioner::default()),
    ]
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_model::{
        ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId, WorkerId,
    };
    use ps2stream_text::{BooleanExpr, TermId};

    fn arb_object(id: u64) -> impl Strategy<Value = SpatioTextualObject> {
        (
            proptest::collection::vec(0u32..30, 1..6),
            0.0f64..64.0,
            0.0f64..64.0,
        )
            .prop_map(move |(terms, x, y)| {
                SpatioTextualObject::new(
                    ObjectId(id),
                    terms.into_iter().map(TermId).collect(),
                    Point::new(x, y),
                )
            })
    }

    fn arb_query(id: u64) -> impl Strategy<Value = StsQuery> {
        (
            proptest::collection::vec(0u32..30, 1..3),
            0.0f64..64.0,
            0.0f64..64.0,
            1.0f64..30.0,
            proptest::bool::ANY,
        )
            .prop_map(move |(terms, x, y, side, is_and)| {
                let terms: Vec<TermId> = terms.into_iter().map(TermId).collect();
                let expr = if is_and {
                    BooleanExpr::and_of(terms)
                } else {
                    BooleanExpr::or_of(terms)
                };
                StsQuery::new(
                    QueryId(id),
                    SubscriberId(id),
                    expr,
                    Rect::square(Point::new(x, y), side),
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The completeness invariant of the whole system: for every
        /// partitioning strategy, whenever a query matches an object, at
        /// least one worker receives both the query and the object.
        #[test]
        fn no_strategy_ever_misses_a_match(
            objects in proptest::collection::vec((0u64..10_000).prop_flat_map(arb_object), 1..40),
            queries in proptest::collection::vec((0u64..10_000).prop_flat_map(arb_query), 1..25),
            workers in 1usize..9,
        ) {
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let sample = WorkloadSample::from_objects_and_queries(
                bounds,
                objects.clone(),
                queries.clone(),
            );
            for p in all_partitioners() {
                let table = p.partition(&sample, workers);
                prop_assert_eq!(table.num_workers(), workers);
                let query_workers: Vec<Vec<WorkerId>> =
                    queries.iter().map(|q| table.route_insert(q)).collect();
                for qw in &query_workers {
                    // every query must be routed to at least one worker
                    prop_assert!(!qw.is_empty(), "{}: query not routed", p.name());
                    prop_assert!(qw.iter().all(|w| w.index() < workers));
                }
                for o in &objects {
                    let ow = table.route_object(o);
                    prop_assert!(ow.iter().all(|w| w.index() < workers));
                    for (q, qw) in queries.iter().zip(&query_workers) {
                        if q.matches(o) {
                            prop_assert!(
                                qw.iter().any(|w| ow.contains(w)),
                                "{}: match lost between query {:?} and object {:?}",
                                p.name(), q.id, o.id
                            );
                        }
                    }
                }
            }
        }
    }
}
