//! The partitioner abstraction and distribution evaluation.
//!
//! Every workload partitioning strategy of the paper — the text and space
//! baselines of Section VI-B and the hybrid algorithm of Section IV-B — is a
//! [`Partitioner`]: it consumes a [`WorkloadSample`] and produces a
//! [`RoutingTable`] for `m` workers. [`evaluate_distribution`] replays a
//! sample through a routing table and reports the resulting per-worker loads
//! (Definition 1), total load and balance factor — the quantities the Optimal
//! Workload Partitioning problem (Definition 2) optimizes.

use crate::load::{CostConstants, DistributionSummary, WorkerLoad};
use crate::routing::RoutingTable;
use crate::sample::WorkloadSample;
use ps2stream_model::WorkerId;

/// A workload partitioning strategy.
pub trait Partitioner {
    /// Short human-readable name used in benchmark output (e.g. "Hybrid",
    /// "kd-tree", "Metric").
    fn name(&self) -> &'static str;

    /// Builds a routing table distributing the sampled workload over
    /// `num_workers` workers.
    fn partition(&self, sample: &WorkloadSample, num_workers: usize) -> RoutingTable;
}

/// Replays the sample through the routing table (insertions first, so that
/// the `H2` filters are populated, then objects, then deletions) and returns
/// the resulting per-worker load components.
pub fn evaluate_distribution(
    table: &mut RoutingTable,
    sample: &WorkloadSample,
    costs: CostConstants,
) -> DistributionSummary {
    let mut per_worker = vec![WorkerLoad::default(); table.num_workers()];
    for q in sample.insertions() {
        for w in table.route_insert(q) {
            per_worker[w.index()].insertions += 1;
        }
    }
    for o in sample.objects() {
        for w in table.route_object(o) {
            per_worker[w.index()].objects += 1;
        }
    }
    for q in sample.deletions() {
        for w in table.route_delete(q) {
            per_worker[w.index()].deletions += 1;
        }
    }
    DistributionSummary::new(per_worker, costs)
}

/// Greedily assigns weighted items to `num_workers` bins so that bin weights
/// stay balanced: items are visited in descending weight order and each goes
/// to the currently lightest bin (classic LPT scheduling). Returns the bin
/// (worker) index of every item, in the original item order.
pub fn balanced_assignment(weights: &[f64], num_workers: usize) -> Vec<WorkerId> {
    assert!(
        num_workers > 0,
        "balanced_assignment requires at least one worker"
    );
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut bin_load = vec![0.0f64; num_workers];
    let mut assignment = vec![WorkerId(0); weights.len()];
    for idx in order {
        let (best, _) = bin_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("num_workers > 0");
        bin_load[best] += weights[idx].max(0.0);
        assignment[idx] = WorkerId(best as u32);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId, TermStats};
    use std::sync::Arc;

    fn obj(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    #[test]
    fn balanced_assignment_spreads_load() {
        let weights = vec![5.0, 4.0, 3.0, 3.0, 2.0, 1.0];
        let assignment = balanced_assignment(&weights, 2);
        let mut bins = [0.0f64; 2];
        for (i, w) in assignment.iter().enumerate() {
            bins[w.index()] += weights[i];
        }
        assert!((bins[0] - bins[1]).abs() <= 2.0, "bins {bins:?}");
    }

    #[test]
    fn balanced_assignment_single_worker() {
        let assignment = balanced_assignment(&[1.0, 2.0, 3.0], 1);
        assert!(assignment.iter().all(|w| *w == WorkerId(0)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn balanced_assignment_zero_workers_panics() {
        let _ = balanced_assignment(&[1.0], 0);
    }

    #[test]
    fn evaluate_distribution_counts_routed_tuples() {
        let bounds = Rect::from_coords(0.0, 0.0, 16.0, 16.0);
        let sample = WorkloadSample::new(
            bounds,
            vec![
                obj(1, &[1], 1.0, 1.0),
                obj(2, &[1], 15.0, 15.0),
                obj(3, &[9], 1.0, 1.0),
            ],
            vec![qry(1, &[1], Rect::from_coords(0.0, 0.0, 16.0, 16.0))],
            vec![qry(2, &[1], Rect::from_coords(0.0, 0.0, 2.0, 2.0))],
        );
        let mut table = RoutingTable::single_worker(bounds, 2, Arc::new(TermStats::new()));
        let summary = evaluate_distribution(&mut table, &sample, CostConstants::default());
        assert_eq!(summary.per_worker.len(), 1);
        // the query spans the whole space -> 1 insertion; objects with term 1
        // are routed, the term-9 object is discarded; 1 deletion.
        assert_eq!(summary.per_worker[0].insertions, 1);
        assert_eq!(summary.per_worker[0].objects, 2);
        assert_eq!(summary.per_worker[0].deletions, 1);
        assert!(summary.total_load() > 0.0);
        assert_eq!(summary.balance_factor(), 1.0);
    }
}
