//! The workload / load model of PS2Stream.
//!
//! Definition 1 of the paper: given a time period, the load of worker `w_i`
//! is
//!
//! ```text
//! L_i = c1 * |O_i| * |Q^i_i|  +  c2 * |O_i|  +  c3 * |Q^i_i|  +  c4 * |Q^d_i|
//! ```
//!
//! where `O_i` are the objects routed to the worker, `Q^i_i` the query
//! insertions and `Q^d_i` the query deletions, and `c1..c4` are the average
//! costs of a match check, of handling one object, one insertion and one
//! deletion respectively.

use serde::{Deserialize, Serialize};

/// The cost constants `c1..c4` of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// Average cost of checking whether one object matches one STS query.
    pub c1: f64,
    /// Average cost of handling one object (routing, cell lookup, ...).
    pub c2: f64,
    /// Average cost of handling one STS query insertion.
    pub c3: f64,
    /// Average cost of handling one STS query deletion.
    pub c4: f64,
}

impl Default for CostConstants {
    /// Defaults calibrated so that matching dominates (c1 is per
    /// object-query pair), insertion and deletion are comparable, and plain
    /// object handling is cheapest — the same ordering the paper assumes.
    fn default() -> Self {
        Self {
            c1: 0.001,
            c2: 1.0,
            c3: 2.0,
            c4: 1.0,
        }
    }
}

/// The measured workload components of one worker over a period.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerLoad {
    /// `|O_i|`: number of objects routed to the worker.
    pub objects: u64,
    /// `|Q^i_i|`: number of STS query insertion requests routed to the worker.
    pub insertions: u64,
    /// `|Q^d_i|`: number of STS query deletion requests routed to the worker.
    pub deletions: u64,
}

impl WorkerLoad {
    /// Creates a load record.
    pub fn new(objects: u64, insertions: u64, deletions: u64) -> Self {
        Self {
            objects,
            insertions,
            deletions,
        }
    }

    /// Evaluates Definition 1 with the given cost constants.
    pub fn load(&self, costs: &CostConstants) -> f64 {
        costs.c1 * self.objects as f64 * self.insertions as f64
            + costs.c2 * self.objects as f64
            + costs.c3 * self.insertions as f64
            + costs.c4 * self.deletions as f64
    }

    /// Adds another load record to this one.
    pub fn accumulate(&mut self, other: &WorkerLoad) {
        self.objects += other.objects;
        self.insertions += other.insertions;
        self.deletions += other.deletions;
    }

    /// Total number of tuples routed to the worker.
    pub fn tuples(&self) -> u64 {
        self.objects + self.insertions + self.deletions
    }
}

/// Summary of a complete workload distribution across `m` workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Per-worker load components.
    pub per_worker: Vec<WorkerLoad>,
    /// Cost constants used for the scalar load values.
    pub costs: CostConstants,
}

impl DistributionSummary {
    /// Creates a summary.
    pub fn new(per_worker: Vec<WorkerLoad>, costs: CostConstants) -> Self {
        Self { per_worker, costs }
    }

    /// Per-worker scalar loads (Definition 1).
    pub fn loads(&self) -> Vec<f64> {
        self.per_worker
            .iter()
            .map(|w| w.load(&self.costs))
            .collect()
    }

    /// Total load across all workers (the quantity the Optimal Workload
    /// Partitioning problem minimizes).
    pub fn total_load(&self) -> f64 {
        self.loads().iter().sum()
    }

    /// The load-balance factor `L_max / L_min` (the constraint of Definition
    /// 2 requires this to stay below σ). Returns `f64::INFINITY` when some
    /// worker received no load at all, and 1.0 for an empty cluster.
    pub fn balance_factor(&self) -> f64 {
        let loads = self.loads();
        if loads.is_empty() {
            return 1.0;
        }
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            if max <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max / min
        }
    }

    /// Total number of replicated tuple deliveries: tuples counted once per
    /// worker they are routed to.
    pub fn total_tuples(&self) -> u64 {
        self.per_worker.iter().map(WorkerLoad::tuples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_formula_matches_definition() {
        let costs = CostConstants {
            c1: 2.0,
            c2: 3.0,
            c3: 5.0,
            c4: 7.0,
        };
        let w = WorkerLoad::new(10, 4, 2);
        // 2*10*4 + 3*10 + 5*4 + 7*2 = 80 + 30 + 20 + 14 = 144
        assert!((w.load(&costs) - 144.0).abs() < 1e-12);
    }

    #[test]
    fn default_costs_make_matching_dominant_at_scale() {
        let costs = CostConstants::default();
        let heavy = WorkerLoad::new(100_000, 10_000, 0);
        let light = WorkerLoad::new(100_000, 0, 0);
        assert!(heavy.load(&costs) > 5.0 * light.load(&costs));
    }

    #[test]
    fn accumulate_and_tuples() {
        let mut a = WorkerLoad::new(1, 2, 3);
        a.accumulate(&WorkerLoad::new(10, 20, 30));
        assert_eq!(a, WorkerLoad::new(11, 22, 33));
        assert_eq!(a.tuples(), 66);
    }

    #[test]
    fn summary_total_and_balance() {
        let costs = CostConstants {
            c1: 0.0,
            c2: 1.0,
            c3: 1.0,
            c4: 1.0,
        };
        let s = DistributionSummary::new(
            vec![WorkerLoad::new(10, 0, 0), WorkerLoad::new(20, 0, 0)],
            costs,
        );
        assert_eq!(s.total_load(), 30.0);
        assert_eq!(s.balance_factor(), 2.0);
        assert_eq!(s.total_tuples(), 30);
    }

    #[test]
    fn balance_factor_edge_cases() {
        let costs = CostConstants::default();
        let empty = DistributionSummary::new(vec![], costs);
        assert_eq!(empty.balance_factor(), 1.0);
        let idle_worker = DistributionSummary::new(
            vec![WorkerLoad::new(10, 0, 0), WorkerLoad::default()],
            costs,
        );
        assert!(idle_worker.balance_factor().is_infinite());
        let all_idle =
            DistributionSummary::new(vec![WorkerLoad::default(), WorkerLoad::default()], costs);
        assert_eq!(all_idle.balance_factor(), 1.0);
    }
}
