//! The sharded, read-mostly query-term registry (`H2`).
//!
//! The gridt routing table registers, for every cell, the set of terms under
//! which at least one STS query is posted: objects carrying none of their
//! cell's registered terms are discarded at the dispatcher (Section IV-C).
//! With several dispatcher executors sharing one routing table, maintaining
//! those per-cell sets behind the table's `RwLock` forces every query
//! insertion to take a **write** lock on the whole table, serializing the
//! ingest path.
//!
//! [`TermRegistry`] moves `H2` into a fixed array of small shards keyed by a
//! hash of the cell; each shard maps its cells to their registered term sets.
//! Lookups take one shard read lock; registrations take a shard read lock
//! first and only upgrade to that shard's write lock when the term is new to
//! the cell — in steady state (the live query population stabilizes around µ,
//! Section VI-A) almost every insertion hits the read-only fast path, and
//! writes that do happen contend on 1/64th of the table at worst. A per-cell
//! atomic counter preserves the "cell has no registered term at all" early
//! discard without touching any shard, and enumerating one cell's terms (the
//! control path of the load adjustment) reads a single shard.

use parking_lot::RwLock;
use ps2stream_text::TermId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of shards; a fixed power of two so the shard of a cell is a mask
/// away from its hash.
const NUM_SHARDS: usize = 64;

/// The sharded per-cell term sets backing the `H2` filters of the routing
/// table. All methods take `&self`.
pub struct TermRegistry {
    /// Each shard maps cell index → registered terms of that cell.
    shards: Vec<RwLock<HashMap<u32, HashSet<TermId>>>>,
    /// Number of distinct terms registered per cell (early-discard fast path).
    cell_counts: Vec<AtomicUsize>,
}

impl TermRegistry {
    /// Creates an empty registry for `num_cells` grid cells.
    pub fn new(num_cells: usize) -> Self {
        let mut shards = Vec::with_capacity(NUM_SHARDS);
        shards.resize_with(NUM_SHARDS, || RwLock::new(HashMap::new()));
        let mut cell_counts = Vec::with_capacity(num_cells);
        cell_counts.resize_with(num_cells, AtomicUsize::default);
        Self {
            shards,
            cell_counts,
        }
    }

    #[inline]
    fn shard_of(cell: u32) -> usize {
        // Fibonacci hashing: cheap and well-distributed for dense cell ids.
        ((cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (NUM_SHARDS - 1)
    }

    /// Returns true if `term` is registered in `cell`.
    #[inline]
    pub fn contains(&self, cell: u32, term: TermId) -> bool {
        self.shards[Self::shard_of(cell)]
            .read()
            .get(&cell)
            .is_some_and(|terms| terms.contains(&term))
    }

    /// Returns true if the cell has no registered term at all (objects in it
    /// are discarded without consulting any shard).
    #[inline]
    pub fn cell_is_empty(&self, cell: usize) -> bool {
        self.cell_counts
            .get(cell)
            .is_none_or(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// Registers `term` in `cell`. Read-only when the pair is already present
    /// (the steady-state fast path); otherwise takes one shard write lock.
    /// Returns true if the pair was newly registered.
    pub fn insert(&self, cell: u32, term: TermId) -> bool {
        let shard = &self.shards[Self::shard_of(cell)];
        if shard
            .read()
            .get(&cell)
            .is_some_and(|terms| terms.contains(&term))
        {
            return false;
        }
        let inserted = shard.write().entry(cell).or_default().insert(term);
        if inserted {
            if let Some(count) = self.cell_counts.get(cell as usize) {
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
        inserted
    }

    /// Probes several terms of one cell under a **single** shard read lock,
    /// calling `f` for each registered term in order; `f` returns false to
    /// stop early. This is the object hot path: one lock acquisition per
    /// object instead of one per term.
    pub fn probe_terms(&self, cell: u32, terms: &[TermId], mut f: impl FnMut(TermId) -> bool) {
        let shard = self.shards[Self::shard_of(cell)].read();
        let Some(registered) = shard.get(&cell) else {
            return;
        };
        for &t in terms {
            if registered.contains(&t) && !f(t) {
                break;
            }
        }
    }

    /// The registered terms of one cell (one shard read lock; used by the
    /// control path of the dynamic load adjustment).
    pub fn terms_of_cell(&self, cell: u32) -> HashSet<TermId> {
        if self.cell_is_empty(cell as usize) {
            return HashSet::new();
        }
        self.shards[Self::shard_of(cell)]
            .read()
            .get(&cell)
            .cloned()
            .unwrap_or_default()
    }

    /// Total number of `(cell, term)` registrations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(HashSet::len).sum::<usize>())
            .sum()
    }

    /// Returns true if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.cell_counts
            .iter()
            .all(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_usage(&self) -> usize {
        let cells_with_terms: usize = self.shards.iter().map(|s| s.read().len()).sum();
        std::mem::size_of::<Self>()
            + self.shards.len() * std::mem::size_of::<RwLock<HashMap<u32, HashSet<TermId>>>>()
            + cells_with_terms
                * (std::mem::size_of::<u32>() + std::mem::size_of::<HashSet<TermId>>())
            + self.len() * (std::mem::size_of::<TermId>() + 16)
            + self.cell_counts.len() * std::mem::size_of::<AtomicUsize>()
    }
}

impl Clone for TermRegistry {
    fn clone(&self) -> Self {
        let shards = self
            .shards
            .iter()
            .map(|s| RwLock::new(s.read().clone()))
            .collect();
        let cell_counts = self
            .cell_counts
            .iter()
            .map(|c| AtomicUsize::new(c.load(Ordering::Relaxed)))
            .collect();
        Self {
            shards,
            cell_counts,
        }
    }
}

impl std::fmt::Debug for TermRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TermRegistry")
            .field("registrations", &self.len())
            .field("cells", &self.cell_counts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_and_contains() {
        let r = TermRegistry::new(16);
        assert!(r.is_empty());
        assert!(r.cell_is_empty(3));
        assert!(r.insert(3, TermId(7)));
        assert!(!r.insert(3, TermId(7))); // idempotent
        assert!(r.contains(3, TermId(7)));
        assert!(!r.contains(3, TermId(8)));
        assert!(!r.contains(4, TermId(7)));
        assert!(!r.cell_is_empty(3));
        assert!(r.cell_is_empty(4));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn terms_of_cell_is_per_cell() {
        let r = TermRegistry::new(8);
        for t in 0..100u32 {
            r.insert(5, TermId(t));
        }
        r.insert(6, TermId(1));
        let terms = r.terms_of_cell(5);
        assert_eq!(terms.len(), 100);
        assert!(terms.contains(&TermId(42)));
        assert_eq!(r.terms_of_cell(6).len(), 1);
        assert_eq!(r.terms_of_cell(7).len(), 0);
        assert_eq!(r.len(), 101);
    }

    #[test]
    fn probe_terms_filters_and_stops_early() {
        let r = TermRegistry::new(8);
        r.insert(2, TermId(1));
        r.insert(2, TermId(3));
        let mut seen = Vec::new();
        r.probe_terms(2, &[TermId(0), TermId(1), TermId(2), TermId(3)], |t| {
            seen.push(t);
            true
        });
        assert_eq!(seen, vec![TermId(1), TermId(3)]);
        // early exit after the first registered term
        let mut seen = Vec::new();
        r.probe_terms(2, &[TermId(1), TermId(3)], |t| {
            seen.push(t);
            false
        });
        assert_eq!(seen, vec![TermId(1)]);
        // unregistered cell probes nothing
        r.probe_terms(5, &[TermId(1)], |_| panic!("cell 5 has no terms"));
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let r = TermRegistry::new(4);
        r.insert(1, TermId(1));
        let snapshot = r.clone();
        r.insert(1, TermId(2));
        assert!(snapshot.contains(1, TermId(1)));
        assert!(!snapshot.contains(1, TermId(2)));
        assert!(r.contains(1, TermId(2)));
    }

    #[test]
    fn concurrent_registration_under_shared_reference() {
        let r = Arc::new(TermRegistry::new(64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        // every thread registers the same pairs: heavy collisions
                        r.insert(i % 64, TermId(i % 250));
                        assert!(r.contains(i % 64, TermId(i % 250)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // (i % 64, i % 250) is injective over 0..500 (lcm(64, 250) > 500)
        assert_eq!(r.len(), 500);
    }
}
