//! The sharded, read-mostly, NUMA-aware query-term registry (`H2`).
//!
//! The gridt routing table registers, for every cell, the set of terms under
//! which at least one STS query is posted: objects carrying none of their
//! cell's registered terms are discarded at the dispatcher (Section IV-C).
//! With several dispatcher executors sharing one routing table, maintaining
//! those per-cell sets behind the table's `RwLock` forces every query
//! insertion to take a **write** lock on the whole table, serializing the
//! ingest path.
//!
//! [`TermRegistry`] therefore keeps `H2` in a **two-level** structure:
//!
//! * **Shard groups, one per NUMA node.** Each group is an array of small
//!   lock-striped shards (`shards_per_group`, a power of two) mapping cell →
//!   registered term set. Every `(cell, term)` pair has a **home group**
//!   chosen by hashing the cell, which holds the authoritative copy.
//! * **Local-first reads.** A dispatcher thread placed on node `n` (see
//!   `ps2stream_stream::Placement`) resolves lookups through group `n`
//!   first. If the cell has been **promoted** into the local group the whole
//!   probe is served from node-local memory; otherwise the read falls back
//!   to the home group and bumps a per-cell remote-consult counter.
//! * **Write-rare promotion.** When a cell's remote-consult counter crosses
//!   a small threshold, its full term set is replicated into the consulting
//!   node's group. Registrations (`insert`) mirror new terms into every
//!   existing replica *while holding the home shard's write lock*, so a
//!   replica is always as complete as its home copy — negative answers from
//!   a replica are authoritative, which is what keeps the common
//!   "object term is not registered" probe node-local.
//!
//! In steady state (the live query population stabilizes around µ,
//! Section VI-A) almost every insertion hits the read-only fast path, almost
//! every object probe touches only node-local cache lines, and the rare
//! writes contend on one small shard. With a single group (the default, and
//! the detected layout on single-socket machines) the structure collapses
//! exactly to the previous flat sharding: no replicas, no counters on the
//! read path beyond the per-cell emptiness check.
//!
//! Lock ordering: any operation that holds more than one shard lock at once
//! (`insert`'s mirror step, promotion's snapshot-install) acquires the
//! *same shard index* across groups in **ascending group order**, so the
//! pair cannot deadlock.

use parking_lot::RwLock;
use ps2stream_stream::Placement;
use ps2stream_text::TermId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Default number of shards when the registry runs as a single group (the
/// flat layout of single-socket machines); a power of two so the shard of a
/// cell is a mask away from its hash.
const DEFAULT_SHARDS: usize = 64;

/// Remote consults of one cell before its term set is promoted
/// (replicated) into the consulting node's shard group.
const PROMOTE_REMOTE_HITS: u32 = 8;

/// One NUMA node's shard array.
struct ShardGroup {
    shards: Vec<RwLock<HashMap<u32, HashSet<TermId>>>>,
}

impl ShardGroup {
    fn new(shards: usize) -> Self {
        let mut v = Vec::with_capacity(shards);
        v.resize_with(shards, || RwLock::new(HashMap::new()));
        Self { shards: v }
    }
}

/// The sharded per-cell term sets backing the `H2` filters of the routing
/// table. All methods take `&self`.
pub struct TermRegistry {
    /// One shard group per NUMA node; group 0 is the only group on
    /// single-node layouts.
    groups: Vec<ShardGroup>,
    /// Shards per group (power of two).
    shards_per_group: usize,
    /// Number of distinct terms registered per cell (early-discard fast path).
    cell_counts: Vec<AtomicUsize>,
    /// Per-cell count of reads that had to leave their local group;
    /// crossing [`PROMOTE_REMOTE_HITS`] triggers promotion.
    remote_hits: Vec<AtomicU32>,
    /// Per-cell bitmap of groups holding a replica (bit `min(group, 31)`;
    /// bits are only ever set, and only while the cell's home shard write
    /// lock is held). Lets `insert` skip the all-group mirror locking for
    /// the common never-promoted cell.
    replica_mask: Vec<AtomicU32>,
}

impl TermRegistry {
    /// Creates an empty single-group registry for `num_cells` grid cells
    /// (the flat 64-shard layout).
    pub fn new(num_cells: usize) -> Self {
        Self::with_groups(num_cells, 1, DEFAULT_SHARDS)
    }

    /// Creates an empty registry with an explicit shard-group layout:
    /// `num_groups` NUMA-node groups of `shards_per_group` shards each
    /// (rounded up to a power of two).
    pub fn with_groups(num_cells: usize, num_groups: usize, shards_per_group: usize) -> Self {
        let num_groups = num_groups.max(1);
        let shards_per_group = shards_per_group.max(1).next_power_of_two();
        let mut groups = Vec::with_capacity(num_groups);
        groups.resize_with(num_groups, || ShardGroup::new(shards_per_group));
        let mut cell_counts = Vec::with_capacity(num_cells);
        cell_counts.resize_with(num_cells, AtomicUsize::default);
        let mut remote_hits = Vec::with_capacity(num_cells);
        remote_hits.resize_with(num_cells, AtomicU32::default);
        let mut replica_mask = Vec::with_capacity(num_cells);
        replica_mask.resize_with(num_cells, AtomicU32::default);
        Self {
            groups,
            shards_per_group,
            cell_counts,
            remote_hits,
            replica_mask,
        }
    }

    /// The layout for a machine with `num_nodes` NUMA nodes: one group per
    /// node, splitting the default shard budget across the nodes (at least
    /// 8 shards per group so intra-node striping survives high node
    /// counts).
    pub fn for_nodes(num_cells: usize, num_nodes: usize) -> Self {
        let (groups, per_group) = Self::node_layout(num_nodes, None);
        Self::with_groups(num_cells, groups, per_group)
    }

    /// The `(num_groups, shards_per_group)` layout for a machine with
    /// `num_nodes` NUMA nodes, with an optional explicit per-group shard
    /// override (the `numa_shards` system knob).
    pub fn node_layout(num_nodes: usize, shards_per_group: Option<usize>) -> (usize, usize) {
        let nodes = num_nodes.max(1);
        let per_group = shards_per_group
            .unwrap_or((DEFAULT_SHARDS / nodes).max(8))
            .max(1)
            .next_power_of_two();
        (nodes, per_group)
    }

    /// Number of shard groups (NUMA nodes) in this layout.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Shards per group in this layout.
    pub fn shards_per_group(&self) -> usize {
        self.shards_per_group
    }

    /// Rebuilds the registry under a different shard-group layout,
    /// preserving every registration (replicas are dropped; hot cells are
    /// re-promoted by subsequent traffic). Used when the detected topology
    /// differs from the layout the table was built with.
    pub fn resharded(&self, num_groups: usize, shards_per_group: usize) -> Self {
        let out = Self::with_groups(self.cell_counts.len(), num_groups, shards_per_group);
        for (g, group) in self.groups.iter().enumerate() {
            for shard in &group.shards {
                for (&cell, terms) in shard.read().iter() {
                    if self.home_group(cell) != g {
                        continue; // replica: the home copy is identical
                    }
                    for &t in terms {
                        out.insert(cell, t);
                    }
                }
            }
        }
        out
    }

    #[inline]
    fn shard_of(&self, cell: u32) -> usize {
        // Fibonacci hashing: cheap and well-distributed for dense cell ids.
        ((cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
            & (self.shards_per_group - 1)
    }

    /// The group holding the authoritative copy of a cell (uses different
    /// hash bits than [`TermRegistry::shard_of`] so group and shard choice
    /// stay independent).
    #[inline]
    fn home_group(&self, cell: u32) -> usize {
        if self.groups.len() == 1 {
            return 0;
        }
        (((cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize) % self.groups.len()
    }

    /// The group local to the calling thread (its placement node, wrapped
    /// into the layout's group count).
    #[inline]
    fn local_group(&self) -> usize {
        if self.groups.len() == 1 {
            return 0;
        }
        Placement::current_node() % self.groups.len()
    }

    /// Records a read that had to leave its local group; promotes the
    /// cell's term set into the local group once the cell proves hot on
    /// this node.
    fn note_remote_read(&self, cell: u32, local: usize, home: usize) {
        let Some(counter) = self.remote_hits.get(cell as usize) else {
            return;
        };
        if counter.fetch_add(1, Ordering::Relaxed) + 1 >= PROMOTE_REMOTE_HITS {
            self.promote(cell, local, home);
        }
    }

    /// Replicates the home copy of a cell into the local group. Takes the
    /// cell's shard lock in both groups in ascending group order (the same
    /// order `insert`'s mirror step uses), so concurrent registrations can
    /// never be missed by the snapshot.
    fn promote(&self, cell: u32, local: usize, home: usize) {
        debug_assert_ne!(local, home);
        let s = self.shard_of(cell);
        let (first, second) = if local < home {
            (local, home)
        } else {
            (home, local)
        };
        let mut g1 = self.groups[first].shards[s].write();
        let mut g2 = self.groups[second].shards[s].write();
        let (home_guard, local_guard) = if home == first {
            (&mut g1, &mut g2)
        } else {
            (&mut g2, &mut g1)
        };
        if let Some(set) = home_guard.get(&cell) {
            let snapshot = set.clone();
            local_guard.entry(cell).or_insert(snapshot);
            // record the replica while still holding the home write lock —
            // insert's home-only fast path re-checks this mask under that
            // same lock, so a racing registration can never miss the mirror
            if let Some(mask) = self.replica_mask.get(cell as usize) {
                mask.fetch_or(1 << local.min(31), Ordering::Relaxed);
            }
        }
    }

    /// Returns true if `term` is registered in `cell`. Served from the
    /// calling thread's node-local shard group when the cell has been
    /// promoted there.
    #[inline]
    pub fn contains(&self, cell: u32, term: TermId) -> bool {
        let s = self.shard_of(cell);
        let home = self.home_group(cell);
        let local = self.local_group();
        if local != home {
            if let Some(set) = self.groups[local].shards[s].read().get(&cell) {
                return set.contains(&term);
            }
            self.note_remote_read(cell, local, home);
        }
        self.groups[home].shards[s]
            .read()
            .get(&cell)
            .is_some_and(|terms| terms.contains(&term))
    }

    /// Returns true if the cell has no registered term at all (objects in it
    /// are discarded without consulting any shard).
    #[inline]
    pub fn cell_is_empty(&self, cell: usize) -> bool {
        self.cell_counts
            .get(cell)
            .is_none_or(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// Registers `term` in `cell`. Read-only when the pair is already present
    /// (the steady-state fast path); otherwise takes the cell's shard write
    /// lock in every group (ascending order), registering in the home group
    /// and mirroring into every group that holds a replica of the cell.
    /// Returns true if the pair was newly registered.
    pub fn insert(&self, cell: u32, term: TermId) -> bool {
        let s = self.shard_of(cell);
        let home = self.home_group(cell);
        let local = self.local_group();
        // fast path: already registered — a local replica answers without
        // leaving the node (replicas never lag their home copy)
        if local != home {
            if let Some(set) = self.groups[local].shards[s].read().get(&cell) {
                if set.contains(&term) {
                    return false;
                }
            }
        }
        if self.groups[home].shards[s]
            .read()
            .get(&cell)
            .is_some_and(|terms| terms.contains(&term))
        {
            return false;
        }
        // slow path: a genuinely new pair.
        loop {
            let mask = self
                .replica_mask
                .get(cell as usize)
                .map_or(u32::MAX, |m| m.load(Ordering::Relaxed));
            if mask == 0 {
                // No group holds a replica of this cell: the home shard's
                // write lock alone suffices. Promotion can only set a mask
                // bit while holding that same lock, so re-checking under it
                // closes the race (bits are never cleared — at most one
                // retry).
                let mut home_guard = self.groups[home].shards[s].write();
                let raced = self
                    .replica_mask
                    .get(cell as usize)
                    .is_some_and(|m| m.load(Ordering::Relaxed) != 0);
                if raced {
                    drop(home_guard);
                    continue;
                }
                let inserted = home_guard.entry(cell).or_default().insert(term);
                drop(home_guard);
                if inserted {
                    if let Some(count) = self.cell_counts.get(cell as usize) {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return inserted;
            }
            // Replicas exist (or the cell id is untracked): hold this
            // shard's write lock in every group at once so replicas stay
            // exact copies of their home.
            let mut guards: Vec<_> = self.groups.iter().map(|g| g.shards[s].write()).collect();
            let inserted = guards[home].entry(cell).or_default().insert(term);
            if inserted {
                for (g, guard) in guards.iter_mut().enumerate() {
                    if g != home {
                        if let Some(replica) = guard.get_mut(&cell) {
                            replica.insert(term);
                        }
                    }
                }
                if let Some(count) = self.cell_counts.get(cell as usize) {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
            return inserted;
        }
    }

    /// Probes several terms of one cell under a **single** shard read lock,
    /// calling `f` for each registered term in order; `f` returns false to
    /// stop early. This is the object hot path: one lock acquisition per
    /// object instead of one per term, on node-local memory once the cell
    /// has been promoted to the calling thread's group.
    pub fn probe_terms(&self, cell: u32, terms: &[TermId], mut f: impl FnMut(TermId) -> bool) {
        let s = self.shard_of(cell);
        let home = self.home_group(cell);
        let local = self.local_group();
        if local != home {
            {
                let shard = self.groups[local].shards[s].read();
                if let Some(registered) = shard.get(&cell) {
                    for &t in terms {
                        if registered.contains(&t) && !f(t) {
                            break;
                        }
                    }
                    return;
                }
            }
            self.note_remote_read(cell, local, home);
        }
        let shard = self.groups[home].shards[s].read();
        let Some(registered) = shard.get(&cell) else {
            return;
        };
        for &t in terms {
            if registered.contains(&t) && !f(t) {
                break;
            }
        }
    }

    /// The registered terms of one cell (one shard read lock on the home
    /// group; used by the control path of the dynamic load adjustment).
    pub fn terms_of_cell(&self, cell: u32) -> HashSet<TermId> {
        if self.cell_is_empty(cell as usize) {
            return HashSet::new();
        }
        self.groups[self.home_group(cell)].shards[self.shard_of(cell)]
            .read()
            .get(&cell)
            .cloned()
            .unwrap_or_default()
    }

    /// Total number of `(cell, term)` registrations (replicas are not
    /// counted — each pair counts once, at its home group).
    pub fn len(&self) -> usize {
        self.groups
            .iter()
            .enumerate()
            .map(|(g, group)| {
                group
                    .shards
                    .iter()
                    .map(|shard| {
                        shard
                            .read()
                            .iter()
                            .filter(|(&cell, _)| self.home_group(cell) == g)
                            .map(|(_, terms)| terms.len())
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Returns true if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.cell_counts
            .iter()
            .all(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// Number of cells materialized in one shard group — home copies plus
    /// promoted replicas (diagnostics; used by tests and benches to observe
    /// promotion).
    pub fn group_cell_count(&self, group: usize) -> usize {
        self.groups[group]
            .shards
            .iter()
            .map(|s| s.read().len())
            .sum()
    }

    /// Exports every registration in canonical order — home copies only
    /// (replicas are re-promoted by traffic), cells ascending, each cell's
    /// terms ascending. This is the form embedded in durability snapshots:
    /// deterministic bytes regardless of shard layout or promotion history.
    pub fn export_cells(&self) -> Vec<(u32, Vec<TermId>)> {
        let mut out: Vec<(u32, Vec<TermId>)> = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            for shard in &group.shards {
                for (&cell, terms) in shard.read().iter() {
                    if self.home_group(cell) != g {
                        continue; // replica: the home copy is identical
                    }
                    let mut sorted: Vec<TermId> = terms.iter().copied().collect();
                    sorted.sort_unstable();
                    out.push((cell, sorted));
                }
            }
        }
        out.sort_unstable_by_key(|(cell, _)| *cell);
        out
    }

    /// Re-registers an exported registration set (idempotent — pairs already
    /// present are left alone, so importing before a log replay that
    /// re-inserts the same queries is harmless).
    pub fn import_cells(&self, cells: &[(u32, Vec<TermId>)]) {
        for (cell, terms) in cells {
            for &t in terms {
                self.insert(*cell, t);
            }
        }
    }

    /// Approximate memory footprint in bytes (replicas included — they are
    /// real memory).
    pub fn memory_usage(&self) -> usize {
        let mut materialized_cells = 0usize;
        let mut materialized_terms = 0usize;
        for group in &self.groups {
            for shard in &group.shards {
                let shard = shard.read();
                materialized_cells += shard.len();
                materialized_terms += shard.values().map(HashSet::len).sum::<usize>();
            }
        }
        std::mem::size_of::<Self>()
            + self.groups.len()
                * self.shards_per_group
                * std::mem::size_of::<RwLock<HashMap<u32, HashSet<TermId>>>>()
            + materialized_cells
                * (std::mem::size_of::<u32>() + std::mem::size_of::<HashSet<TermId>>())
            + materialized_terms * (std::mem::size_of::<TermId>() + 16)
            + self.cell_counts.len() * std::mem::size_of::<AtomicUsize>()
            + (self.remote_hits.len() + self.replica_mask.len()) * std::mem::size_of::<AtomicU32>()
    }
}

impl Clone for TermRegistry {
    fn clone(&self) -> Self {
        let groups = self
            .groups
            .iter()
            .map(|group| ShardGroup {
                shards: group
                    .shards
                    .iter()
                    .map(|s| RwLock::new(s.read().clone()))
                    .collect(),
            })
            .collect();
        let cell_counts = self
            .cell_counts
            .iter()
            .map(|c| AtomicUsize::new(c.load(Ordering::Relaxed)))
            .collect();
        let remote_hits = self
            .remote_hits
            .iter()
            .map(|c| AtomicU32::new(c.load(Ordering::Relaxed)))
            .collect();
        let replica_mask = self
            .replica_mask
            .iter()
            .map(|c| AtomicU32::new(c.load(Ordering::Relaxed)))
            .collect();
        Self {
            groups,
            shards_per_group: self.shards_per_group,
            cell_counts,
            remote_hits,
            replica_mask,
        }
    }
}

impl std::fmt::Debug for TermRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TermRegistry")
            .field("registrations", &self.len())
            .field("cells", &self.cell_counts.len())
            .field("groups", &self.groups.len())
            .field("shards_per_group", &self.shards_per_group)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Runs `f` on a thread emulating placement on `node` (the registry
    /// reads the thread-local placement to pick its local group).
    fn on_node<T: Send>(node: usize, f: impl FnOnce() -> T + Send) -> T {
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    Placement::set_current(Placement { node, cpu: None });
                    f()
                })
                .join()
                .unwrap()
        })
    }

    #[test]
    fn insert_and_contains() {
        let r = TermRegistry::new(16);
        assert!(r.is_empty());
        assert!(r.cell_is_empty(3));
        assert!(r.insert(3, TermId(7)));
        assert!(!r.insert(3, TermId(7))); // idempotent
        assert!(r.contains(3, TermId(7)));
        assert!(!r.contains(3, TermId(8)));
        assert!(!r.contains(4, TermId(7)));
        assert!(!r.cell_is_empty(3));
        assert!(r.cell_is_empty(4));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn terms_of_cell_is_per_cell() {
        let r = TermRegistry::new(8);
        for t in 0..100u32 {
            r.insert(5, TermId(t));
        }
        r.insert(6, TermId(1));
        let terms = r.terms_of_cell(5);
        assert_eq!(terms.len(), 100);
        assert!(terms.contains(&TermId(42)));
        assert_eq!(r.terms_of_cell(6).len(), 1);
        assert_eq!(r.terms_of_cell(7).len(), 0);
        assert_eq!(r.len(), 101);
    }

    #[test]
    fn probe_terms_filters_and_stops_early() {
        let r = TermRegistry::new(8);
        r.insert(2, TermId(1));
        r.insert(2, TermId(3));
        let mut seen = Vec::new();
        r.probe_terms(2, &[TermId(0), TermId(1), TermId(2), TermId(3)], |t| {
            seen.push(t);
            true
        });
        assert_eq!(seen, vec![TermId(1), TermId(3)]);
        // early exit after the first registered term
        let mut seen = Vec::new();
        r.probe_terms(2, &[TermId(1), TermId(3)], |t| {
            seen.push(t);
            false
        });
        assert_eq!(seen, vec![TermId(1)]);
        // unregistered cell probes nothing
        r.probe_terms(5, &[TermId(1)], |_| panic!("cell 5 has no terms"));
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let r = TermRegistry::new(4);
        r.insert(1, TermId(1));
        let snapshot = r.clone();
        r.insert(1, TermId(2));
        assert!(snapshot.contains(1, TermId(1)));
        assert!(!snapshot.contains(1, TermId(2)));
        assert!(r.contains(1, TermId(2)));
    }

    #[test]
    fn concurrent_registration_under_shared_reference() {
        let r = Arc::new(TermRegistry::new(64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        // every thread registers the same pairs: heavy collisions
                        r.insert(i % 64, TermId(i % 250));
                        assert!(r.contains(i % 64, TermId(i % 250)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // (i % 64, i % 250) is injective over 0..500 (lcm(64, 250) > 500)
        assert_eq!(r.len(), 500);
    }

    #[test]
    fn layouts_normalize() {
        let r = TermRegistry::with_groups(8, 0, 0);
        assert_eq!(r.num_groups(), 1);
        assert_eq!(r.shards_per_group(), 1);
        let r = TermRegistry::with_groups(8, 3, 12);
        assert_eq!(r.num_groups(), 3);
        assert_eq!(r.shards_per_group(), 16); // rounded to a power of two
        let r = TermRegistry::for_nodes(8, 2);
        assert_eq!(r.num_groups(), 2);
        assert_eq!(r.shards_per_group(), 32);
        let r = TermRegistry::for_nodes(8, 16);
        assert_eq!(r.shards_per_group(), 8); // floor survives high node counts
    }

    #[test]
    fn multi_group_registrations_are_visible_from_every_node() {
        let r = TermRegistry::with_groups(64, 3, 8);
        for cell in 0..64u32 {
            r.insert(cell, TermId(cell));
        }
        for node in 0..4 {
            // node 3 wraps into group 0: still correct
            on_node(node, || {
                for cell in 0..64u32 {
                    assert!(r.contains(cell, TermId(cell)));
                    assert!(!r.contains(cell, TermId(cell + 100)));
                }
            });
        }
        assert_eq!(r.len(), 64);
    }

    #[test]
    fn hot_cells_promote_into_the_reading_node_and_stay_exact() {
        let r = TermRegistry::with_groups(16, 2, 8);
        // find a cell whose home is group 0 so reads from node 1 are remote
        let cell = (0..16u32).find(|c| r.home_group(*c) == 0).unwrap();
        r.insert(cell, TermId(1));
        let baseline = r.group_cell_count(1);
        on_node(1, || {
            for _ in 0..(PROMOTE_REMOTE_HITS + 2) {
                assert!(r.contains(cell, TermId(1)));
            }
        });
        assert_eq!(
            r.group_cell_count(1),
            baseline + 1,
            "the hot cell must be replicated into node 1's group"
        );
        // registrations after promotion reach the replica synchronously
        r.insert(cell, TermId(2));
        on_node(1, || {
            assert!(r.contains(cell, TermId(2)));
            assert!(!r.contains(cell, TermId(3)));
        });
        // replicas never double-count
        assert_eq!(r.len(), 2);
        assert_eq!(r.terms_of_cell(cell).len(), 2);
    }

    #[test]
    fn promotion_probe_reports_each_term_exactly_once() {
        // "no double-route": a promoted cell must not surface a term twice
        // (once from the replica, once from the home copy)
        let r = TermRegistry::with_groups(16, 2, 8);
        let cell = (0..16u32).find(|c| r.home_group(*c) == 0).unwrap();
        let terms: Vec<TermId> = (0..6u32).map(TermId).collect();
        for &t in &terms {
            r.insert(cell, t);
        }
        on_node(1, || {
            for _ in 0..(PROMOTE_REMOTE_HITS + 2) {
                let mut seen = Vec::new();
                r.probe_terms(cell, &terms, |t| {
                    seen.push(t);
                    true
                });
                assert_eq!(seen, terms, "each registered term exactly once, in order");
            }
        });
    }

    #[test]
    fn concurrent_reads_promotions_and_inserts_agree() {
        // Hammer the same cells from two emulated nodes while a third
        // thread keeps registering new terms: no read may ever see a term
        // the home group doesn't have, and the final state must be exact.
        let r = Arc::new(TermRegistry::with_groups(32, 2, 8));
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    r.insert(i % 32, TermId(i / 32));
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|node| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    Placement::set_current(Placement { node, cpu: None });
                    for i in 0..2_000u32 {
                        let cell = i % 32;
                        let mut count = 0;
                        // the writer's terms stop at TermId(62): 63 must
                        // never surface
                        r.probe_terms(cell, &[TermId(0), TermId(1), TermId(63)], |t| {
                            assert_ne!(t, TermId(63), "TermId(63) is never registered");
                            count += 1;
                            true
                        });
                        assert!(count <= 2);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 2_000);
        for cell in 0..32u32 {
            let expected = (0..2_000u32).filter(|i| i % 32 == cell).count();
            assert_eq!(r.terms_of_cell(cell).len(), expected);
        }
    }

    #[test]
    fn export_import_roundtrips_canonically() {
        let r = TermRegistry::with_groups(32, 2, 8);
        for i in 0..300u32 {
            r.insert(i % 24, TermId(i % 61));
        }
        // promotions must not leak replicas into the export
        on_node(1, || {
            for _ in 0..(PROMOTE_REMOTE_HITS + 1) {
                for cell in 0..24u32 {
                    r.contains(cell, TermId(0));
                }
            }
        });
        let exported = r.export_cells();
        let cells: Vec<u32> = exported.iter().map(|(c, _)| *c).collect();
        let mut sorted = cells.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cells, sorted, "cells ascending, no replica duplicates");
        assert_eq!(
            exported.iter().map(|(_, t)| t.len()).sum::<usize>(),
            r.len()
        );
        // import into a different layout: contents identical
        let fresh = TermRegistry::with_groups(32, 1, 4);
        fresh.import_cells(&exported);
        assert_eq!(fresh.len(), r.len());
        for (cell, terms) in &exported {
            assert_eq!(
                fresh.terms_of_cell(*cell),
                terms.iter().copied().collect::<HashSet<_>>()
            );
        }
        // importing twice changes nothing, and the export is deterministic
        fresh.import_cells(&exported);
        assert_eq!(fresh.len(), r.len());
        assert_eq!(fresh.export_cells(), exported);
    }

    #[test]
    fn reshard_preserves_every_registration_without_duplicates() {
        // The rebalance regression: moving between shard-group layouts
        // (including after promotions created replicas) must neither drop a
        // term nor surface one twice.
        let r = TermRegistry::with_groups(64, 2, 8);
        let mut reference: HashMap<u32, HashSet<TermId>> = HashMap::new();
        for i in 0..1_000u32 {
            let cell = i % 48;
            let term = TermId(i % 97);
            r.insert(cell, term);
            reference.entry(cell).or_default().insert(term);
        }
        // create replicas by hammering every cell from the non-home node
        for node in 0..2 {
            on_node(node, || {
                for _ in 0..(PROMOTE_REMOTE_HITS + 1) {
                    for cell in 0..48u32 {
                        r.contains(cell, TermId(0));
                    }
                }
            });
        }
        let expected_len: usize = reference.values().map(HashSet::len).sum();
        assert_eq!(r.len(), expected_len);
        for layout in [(3usize, 8usize), (1, 64), (4, 16)] {
            let resharded = r.resharded(layout.0, layout.1);
            assert_eq!(resharded.num_groups(), layout.0);
            assert_eq!(resharded.len(), expected_len, "no term dropped or doubled");
            for (cell, terms) in &reference {
                assert_eq!(&resharded.terms_of_cell(*cell), terms);
                // probe from every node: each term exactly once
                for node in 0..layout.0 {
                    on_node(node, || {
                        let all: Vec<TermId> = terms.iter().copied().collect();
                        let mut seen = HashSet::new();
                        resharded.probe_terms(*cell, &all, |t| {
                            assert!(seen.insert(t), "term {t:?} double-routed");
                            true
                        });
                        assert_eq!(seen.len(), terms.len(), "term dropped by reshard");
                    });
                }
            }
        }
    }
}
