//! Smoke test: every partitioner evaluated in the paper runs end-to-end on a
//! tiny workload sample, and `all_partitioners()` pins the Figure 6/7
//! ordering (the three text partitioners, the three space partitioners, then
//! the hybrid).

use ps2stream_geo::{Point, Rect};
use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
use ps2stream_partition::{all_partitioners, evaluate_distribution, CostConstants, WorkloadSample};
use ps2stream_text::{BooleanExpr, TermId};

fn obj(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
    SpatioTextualObject::new(
        ObjectId(id),
        terms.iter().map(|t| TermId(*t)).collect(),
        Point::new(x, y),
    )
}

fn qry(id: u64, terms: &[u32], region: Rect) -> StsQuery {
    StsQuery::new(
        QueryId(id),
        SubscriberId(id),
        BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
        region,
    )
}

fn tiny_sample() -> WorkloadSample {
    WorkloadSample::new(
        Rect::from_coords(0.0, 0.0, 10.0, 10.0),
        vec![
            obj(1, &[1, 2], 1.0, 1.0),
            obj(2, &[1], 2.0, 2.0),
            obj(3, &[3], 8.0, 8.0),
            obj(4, &[2, 3], 9.0, 1.0),
            obj(5, &[4], 1.0, 9.0),
        ],
        vec![
            qry(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0)),
            qry(2, &[3], Rect::from_coords(7.0, 7.0, 9.0, 9.0)),
            qry(3, &[2], Rect::from_coords(8.0, 0.0, 10.0, 2.0)),
            qry(4, &[4], Rect::from_coords(0.0, 8.0, 2.0, 10.0)),
        ],
        vec![qry(5, &[2], Rect::from_coords(0.0, 0.0, 1.0, 1.0))],
    )
}

/// The Figure 6/7 ordering the evaluation binaries and plots rely on.
const FIGURE_6_7_ORDER: [&str; 7] = [
    "Frequency",
    "Hypergraph",
    "Metric",
    "Grid",
    "kd-tree",
    "R-tree",
    "Hybrid",
];

#[test]
fn all_partitioners_are_in_figure_order() {
    let names: Vec<&str> = all_partitioners().iter().map(|p| p.name()).collect();
    assert_eq!(names, FIGURE_6_7_ORDER);
}

#[test]
fn every_partitioner_runs_end_to_end_on_a_tiny_sample() {
    let sample = tiny_sample();
    for workers in [1usize, 3] {
        for p in all_partitioners() {
            let mut table = p.partition(&sample, workers);
            assert_eq!(
                table.num_workers(),
                workers,
                "{}: wrong worker count",
                p.name()
            );

            // every query insertion must be routed to at least one worker,
            // and only to valid workers
            for q in sample.insertions() {
                let routed = table.route_insert(q);
                assert!(
                    !routed.is_empty(),
                    "{}: query {:?} unrouted",
                    p.name(),
                    q.id
                );
                assert!(
                    routed.iter().all(|w| (w.0 as usize) < workers),
                    "{}: routed {:?} out of range",
                    p.name(),
                    routed
                );
            }

            // objects route to at most `workers` distinct workers
            for o in sample.objects() {
                let routed = table.route_object(o);
                assert!(
                    routed.iter().all(|w| (w.0 as usize) < workers),
                    "{}: object routed {:?} out of range",
                    p.name(),
                    routed
                );
            }

            // the load model must accept the resulting distribution
            let summary = evaluate_distribution(&mut table, &sample, CostConstants::default());
            assert!(
                summary.total_load() > 0.0,
                "{}: zero total load on a non-empty sample",
                p.name()
            );
        }
    }
}
