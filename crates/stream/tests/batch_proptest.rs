//! Property tests of the [`BatchBuffer`] reorder buffers under adversarial
//! delivery.
//!
//! The dispatcher and worker hot paths rely on `BatchBuffer` to regroup a
//! routed record stream into per-output batches. The batches leave through
//! three doors — threshold flushes from `push`, targeted `flush`, and
//! `flush_all` — and correctness means: for every output, concatenating all
//! batches that ever left it reproduces exactly the pushed record sequence
//! (no loss, no duplication, no reordering), no emitted batch exceeds the
//! configured size, and nothing is left behind after a final `flush_all`.
//! The inputs are adversarial: arbitrary interleavings across outputs,
//! out-of-order and **duplicate sequence numbers** (record identity is its
//! payload, not its sequence — exactly the situation after a migration
//! re-sends replicated records), pushes to unknown outputs, and flushes at
//! arbitrary points.

use proptest::prelude::*;
use ps2stream_stream::{Batch, BatchBuffer, Envelope};

/// One scripted action against the buffer.
#[derive(Debug, Clone)]
enum Action {
    /// Push a record to `output` carrying an adversarial `sequence`.
    Push { output: usize, sequence: u64 },
    /// Flush one output.
    Flush { output: usize },
    /// Flush every output.
    FlushAll,
}

fn arb_action(num_outputs: usize) -> impl Strategy<Value = Action> {
    // pushes dominate; output may be out of range (must be ignored);
    // sequences collide and go backwards on purpose
    (0u8..10, 0usize..num_outputs + 2, 0u64..16).prop_map(|(selector, output, sequence)| {
        match selector {
            0 => Action::Flush { output },
            1 => Action::FlushAll,
            _ => Action::Push { output, sequence },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_record_leaves_exactly_once_in_push_order(
        batch_size in 1usize..6,
        num_outputs in 1usize..4,
        actions in proptest::collection::vec(arb_action(3), 0..120),
    ) {
        let mut buffer: BatchBuffer<u64> = BatchBuffer::new(num_outputs, batch_size);
        // payload = unique push index: identity survives duplicate sequences
        let mut next_payload = 0u64;
        let mut pushed: Vec<Vec<(u64, u64)>> = vec![Vec::new(); num_outputs];
        let mut emitted: Vec<Vec<(u64, u64)>> = vec![Vec::new(); num_outputs];
        let record = |batch: &Batch<u64>| -> Vec<(u64, u64)> {
            batch.records().iter().map(|e| (e.sequence, e.payload)).collect()
        };
        for action in &actions {
            match action {
                Action::Push { output, sequence } => {
                    let payload = next_payload;
                    next_payload += 1;
                    let full = buffer.push(*output, Envelope::now(*sequence, payload));
                    if *output < num_outputs {
                        pushed[*output].push((*sequence, payload));
                    } else {
                        // unknown output: silently ignored, nothing emitted
                        prop_assert!(full.is_none());
                        continue;
                    }
                    if let Some(batch) = full {
                        // threshold flushes are exactly full batches
                        prop_assert_eq!(batch.len(), batch_size);
                        emitted[*output].extend(record(&batch));
                    }
                }
                Action::Flush { output } => {
                    if let Some(batch) = buffer.flush(*output) {
                        prop_assert!(*output < num_outputs);
                        prop_assert!(!batch.is_empty());
                        prop_assert!(batch.len() <= batch_size);
                        emitted[*output].extend(record(&batch));
                    }
                }
                Action::FlushAll => {
                    for (output, batch) in buffer.flush_all() {
                        prop_assert!(!batch.is_empty());
                        prop_assert!(batch.len() <= batch_size);
                        emitted[output].extend(record(&batch));
                    }
                }
            }
            // the buffer never holds a full batch back
            for output in 0..num_outputs {
                prop_assert!(pushed[output].len() - emitted[output].len() < batch_size);
            }
        }
        // drain the remainders
        for (output, batch) in buffer.flush_all() {
            emitted[output].extend(record(&batch));
        }
        prop_assert_eq!(buffer.pending(), 0);
        // per output: exact sequence-and-payload equality with the push log
        for output in 0..num_outputs {
            prop_assert_eq!(
                &pushed[output],
                &emitted[output],
                "output {} lost, duplicated or reordered records",
                output
            );
        }
    }
}
