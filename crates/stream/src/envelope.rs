//! Timestamped message envelopes.
//!
//! The latency reported in the paper is "the average time of each tuple
//! staying in the system" (Section VI-C). Every tuple entering PS2Stream is
//! wrapped in an [`Envelope`] stamping its ingestion instant; whichever
//! executor completes the tuple (a worker for a non-matching object, the
//! merger for delivered matches) reports the elapsed time to a
//! [`crate::metrics::LatencyRecorder`].

use std::time::{Duration, Instant};

/// A payload plus the instant it entered the system.
#[derive(Debug, Clone)]
pub struct Envelope<T> {
    /// The wrapped message.
    pub payload: T,
    /// When the message entered the topology.
    pub ingested_at: Instant,
    /// Monotonic sequence number assigned at ingestion.
    pub sequence: u64,
}

impl<T> Envelope<T> {
    /// Wraps a payload, stamping the current instant.
    pub fn now(sequence: u64, payload: T) -> Self {
        Self {
            payload,
            ingested_at: Instant::now(),
            sequence,
        }
    }

    /// Time elapsed since ingestion.
    pub fn latency(&self) -> Duration {
        self.ingested_at.elapsed()
    }

    /// Maps the payload, preserving the timestamp and sequence number.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Envelope<U> {
        Envelope {
            payload: f(self.payload),
            ingested_at: self.ingested_at,
            sequence: self.sequence,
        }
    }

    /// Creates a new envelope with the same timestamp and sequence but a
    /// different payload (used when one input tuple fans out into several
    /// downstream messages that must share its latency accounting).
    pub fn derive<U>(&self, payload: U) -> Envelope<U> {
        Envelope {
            payload,
            ingested_at: self.ingested_at,
            sequence: self.sequence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_time() {
        let e = Envelope::now(1, "x");
        std::thread::sleep(Duration::from_millis(2));
        assert!(e.latency() >= Duration::from_millis(2));
        assert_eq!(e.sequence, 1);
    }

    #[test]
    fn map_and_derive_preserve_timing() {
        let e = Envelope::now(7, 21u32);
        let ts = e.ingested_at;
        let mapped = e.derive("derived");
        assert_eq!(mapped.ingested_at, ts);
        assert_eq!(mapped.sequence, 7);
        let mapped2 = mapped.map(|s| s.len());
        assert_eq!(mapped2.payload, 7);
        assert_eq!(mapped2.ingested_at, ts);
    }
}
