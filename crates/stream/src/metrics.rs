//! Throughput and latency metrics.
//!
//! The paper evaluates PS2Stream by its processing **throughput** (tuples per
//! second at saturation), per-tuple **latency** (average time a tuple spends
//! in the system) and the latency *distribution* under migration
//! (fractions below 100 ms, between 100 ms and 1 s, above 1 s — Figures 12(c)
//! and 15). These metric types are shared by all executors and are safe to
//! update concurrently.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing tuple counter with wall-clock bookkeeping, used
/// to compute the sustained throughput of a run.
///
/// Entirely lock-free: every executor of the pipeline calls [`record`] on the
/// shared meter for each completed tuple, so a mutex here serializes the whole
/// hot path. The observation window is kept as first/last-tuple nanosecond
/// offsets (relative to the meter's creation instant) maintained with
/// `fetch_min` / `fetch_max`.
///
/// [`record`]: ThroughputMeter::record
#[derive(Debug)]
pub struct ThroughputMeter {
    count: AtomicU64,
    /// Reference instant; first/last are nanosecond offsets from it.
    origin: Instant,
    /// Nanoseconds of the first recorded tuple (`u64::MAX` = none yet).
    first_ns: AtomicU64,
    /// Nanoseconds of the last recorded tuple.
    last_ns: AtomicU64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            origin: Instant::now(),
            first_ns: AtomicU64::new(u64::MAX),
            last_ns: AtomicU64::new(0),
        }
    }
}

impl ThroughputMeter {
    /// Creates a meter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records `n` processed tuples at the current instant.
    pub fn record(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
        let now = self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.first_ns.fetch_min(now, Ordering::Relaxed);
        self.last_ns.fetch_max(now, Ordering::Relaxed);
    }

    /// Total number of tuples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Elapsed time between the first and the last recorded tuple.
    pub fn elapsed(&self) -> Duration {
        let first = self.first_ns.load(Ordering::Relaxed);
        if first == u64::MAX {
            return Duration::ZERO;
        }
        let last = self.last_ns.load(Ordering::Relaxed);
        Duration::from_nanos(last.saturating_sub(first))
    }

    /// Throughput in tuples per second over the observation window. Returns
    /// `None` until at least two distinct instants have been observed.
    pub fn tuples_per_second(&self) -> Option<f64> {
        let elapsed = self.elapsed().as_secs_f64();
        if elapsed <= 0.0 {
            return None;
        }
        Some(self.count() as f64 / elapsed)
    }
}

/// Latency classes reported by the migration experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Fraction of tuples below the `fast` threshold.
    pub fast: f64,
    /// Fraction of tuples between the `fast` and `slow` thresholds.
    pub medium: f64,
    /// Fraction of tuples above the `slow` threshold.
    pub slow: f64,
}

/// A concurrent latency recorder with fixed-resolution histogram buckets
/// (1 ms buckets up to 10 s) plus exact count/sum for the mean.
#[derive(Debug)]
pub struct LatencyRecorder {
    /// `buckets[i]` counts latencies in `[i, i+1)` milliseconds.
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::with_max_millis(10_000)
    }
}

impl LatencyRecorder {
    /// Creates a recorder tracking latencies up to `max_millis` (larger
    /// values land in an overflow bucket).
    pub fn with_max_millis(max_millis: usize) -> Self {
        let mut buckets = Vec::with_capacity(max_millis);
        buckets.resize_with(max_millis, AtomicU64::default);
        Self {
            buckets,
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Creates a shared recorder.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one latency measurement.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let ms = (us / 1000) as usize;
        if ms < self.buckets.len() {
            self.buckets[ms].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or `None` if nothing was recorded.
    pub fn mean(&self) -> Option<Duration> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        Some(Duration::from_micros(
            self.total_us.load(Ordering::Relaxed) / count,
        ))
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (e.g. `0.99`) computed from the millisecond buckets.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (ms, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(Duration::from_millis(ms as u64 + 1));
            }
        }
        Some(self.max())
    }

    /// Fraction of measurements strictly below the threshold.
    pub fn fraction_below(&self, threshold: Duration) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let limit_ms = threshold.as_millis() as usize;
        let below: u64 = self
            .buckets
            .iter()
            .take(limit_ms.min(self.buckets.len()))
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        below as f64 / count as f64
    }

    /// The three-way latency breakdown used by Figures 12(c) and 15.
    pub fn breakdown(&self, fast: Duration, slow: Duration) -> LatencyBreakdown {
        let fast_frac = self.fraction_below(fast);
        let below_slow = self.fraction_below(slow);
        LatencyBreakdown {
            fast: fast_frac,
            medium: (below_slow - fast_frac).max(0.0),
            slow: (1.0 - below_slow).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_meter_counts_and_rates() {
        let m = ThroughputMeter::new();
        assert_eq!(m.count(), 0);
        assert!(m.tuples_per_second().is_none());
        m.record(10);
        std::thread::sleep(Duration::from_millis(5));
        m.record(10);
        assert_eq!(m.count(), 20);
        let tps = m.tuples_per_second().unwrap();
        assert!(tps > 0.0);
        assert!(m.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn throughput_meter_is_safe_under_concurrency() {
        let m = ThroughputMeter::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.count(), 4000);
        // the window is well-formed: last >= first
        assert!(m.elapsed() >= Duration::ZERO);
        assert!(m.tuples_per_second().is_some());
    }

    #[test]
    fn latency_mean_and_max() {
        let r = LatencyRecorder::default();
        assert!(r.mean().is_none());
        r.record(Duration::from_millis(10));
        r.record(Duration::from_millis(30));
        assert_eq!(r.count(), 2);
        let mean = r.mean().unwrap();
        assert!(mean >= Duration::from_millis(19) && mean <= Duration::from_millis(21));
        assert_eq!(r.max(), Duration::from_millis(30));
    }

    #[test]
    fn latency_quantiles() {
        let r = LatencyRecorder::default();
        for i in 1..=100u64 {
            r.record(Duration::from_millis(i));
        }
        let p50 = r.quantile(0.5).unwrap();
        let p99 = r.quantile(0.99).unwrap();
        assert!(p50 >= Duration::from_millis(49) && p50 <= Duration::from_millis(52));
        assert!(p99 >= Duration::from_millis(98));
        assert!(r.quantile(0.0).is_some());
    }

    #[test]
    fn latency_breakdown_matches_paper_buckets() {
        let r = LatencyRecorder::default();
        // 8 fast, 1 medium, 1 slow
        for _ in 0..8 {
            r.record(Duration::from_millis(20));
        }
        r.record(Duration::from_millis(500));
        r.record(Duration::from_millis(2_000));
        let b = r.breakdown(Duration::from_millis(100), Duration::from_millis(1_000));
        assert!((b.fast - 0.8).abs() < 1e-9);
        assert!((b.medium - 0.1).abs() < 1e-9);
        assert!((b.slow - 0.1).abs() < 1e-9);
    }

    #[test]
    fn overflow_latencies_count_as_slow() {
        let r = LatencyRecorder::with_max_millis(100);
        r.record(Duration::from_secs(60));
        let b = r.breakdown(Duration::from_millis(100), Duration::from_millis(1_000));
        assert_eq!(b.slow, 1.0);
        assert_eq!(r.fraction_below(Duration::from_millis(100)), 0.0);
    }

    #[test]
    fn concurrent_recording() {
        let r = LatencyRecorder::shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        r.record(Duration::from_micros(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.count(), 4000);
    }
}
