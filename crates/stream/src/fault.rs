//! Declarative, seeded fault injection for the dataflow substrate.
//!
//! A [`FaultPlan`] is a small schedule of failures — worker crashes, wedged
//! operators, dropped or delayed channel messages — parsed from the
//! `PS2_FAULTS` environment variable (or the `--faults` flag of the bench
//! binaries) and interpreted by the system at launch. Faults are
//! *loss-masking*: a "dropped" message is diverted into a retransmit buffer
//! and redelivered a few sends later, a crashed worker is respawned from its
//! recovery source, a wedged operator resumes after its stall window. The
//! delivered match **set** of a faulted run therefore equals the fault-free
//! run; only ordering and latency change. That is what makes the chaos suite
//! able to byte-compare canonicalised match sets across fault plans.
//!
//! Ticks are counted in **messages processed by the target operator**, not
//! wall-clock time, so a plan replays identically under the deterministic
//! `sim` backend (single-threaded, seeded scheduler) and is best-effort
//! reproducible under `threads`/`coop`.
//!
//! # Grammar
//!
//! Semicolon-separated items:
//!
//! ```text
//! seed=<u64>                                  seed for probabilistic faults
//! crash:worker:<i>@tick=<n>                   worker i loses its state after
//!                                             processing n record messages
//! wedge:worker:<i>@tick=<n>[:for=<m>]         worker i stalls for m messages
//! drop:<role>-><role>:p=<f>[:k=<n>]           divert sends with prob. f,
//!                                             redeliver after n later sends
//! delay:<role>-><role>:p=<f>[:k=<n>]          same shim, short default k
//! ```
//!
//! Roles: `dispatcher`, `worker`, `merger`. Example:
//!
//! ```
//! use ps2stream_stream::FaultPlan;
//! let plan = FaultPlan::parse("seed=7;crash:worker:1@tick=200;drop:worker->merger:p=0.01")
//!     .unwrap();
//! assert_eq!(plan.seed, 7);
//! assert_eq!(plan.crash_tick(ps2stream_stream::FaultRole::Worker, 1), Some(200));
//! ```

use std::fmt;

/// An executor role targeted by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultRole {
    /// A dispatcher executor.
    Dispatcher,
    /// A worker executor.
    Worker,
    /// A merger executor.
    Merger,
}

impl FaultRole {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "dispatcher" => Ok(Self::Dispatcher),
            "worker" => Ok(Self::Worker),
            "merger" => Ok(Self::Merger),
            other => Err(format!(
                "unknown role {other:?} (expected dispatcher|worker|merger)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::Dispatcher => "dispatcher",
            Self::Worker => "worker",
            Self::Merger => "merger",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// The target loses its in-memory state after processing `tick` record
    /// messages (a simulated process death; the supervisor respawns it from
    /// its recovery source and replays parked records).
    Crash {
        /// Which executor role crashes.
        role: FaultRole,
        /// Index of the executor within its role.
        index: usize,
        /// Record-message count at which the crash fires.
        tick: u64,
    },
    /// The target stops processing for `duration` record messages starting
    /// at `tick` (records are parked and replayed in order afterwards).
    Wedge {
        /// Which executor role wedges.
        role: FaultRole,
        /// Index of the executor within its role.
        index: usize,
        /// Record-message count at which the stall starts.
        tick: u64,
        /// Length of the stall, in record messages.
        duration: u64,
    },
    /// Messages on the `from -> to` edge are diverted with probability
    /// `probability` and redelivered after `redeliver_after` later sends on
    /// the same sender (loss-masking drop / reorder).
    Drop {
        /// Sending role of the faulted edge.
        from: FaultRole,
        /// Receiving role of the faulted edge.
        to: FaultRole,
        /// Per-send diversion probability in `[0, 1]`.
        probability: f64,
        /// How many later sends pass before a diverted message is
        /// retransmitted.
        redeliver_after: u64,
    },
}

/// A parsed fault-injection schedule (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the probabilistic edge faults (deterministic under `sim`).
    pub seed: u64,
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
}

/// The per-edge shim parameters extracted from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFault {
    /// Diversion probability in parts per million.
    pub p_ppm: u32,
    /// Sends to wait before retransmitting a diverted message.
    pub redeliver_after: u64,
}

impl FaultPlan {
    /// Parses a plan from the grammar in the module docs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(';') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(seed) = item.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("seed={seed:?}: expected an integer"))?;
                continue;
            }
            plan.specs.push(Self::parse_item(item)?);
        }
        Ok(plan)
    }

    fn parse_item(item: &str) -> Result<FaultSpec, String> {
        let (kind, rest) = item
            .split_once(':')
            .ok_or_else(|| format!("fault {item:?}: expected kind:..."))?;
        match kind {
            "crash" | "wedge" => {
                let (role, rest) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("fault {item:?}: expected {kind}:role:index@tick=n"))?;
                let role = FaultRole::parse(role)?;
                let mut parts = rest.split(':');
                let head = parts.next().unwrap_or_default();
                let (index, tick) = head
                    .split_once("@tick=")
                    .ok_or_else(|| format!("fault {item:?}: expected index@tick=n"))?;
                let index: usize = index
                    .parse()
                    .map_err(|_| format!("fault {item:?}: bad index {index:?}"))?;
                let tick: u64 = tick
                    .parse()
                    .map_err(|_| format!("fault {item:?}: bad tick {tick:?}"))?;
                let mut duration = 64;
                for opt in parts {
                    if let Some(v) = opt.strip_prefix("for=") {
                        duration = v
                            .parse()
                            .map_err(|_| format!("fault {item:?}: bad for= {v:?}"))?;
                    } else {
                        return Err(format!("fault {item:?}: unknown option {opt:?}"));
                    }
                }
                if kind == "crash" {
                    Ok(FaultSpec::Crash { role, index, tick })
                } else {
                    Ok(FaultSpec::Wedge {
                        role,
                        index,
                        tick,
                        duration,
                    })
                }
            }
            "drop" | "delay" => {
                let (edge, rest) = rest
                    .split_once(":p=")
                    .ok_or_else(|| format!("fault {item:?}: expected from->to:p=f"))?;
                let (from, to) = edge
                    .split_once("->")
                    .ok_or_else(|| format!("fault {item:?}: expected from->to"))?;
                let from = FaultRole::parse(from)?;
                let to = FaultRole::parse(to)?;
                let mut parts = rest.split(':');
                let p_str = parts.next().unwrap_or_default();
                let probability: f64 = p_str
                    .parse()
                    .map_err(|_| format!("fault {item:?}: bad probability {p_str:?}"))?;
                if !(0.0..=1.0).contains(&probability) {
                    return Err(format!("fault {item:?}: probability must be in [0, 1]"));
                }
                let mut redeliver_after = if kind == "drop" { 16 } else { 4 };
                for opt in parts {
                    if let Some(v) = opt.strip_prefix("k=") {
                        redeliver_after = v
                            .parse()
                            .map_err(|_| format!("fault {item:?}: bad k= {v:?}"))?;
                    } else {
                        return Err(format!("fault {item:?}: unknown option {opt:?}"));
                    }
                }
                Ok(FaultSpec::Drop {
                    from,
                    to,
                    probability,
                    redeliver_after,
                })
            }
            other => Err(format!(
                "unknown fault kind {other:?} (expected crash|wedge|drop|delay)"
            )),
        }
    }

    /// Reads a plan from the `PS2_FAULTS` environment variable.
    ///
    /// # Panics
    /// Panics on a malformed value (like `PS2_RUNTIME`, so a typo does not
    /// silently run fault-free).
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("PS2_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("PS2_FAULTS={spec:?}: {e}"),
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The crash tick scheduled for `role` executor `index`, if any.
    pub fn crash_tick(&self, role: FaultRole, index: usize) -> Option<u64> {
        self.specs.iter().find_map(|s| match s {
            FaultSpec::Crash {
                role: r,
                index: i,
                tick,
            } if *r == role && *i == index => Some(*tick),
            _ => None,
        })
    }

    /// The `(tick, duration)` of a wedge scheduled for `role` executor
    /// `index`, if any.
    pub fn wedge_window(&self, role: FaultRole, index: usize) -> Option<(u64, u64)> {
        self.specs.iter().find_map(|s| match s {
            FaultSpec::Wedge {
                role: r,
                index: i,
                tick,
                duration,
            } if *r == role && *i == index => Some((*tick, *duration)),
            _ => None,
        })
    }

    /// The drop/delay shim configured for the `from -> to` edge, if any.
    pub fn edge_fault(&self, from: FaultRole, to: FaultRole) -> Option<EdgeFault> {
        self.specs.iter().find_map(|s| match s {
            FaultSpec::Drop {
                from: f,
                to: t,
                probability,
                redeliver_after,
            } if *f == from && *t == to => Some(EdgeFault {
                p_ppm: (probability * 1_000_000.0).round() as u32,
                redeliver_after: *redeliver_after,
            }),
            _ => None,
        })
    }

    /// A per-sender shim seed mixing the plan seed, the edge and the source
    /// executor index, so every sender has an independent but reproducible
    /// diversion sequence.
    pub fn shim_seed(&self, from: FaultRole, to: FaultRole, source_index: usize) -> u64 {
        let edge = ((from as u64) << 8) | (to as u64);
        self.seed
            ^ edge.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (source_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ 0xFA17_FA17_FA17_FA17
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for s in &self.specs {
            match s {
                FaultSpec::Crash { role, index, tick } => {
                    write!(f, ";crash:{}:{index}@tick={tick}", role.name())?
                }
                FaultSpec::Wedge {
                    role,
                    index,
                    tick,
                    duration,
                } => write!(
                    f,
                    ";wedge:{}:{index}@tick={tick}:for={duration}",
                    role.name()
                )?,
                FaultSpec::Drop {
                    from,
                    to,
                    probability,
                    redeliver_after,
                } => write!(
                    f,
                    ";drop:{}->{}:p={probability}:k={redeliver_after}",
                    from.name(),
                    to.name()
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let plan = FaultPlan::parse(
            "seed=42;crash:worker:2@tick=500;wedge:worker:1@tick=300:for=32;\
             drop:worker->merger:p=0.01;delay:dispatcher->worker:p=0.5:k=2",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.crash_tick(FaultRole::Worker, 2), Some(500));
        assert_eq!(plan.crash_tick(FaultRole::Worker, 0), None);
        assert_eq!(plan.wedge_window(FaultRole::Worker, 1), Some((300, 32)));
        let drop = plan
            .edge_fault(FaultRole::Worker, FaultRole::Merger)
            .unwrap();
        assert_eq!(drop.p_ppm, 10_000);
        assert_eq!(drop.redeliver_after, 16);
        let delay = plan
            .edge_fault(FaultRole::Dispatcher, FaultRole::Worker)
            .unwrap();
        assert_eq!(delay.p_ppm, 500_000);
        assert_eq!(delay.redeliver_after, 2);
        assert!(plan
            .edge_fault(FaultRole::Merger, FaultRole::Worker)
            .is_none());
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "boom:worker:1@tick=3",
            "crash:worker:x@tick=3",
            "crash:worker:1",
            "drop:worker->merger:p=1.5",
            "drop:workermerger:p=0.1",
            "seed=abc",
            "wedge:worker:0@tick=1:nope=2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn empty_and_roundtrip() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        let plan = FaultPlan::parse("seed=7;crash:worker:1@tick=9;drop:worker->merger:p=0.25:k=8")
            .unwrap();
        let rendered = plan.to_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
    }

    #[test]
    fn shim_seeds_differ_per_source() {
        let plan = FaultPlan::parse("seed=1").unwrap();
        let a = plan.shim_seed(FaultRole::Worker, FaultRole::Merger, 0);
        let b = plan.shim_seed(FaultRole::Worker, FaultRole::Merger, 1);
        let c = plan.shim_seed(FaultRole::Dispatcher, FaultRole::Worker, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
