//! The operator abstraction of the dataflow substrate.
//!
//! PS2Stream's published implementation runs on Apache Storm; this crate
//! provides the minimal equivalent needed by the reproduction: an
//! [`Operator`] processes one input message at a time and emits messages to a
//! set of downstream channels through an [`Emitter`]. Operators are spawned
//! onto the pluggable substrate by [`crate::runtime::Runtime`] (an OS thread
//! each, or cooperative tasks over a core pool); when every upstream sender
//! is dropped the operator's input drains, `finish` runs, and its own output
//! senders are dropped — shutdown propagates naturally through the topology
//! exactly like the end of a finite stream.

use crate::channel::{Receiver, Sender, TrySendError};

/// Routes messages emitted by an operator to its downstream channels.
#[derive(Debug, Clone)]
pub struct Emitter<T> {
    outputs: Vec<Sender<T>>,
}

impl<T> Emitter<T> {
    /// Creates an emitter over the given downstream senders.
    pub fn new(outputs: Vec<Sender<T>>) -> Self {
        Self { outputs }
    }

    /// An emitter with no outputs (for sink operators).
    pub fn sink() -> Self {
        Self {
            outputs: Vec::new(),
        }
    }

    /// Number of downstream channels.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Sends a message to the downstream channel `index`, blocking while the
    /// channel is full (backpressure). Messages to disconnected channels are
    /// silently dropped (the receiver shut down first).
    pub fn emit_to(&self, index: usize, message: T) {
        if let Some(tx) = self.outputs.get(index) {
            let _ = tx.send(message);
        }
    }

    /// Like [`Emitter::emit_to`], but reports whether the message was
    /// accepted: `false` means the downstream receiver has disconnected — a
    /// peer-death signal the caller can forward to the supervisor instead of
    /// losing it to the silent-drop shutdown convention.
    pub fn emit_to_checked(&self, index: usize, message: T) -> bool {
        match self.outputs.get(index) {
            Some(tx) => tx.send(message).is_ok(),
            None => false,
        }
    }

    /// Attempts to send without blocking; returns the message back if the
    /// channel is full.
    pub fn try_emit_to(&self, index: usize, message: T) -> Result<(), T> {
        match self.outputs.get(index) {
            None => Ok(()),
            Some(tx) => match tx.try_send(message) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(m)) => Err(m),
                Err(TrySendError::Disconnected(_)) => Ok(()),
            },
        }
    }

    /// Sends a clone of the message to every downstream channel.
    pub fn broadcast(&self, message: T)
    where
        T: Clone,
    {
        for tx in &self.outputs {
            let _ = tx.send(message.clone());
        }
    }
}

/// A single-input, single-output-type dataflow operator.
pub trait Operator: Send + 'static {
    /// Input message type.
    type In: Send + 'static;
    /// Output message type.
    type Out: Send + 'static;

    /// Processes one input message, emitting zero or more outputs.
    fn process(&mut self, input: Self::In, emitter: &Emitter<Self::Out>);

    /// Called once after the input stream has drained (or the operator asked
    /// to stop), before the operator's outputs are closed.
    fn finish(&mut self, _emitter: &Emitter<Self::Out>) {}

    /// Checked after every `process`: returning true terminates the operator
    /// immediately (its `finish` still runs). Lets control messages like a
    /// worker `Shutdown` end an executor whose upstream senders are still
    /// alive — essential when peers hold senders to each other and waiting
    /// for disconnection would deadlock.
    fn wants_stop(&self) -> bool {
        false
    }
}

/// Runs an operator to completion on the current thread: receive until every
/// upstream sender is gone or the operator asks to stop, then finish.
/// Returns the operator so callers can inspect its final state.
pub fn run_operator<O: Operator>(
    mut operator: O,
    input: Receiver<O::In>,
    emitter: Emitter<O::Out>,
) -> O {
    while let Ok(message) = input.recv() {
        operator.process(message, &emitter);
        if operator.wants_stop() {
            break;
        }
    }
    operator.finish(&emitter);
    operator
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::bounded;

    struct Doubler {
        processed: usize,
    }

    impl Operator for Doubler {
        type In = u64;
        type Out = u64;
        fn process(&mut self, input: u64, emitter: &Emitter<u64>) {
            self.processed += 1;
            emitter.emit_to(0, input * 2);
        }
        fn finish(&mut self, emitter: &Emitter<u64>) {
            emitter.emit_to(0, u64::MAX);
        }
    }

    #[test]
    fn run_operator_processes_and_finishes() {
        let (in_tx, in_rx) = bounded::<u64>(16);
        let (out_tx, out_rx) = bounded::<u64>(16);
        for i in 0..5 {
            in_tx.send(i).unwrap();
        }
        drop(in_tx);
        let op = run_operator(Doubler { processed: 0 }, in_rx, Emitter::new(vec![out_tx]));
        assert_eq!(op.processed, 5);
        let outputs: Vec<u64> = out_rx.iter().collect();
        assert_eq!(outputs, vec![0, 2, 4, 6, 8, u64::MAX]);
    }

    #[test]
    fn emitter_fanout_and_broadcast() {
        let (tx_a, rx_a) = bounded::<u32>(4);
        let (tx_b, rx_b) = bounded::<u32>(4);
        let emitter = Emitter::new(vec![tx_a, tx_b]);
        assert_eq!(emitter.num_outputs(), 2);
        emitter.emit_to(0, 1);
        emitter.emit_to(1, 2);
        emitter.broadcast(9);
        drop(emitter);
        assert_eq!(rx_a.iter().collect::<Vec<_>>(), vec![1, 9]);
        assert_eq!(rx_b.iter().collect::<Vec<_>>(), vec![2, 9]);
    }

    #[test]
    fn emit_to_unknown_index_is_ignored() {
        let emitter: Emitter<u32> = Emitter::sink();
        emitter.emit_to(3, 42); // must not panic
        assert_eq!(emitter.num_outputs(), 0);
    }

    #[test]
    fn emit_to_disconnected_channel_is_ignored() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        let emitter = Emitter::new(vec![tx]);
        emitter.emit_to(0, 1); // must not panic or block
    }

    #[test]
    fn try_emit_reports_full_channels() {
        let (tx, _rx) = bounded::<u32>(1);
        let emitter = Emitter::new(vec![tx]);
        assert!(emitter.try_emit_to(0, 1).is_ok());
        assert_eq!(emitter.try_emit_to(0, 2), Err(2));
    }
}
