//! The cooperative executor backend.
//!
//! Instead of pinning every operator to its own OS thread, the cooperative
//! backend turns each operator into a **pollable task**: one `poll` drains up
//! to a budget of messages from the task's input channel and returns whether
//! the task made progress, is blocked on input, or finished. Two schedulers
//! drive these tasks:
//!
//! * `PoolRuntime` — a work queue multiplexed over a fixed pool of OS
//!   threads. Channel sends wake the receiving task through the waker hook of
//!   [`crate::channel`], so thousands of logical operators can share a few
//!   cores without a thread each (the Tornado-style elastic-executor layout).
//! * `SimRuntime` — a single-threaded, **seeded** scheduler that picks the
//!   next task to poll pseudo-randomly from the seed. Every run with the same
//!   seed replays the exact same interleaving, which makes full end-to-end
//!   pipeline runs (including mid-flight migrations) reproducible and lets
//!   tests explore many interleavings by sweeping seeds — the FAST-style
//!   deterministic replay used by `tests/sim_determinism.rs`.
//!
//! Tasks never block: channels created through the cooperative runtime are
//! unbounded, so a `send` from inside a task always completes (backpressure
//! is a property of the OS-thread backend; see the README's "Runtime
//! backends" section for the trade-off).

use crate::channel::Receiver;
use crate::operator::{Emitter, Operator};
use crate::topology::CpuSlot;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;

/// Locks ignoring poisoning: a panicking task is already recorded in
/// `PoolState::panicked` and re-raised at join; the scheduler state itself
/// stays consistent (every mutation is a small atomic section).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The outcome of polling a cooperative task once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// The task processed input up to its budget; more may be pending.
    Progress,
    /// The task found no input; it is runnable again once a message arrives
    /// on one of its channels.
    Blocked,
    /// The task terminated (input disconnected and drained, or an explicit
    /// stop); the scheduler drops it, releasing its output channels.
    Done,
}

/// A unit of cooperative execution. Implementations must *never* block:
/// consume input with `try_recv`, return [`TaskPoll::Blocked`] when starved.
pub trait PollTask: Send {
    /// Polls the task once.
    fn poll(&mut self) -> TaskPoll;
}

/// Adapts an [`Operator`] plus its input channel and emitter into a
/// [`PollTask`]: each poll processes up to `budget` messages.
pub(crate) struct OperatorTask<O: Operator> {
    operator: O,
    input: Receiver<O::In>,
    emitter: Emitter<O::Out>,
    budget: usize,
}

impl<O: Operator> OperatorTask<O> {
    pub(crate) fn new(
        operator: O,
        input: Receiver<O::In>,
        emitter: Emitter<O::Out>,
        budget: usize,
    ) -> Self {
        Self {
            operator,
            input,
            emitter,
            budget: budget.max(1),
        }
    }
}

impl<O: Operator> PollTask for OperatorTask<O> {
    fn poll(&mut self) -> TaskPoll {
        for _ in 0..self.budget {
            match self.input.try_recv() {
                Ok(message) => {
                    self.operator.process(message, &self.emitter);
                    if self.operator.wants_stop() {
                        self.operator.finish(&self.emitter);
                        return TaskPoll::Done;
                    }
                }
                Err(crate::channel::TryRecvError::Empty) => return TaskPoll::Blocked,
                Err(crate::channel::TryRecvError::Disconnected) => {
                    self.operator.finish(&self.emitter);
                    return TaskPoll::Done;
                }
            }
        }
        TaskPoll::Progress
    }
}

/// Scheduling status of a pooled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked: not runnable until a waker fires.
    Idle,
    /// In the ready queue.
    Queued,
    /// Currently being polled by a pool thread.
    Running,
    /// A wakeup arrived while the task was running; requeue after the poll.
    Notified,
    /// Terminated; the slot stays empty forever.
    Done,
}

impl Status {
    fn as_u8(self) -> u8 {
        match self {
            Status::Idle => 0,
            Status::Queued => 1,
            Status::Running => 2,
            Status::Notified => 3,
            Status::Done => 4,
        }
    }
}

struct TaskEntry {
    name: String,
    slot: Option<Box<dyn PollTask>>,
    status: Status,
    /// Lock-free mirror of `status` (written only under the state lock,
    /// read by [`PoolShared::wake`] without it). Lets the per-send waker
    /// skip the scheduler mutex in the saturated steady state, where the
    /// receiving task is almost always already `Queued` or `Notified`.
    hint: Arc<std::sync::atomic::AtomicU8>,
}

struct PoolState {
    tasks: Vec<TaskEntry>,
    ready: VecDeque<usize>,
    /// Tasks not yet `Done`.
    live: usize,
    shutdown: bool,
    /// Name of the first task whose poll panicked, if any.
    panicked: Option<String>,
}

impl PoolState {
    /// The only sanctioned way to change a task's status: keeps the
    /// lock-free hint coherent. Must be called with the state lock held.
    fn set_status(&mut self, id: usize, status: Status) {
        let entry = &mut self.tasks[id];
        entry.status = status;
        entry
            .hint
            .store(status.as_u8(), std::sync::atomic::Ordering::SeqCst);
    }
}

pub(crate) struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals pool threads that the ready queue changed (or shutdown).
    work: Condvar,
    /// Signals joiners that a task completed (or a task panicked).
    progress: Condvar,
}

impl PoolShared {
    /// Wakes a task from a channel send. The fast path reads the status
    /// hint without the scheduler lock: `Queued`/`Notified` tasks will poll
    /// (or be requeued) after this send's message is already visible, and
    /// `Done` tasks no longer care — only `Idle` and `Running` require the
    /// locked transition. Safe because the message was enqueued before the
    /// hint is read (both SeqCst-ordered): a stale `Queued` reading implies
    /// the upcoming poll happens after the message became visible.
    fn wake_hinted(&self, id: usize, hint: &std::sync::atomic::AtomicU8) {
        match hint.load(std::sync::atomic::Ordering::SeqCst) {
            1 | 3 | 4 => {} // Queued | Notified | Done
            _ => self.wake(id),
        }
    }

    fn wake(&self, id: usize) {
        let mut state = lock(&self.state);
        match state.tasks[id].status {
            Status::Idle => {
                state.set_status(id, Status::Queued);
                state.ready.push_back(id);
                self.work.notify_one();
            }
            Status::Running => state.set_status(id, Status::Notified),
            Status::Queued | Status::Notified | Status::Done => {}
        }
    }
}

/// A work-queue scheduler multiplexing cooperative tasks over a fixed pool
/// of OS threads.
pub(crate) struct PoolRuntime {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
    /// Whether the scheduler threads were spawned with a core-pin plan.
    pinned: bool,
}

impl PoolRuntime {
    /// Starts a pool whose scheduler threads are placed according to `plan`:
    /// thread `i` applies `plan[i % plan.len()]` (best-effort core pin plus
    /// the thread-local [`crate::topology::Placement`] record) before it
    /// starts polling tasks. `None` keeps the threads floating.
    pub(crate) fn with_placement(threads: usize, plan: Option<Vec<CpuSlot>>) -> Self {
        let pinned = plan.as_ref().is_some_and(|p| !p.is_empty());
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                tasks: Vec::new(),
                ready: VecDeque::new(),
                live: 0,
                shutdown: false,
                panicked: None,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
        });
        let threads = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let slot = plan
                    .as_ref()
                    .filter(|p| !p.is_empty())
                    .map(|p| p[i % p.len()]);
                std::thread::Builder::new()
                    .name(format!("coop-pool-{i}"))
                    .spawn(move || {
                        if let Some(slot) = slot {
                            slot.apply();
                        }
                        pool_thread(&shared)
                    })
                    .expect("failed to spawn cooperative pool thread")
            })
            .collect();
        Self {
            shared,
            threads,
            pinned,
        }
    }

    /// Whether the scheduler threads run under a core-pin plan.
    pub(crate) fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Registers a task, attaches its wakers to `wake_on` channels, and makes
    /// it runnable. Returns the task id.
    pub(crate) fn spawn(
        &self,
        name: String,
        task: Box<dyn PollTask>,
        wake_on: &[Arc<crate::channel::Hooks>],
    ) -> usize {
        let hint = Arc::new(std::sync::atomic::AtomicU8::new(Status::Idle.as_u8()));
        let id = {
            let mut state = lock(&self.shared.state);
            state.tasks.push(TaskEntry {
                name,
                slot: Some(task),
                status: Status::Idle,
                hint: Arc::clone(&hint),
            });
            state.live += 1;
            state.tasks.len() - 1
        };
        // Wakers must be in place before the task can park, otherwise a send
        // racing the first poll could be lost.
        let weak: Weak<PoolShared> = Arc::downgrade(&self.shared);
        for hooks in wake_on {
            let weak = Weak::clone(&weak);
            let hint = Arc::clone(&hint);
            hooks.attach_waker(Arc::new(move || {
                if let Some(shared) = weak.upgrade() {
                    shared.wake_hinted(id, &hint);
                }
            }));
        }
        self.shared.wake(id); // initial poll
        id
    }

    /// Blocks until every listed task is `Done`; a pooled-task panic is
    /// returned as `Err(task name)` instead of unwinding the caller, so a
    /// supervisor can capture the failure and keep the pipeline alive.
    pub(crate) fn try_join(&self, ids: &[usize]) -> Result<(), String> {
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(name) = state.panicked.clone() {
                return Err(name);
            }
            if ids.iter().all(|id| state.tasks[*id].status == Status::Done) {
                return Ok(());
            }
            state = wait(&self.shared.progress, state);
        }
    }

    /// Number of tasks ever spawned.
    pub(crate) fn num_tasks(&self) -> usize {
        lock(&self.shared.state).tasks.len()
    }
}

impl Drop for PoolRuntime {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn pool_thread(shared: &Arc<PoolShared>) {
    loop {
        let (id, mut task) = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown || state.panicked.is_some() {
                    return;
                }
                if let Some(id) = state.ready.pop_front() {
                    let task = state.tasks[id]
                        .slot
                        .take()
                        .expect("queued task has its box");
                    state.set_status(id, Status::Running);
                    break (id, task);
                }
                state = wait(&shared.work, state);
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| task.poll()));
        // The task box must be dropped *outside* the scheduler lock: dropping
        // an operator drops its output senders, whose disconnect notification
        // re-enters the scheduler to wake downstream tasks.
        let mut finished: Option<Box<dyn PollTask>> = None;
        {
            let mut state = lock(&shared.state);
            match outcome {
                Err(_) => {
                    let name = state.tasks[id].name.clone();
                    state.set_status(id, Status::Done);
                    state.live -= 1;
                    state.panicked = Some(name);
                    finished = Some(task);
                    shared.work.notify_all();
                    shared.progress.notify_all();
                }
                Ok(TaskPoll::Done) => {
                    state.set_status(id, Status::Done);
                    state.live -= 1;
                    finished = Some(task);
                    shared.progress.notify_all();
                }
                Ok(TaskPoll::Progress) => {
                    state.tasks[id].slot = Some(task);
                    state.set_status(id, Status::Queued);
                    state.ready.push_back(id);
                    shared.work.notify_one();
                }
                Ok(TaskPoll::Blocked) => {
                    state.tasks[id].slot = Some(task);
                    if state.tasks[id].status == Status::Notified {
                        state.set_status(id, Status::Queued);
                        state.ready.push_back(id);
                        shared.work.notify_one();
                    } else {
                        state.set_status(id, Status::Idle);
                    }
                }
            }
        }
        drop(finished);
    }
}

/// One SplitMix64 step — the seeded scheduler's pick function. Self-contained
/// so the stream crate needs no RNG dependency.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct SimEntry {
    slot: Option<Box<dyn PollTask>>,
}

/// The deterministic single-threaded scheduler: tasks only run while the
/// driving thread is inside [`SimRuntime::run_until`], and the next task to
/// poll is chosen pseudo-randomly from the seed.
pub(crate) struct SimRuntime {
    tasks: Vec<SimEntry>,
    /// Ids of not-yet-`Done` tasks — the scheduler's pick pool, maintained
    /// incrementally (swap-remove on completion) so a scheduling decision
    /// is O(1) instead of a full rescan per poll (deterministic mode polls
    /// one message at a time, so this is the per-message hot path).
    alive: Vec<usize>,
    rng: u64,
    /// Remaining task polls before [`SimRuntime::run_until`] stops early
    /// (`None` = unlimited). The crash-injection hook of the recovery tests:
    /// the poll count is a pure function of (workload, seed), so "crash
    /// after N polls" is a reproducible point in the schedule.
    fuel: Option<u64>,
    /// Scheduling steps taken so far (the clock `stalls` windows are
    /// expressed in).
    steps: u64,
    /// Scheduler-level wedges: `(task, from_step, until_step)` windows in
    /// which the task, when picked, is skipped instead of polled — a wedged
    /// operator whose mailbox piles up and drains afterwards. Part of the
    /// fault-injection layer; deterministic because the step counter and the
    /// pick sequence are pure functions of (workload, seed).
    stalls: Vec<(usize, u64, u64)>,
}

impl SimRuntime {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            tasks: Vec::new(),
            alive: Vec::new(),
            // avoid the all-zeros fixpoint-ish start without changing the
            // seed→schedule mapping per seed
            rng: seed ^ 0x5DEE_CE66_D1CE_1CEB,
            fuel: None,
            steps: 0,
            stalls: Vec::new(),
        }
    }

    /// Registers a task (a panic inside a sim poll propagates on the driving
    /// thread, so no name bookkeeping is needed for diagnostics).
    pub(crate) fn spawn(&mut self, task: Box<dyn PollTask>) -> usize {
        self.tasks.push(SimEntry { slot: Some(task) });
        let id = self.tasks.len() - 1;
        self.alive.push(id);
        id
    }

    /// Runs the seeded schedule until every listed task is `Done`. All alive
    /// tasks participate in the schedule, not just the targets — a migration
    /// can therefore land in the middle of draining the dispatchers, exactly
    /// like on the concurrent backends.
    pub(crate) fn run_until(&mut self, ids: &[usize]) {
        while ids.iter().any(|id| self.tasks[*id].slot.is_some()) {
            match &mut self.fuel {
                Some(0) => return, // out of fuel: the "crash point" reached
                Some(f) => *f -= 1,
                None => {}
            }
            let slot = (splitmix64(&mut self.rng) % self.alive.len() as u64) as usize;
            let pick = self.alive[slot];
            self.steps += 1;
            if self
                .stalls
                .iter()
                .any(|(t, from, until)| *t == pick && (*from..*until).contains(&self.steps))
            {
                continue; // wedged: skip the poll, keep the schedule moving
            }
            let mut task = self.tasks[pick].slot.take().expect("alive task has a box");
            match task.poll() {
                // dropping the task disconnects its output senders so
                // downstream operators can observe the end of their input
                TaskPoll::Done => {
                    drop(task);
                    self.alive.swap_remove(slot);
                }
                TaskPoll::Progress | TaskPoll::Blocked => self.tasks[pick].slot = Some(task),
            }
        }
    }

    pub(crate) fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    pub(crate) fn set_fuel(&mut self, polls: Option<u64>) {
        self.fuel = polls;
    }

    pub(crate) fn fuel_remaining(&self) -> Option<u64> {
        self.fuel
    }

    /// Wedges `task` for the scheduling-step window
    /// `[after_steps, after_steps + for_steps)`: when picked inside the
    /// window it is skipped instead of polled (its mailbox keeps filling).
    pub(crate) fn stall_task(&mut self, task: usize, after_steps: u64, for_steps: u64) {
        self.stalls
            .push((task, after_steps, after_steps.saturating_add(for_steps)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{unbounded, Sender};

    /// Forwards numbers, adding a tag; finishes when its input disconnects.
    struct Forwarder {
        input: Receiver<u64>,
        output: Option<Sender<u64>>,
        tag: u64,
    }

    impl PollTask for Forwarder {
        fn poll(&mut self) -> TaskPoll {
            for _ in 0..4 {
                match self.input.try_recv() {
                    Ok(v) => {
                        if let Some(out) = &self.output {
                            let _ = out.send(v + self.tag);
                        }
                    }
                    Err(crate::channel::TryRecvError::Empty) => return TaskPoll::Blocked,
                    Err(crate::channel::TryRecvError::Disconnected) => {
                        self.output = None;
                        return TaskPoll::Done;
                    }
                }
            }
            TaskPoll::Progress
        }
    }

    #[test]
    fn pool_runs_a_two_stage_chain_to_completion() {
        let (in_tx, in_rx) = unbounded::<u64>();
        let (mid_tx, mid_rx) = unbounded::<u64>();
        let (out_tx, out_rx) = unbounded::<u64>();
        let pool = PoolRuntime::with_placement(2, None);
        let first = pool.spawn(
            "first".into(),
            Box::new(Forwarder {
                input: in_rx.clone(),
                output: Some(mid_tx),
                tag: 1,
            }),
            &[in_rx.notify_slot()],
        );
        let second = pool.spawn(
            "second".into(),
            Box::new(Forwarder {
                input: mid_rx.clone(),
                output: Some(out_tx),
                tag: 10,
            }),
            &[mid_rx.notify_slot()],
        );
        for i in 0..100 {
            in_tx.send(i).unwrap();
        }
        drop(in_tx);
        pool.try_join(&[first, second]).unwrap();
        let got: Vec<u64> = out_rx.try_iter().collect();
        assert_eq!(got, (11..111).collect::<Vec<u64>>());
    }

    #[test]
    fn sim_fuel_stops_mid_schedule_and_resumes_identically() {
        fn run(seed: u64, fuel: Option<u64>) -> Vec<u64> {
            let (log_tx, log_rx) = unbounded::<u64>();
            let mut sim = SimRuntime::new(seed);
            let mut ids = Vec::new();
            for tag in [100u64, 200u64] {
                let (tx, rx) = unbounded::<u64>();
                for i in 0..20 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                ids.push(sim.spawn(Box::new(Forwarder {
                    input: rx,
                    output: Some(log_tx.clone()),
                    tag,
                })));
            }
            drop(log_tx);
            sim.set_fuel(fuel);
            sim.run_until(&ids);
            if fuel.is_some() {
                assert_eq!(sim.fuel_remaining(), Some(0), "stopped by fuel");
                // refuelling resumes the same schedule to completion
                sim.set_fuel(None);
                sim.run_until(&ids);
            }
            log_rx.try_iter().collect()
        }
        let full = run(7, None);
        let partial = run(7, Some(5));
        assert_eq!(
            full, partial,
            "a fuel pause must not perturb the seeded schedule"
        );
    }

    #[test]
    fn pool_try_join_reports_panics_without_unwinding() {
        struct Boom;
        impl PollTask for Boom {
            fn poll(&mut self) -> TaskPoll {
                panic!("kaboom");
            }
        }
        let pool = PoolRuntime::with_placement(1, None);
        let id = pool.spawn("boom".into(), Box::new(Boom), &[]);
        assert_eq!(pool.try_join(&[id]), Err("boom".to_string()));
    }

    #[test]
    fn sim_stall_window_preserves_the_delivered_set() {
        fn run(seed: u64, stall: Option<(u64, u64)>) -> Vec<u64> {
            let (log_tx, log_rx) = unbounded::<u64>();
            let mut sim = SimRuntime::new(seed);
            let mut ids = Vec::new();
            for tag in [100u64, 200u64] {
                let (tx, rx) = unbounded::<u64>();
                for i in 0..20 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                ids.push(sim.spawn(Box::new(Forwarder {
                    input: rx,
                    output: Some(log_tx.clone()),
                    tag,
                })));
            }
            drop(log_tx);
            if let Some((after, dur)) = stall {
                sim.stall_task(ids[0], after, dur);
            }
            sim.run_until(&ids);
            log_rx.try_iter().collect()
        }
        let free = run(7, None);
        let wedged = run(7, Some((3, 50)));
        let again = run(7, Some((3, 50)));
        assert_eq!(wedged, again, "a stalled schedule must still be seeded");
        let canon = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        assert_eq!(
            canon(free),
            canon(wedged),
            "a wedge delays but never drops deliveries"
        );
    }

    #[test]
    fn sim_schedule_is_reproducible_and_seed_sensitive() {
        fn run(seed: u64) -> Vec<u64> {
            // two producers interleave into one log; the interleaving is the
            // scheduler's choice
            let (log_tx, log_rx) = unbounded::<u64>();
            let mut sim = SimRuntime::new(seed);
            let mut ids = Vec::new();
            for tag in [100u64, 200u64] {
                let (tx, rx) = unbounded::<u64>();
                for i in 0..20 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                ids.push(sim.spawn(Box::new(Forwarder {
                    input: rx,
                    output: Some(log_tx.clone()),
                    tag,
                })));
            }
            drop(log_tx);
            sim.run_until(&ids);
            log_rx.try_iter().collect()
        }
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same interleaving");
        let c = run(8);
        assert_eq!(a.len(), c.len());
        // sanity: both tags fully delivered regardless of the interleaving
        let sum: u64 = a.iter().sum();
        let expected: u64 =
            (0..20).map(|i| i + 100).sum::<u64>() + (0..20).map(|i| i + 200).sum::<u64>();
        assert_eq!(sum, expected);
    }
}
