//! Channels of the dataflow substrate.
//!
//! A thin wrapper over `crossbeam-channel` adding the one capability the
//! cooperative executor backend needs: a **notify hook** on the receiving
//! side. When an operator task is multiplexed onto a core pool it parks
//! (returns [`crate::coop::TaskPoll::Blocked`]) instead of blocking an OS
//! thread on `recv`; the sender side must then tell the scheduler that the
//! task is runnable again. Every `send` — and the disconnection of the last
//! sender — fires the wakers attached to the channel. On the OS-thread
//! backend no waker is ever attached and the hook is a single relaxed atomic
//! load, so the blocking hot path is unchanged.
//!
//! The whole workspace creates channels through these constructors (or
//! through [`crate::runtime::Runtime::bounded`], which picks the right
//! capacity semantics per backend), so swapping backends never changes
//! operator code.

use crossbeam_channel as cb;
pub use crossbeam_channel::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::fmt;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A wakeup callback attached to a channel: invoked after every successful
/// send and when the last sender disconnects.
pub(crate) type Waker = Arc<dyn Fn() + Send + Sync>;

/// The shared notify state of one channel. Wakers are attached by the
/// cooperative runtime when it spawns the task that owns the receiving side;
/// the OS-thread backend attaches none.
#[derive(Default)]
pub(crate) struct NotifySlot {
    has_wakers: AtomicBool,
    wakers: Mutex<Vec<Waker>>,
}

impl NotifySlot {
    /// Fires every attached waker. Cheap (one relaxed load) when none are
    /// attached.
    pub(crate) fn notify(&self) {
        if self.has_wakers.load(Ordering::Acquire) {
            for waker in self.wakers.lock().iter() {
                waker();
            }
        }
    }

    /// Attaches a waker. Must happen before the owning task first parks,
    /// otherwise a send racing the attachment could be missed.
    pub(crate) fn attach(&self, waker: Waker) {
        self.wakers.lock().push(waker);
        self.has_wakers.store(true, Ordering::Release);
    }
}

pub(crate) struct Hooks {
    slot: NotifySlot,
    /// Live `Sender` clones; the drop of the last one fires the wakers so a
    /// parked task can observe the disconnection and finish.
    senders: AtomicUsize,
}

/// The sending half of a channel (see [`bounded`] / [`unbounded`]).
pub struct Sender<T> {
    /// `ManuallyDrop` so `Drop` can disconnect the inner sender *before*
    /// firing the wakers: notifying first would let a parked task observe
    /// `Empty` instead of `Disconnected`, park again, and never wake.
    inner: ManuallyDrop<cb::Sender<T>>,
    hooks: Arc<Hooks>,
}

/// The receiving half of a channel (see [`bounded`] / [`unbounded`]).
pub struct Receiver<T> {
    inner: cb::Receiver<T>,
    hooks: Arc<Hooks>,
}

fn wrap<T>(pair: (cb::Sender<T>, cb::Receiver<T>)) -> (Sender<T>, Receiver<T>) {
    let hooks = Arc::new(Hooks {
        slot: NotifySlot::default(),
        senders: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: ManuallyDrop::new(pair.0),
            hooks: Arc::clone(&hooks),
        },
        Receiver {
            inner: pair.1,
            hooks,
        },
    )
}

/// Creates a channel with a fixed capacity; `send` blocks while full.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    wrap(cb::bounded(capacity))
}

/// Creates a channel with unlimited capacity; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    wrap(cb::unbounded())
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)?;
        self.hooks.slot.notify();
        Ok(())
    }

    /// Sends a message without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.inner.try_send(value)?;
        self.hooks.slot.notify();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available or every sender
    /// is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Receives a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    /// A blocking iterator ending when the channel is disconnected and
    /// drained.
    pub fn iter(&self) -> cb::Iter<'_, T> {
        self.inner.iter()
    }

    /// A non-blocking iterator over currently available messages.
    pub fn try_iter(&self) -> cb::TryIter<'_, T> {
        self.inner.try_iter()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The notify slot shared by every clone of this channel's endpoints
    /// (the cooperative runtime attaches task wakers here).
    pub(crate) fn notify_slot(&self) -> Arc<Hooks> {
        Arc::clone(&self.hooks)
    }
}

impl Hooks {
    pub(crate) fn attach_waker(&self, waker: Waker) {
        self.slot.attach(waker);
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.hooks.senders.fetch_add(1, Ordering::Relaxed);
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            hooks: Arc::clone(&self.hooks),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Disconnect the inner sender FIRST: a waker fired before the
        // channel reports `Disconnected` would let the receiving task poll
        // `Empty`, park again, and sleep forever (the notification below is
        // the last one it will ever get).
        // SAFETY: `inner` is never used again; Drop runs exactly once.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.hooks.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // last sender gone: wake parked receivers so they can observe
            // the disconnection and run their `finish`
            self.hooks.slot.notify();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            hooks: Arc::clone(&self.hooks),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = cb::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn send_fires_attached_waker() {
        let (tx, rx) = unbounded::<u32>();
        let fired = Arc::new(AtomicU32::new(0));
        let observer = Arc::clone(&fired);
        rx.notify_slot().attach_waker(Arc::new(move || {
            observer.fetch_add(1, Ordering::SeqCst);
        }));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn last_sender_drop_fires_waker() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let fired = Arc::new(AtomicU32::new(0));
        let observer = Arc::clone(&fired);
        rx.notify_slot().attach_waker(Arc::new(move || {
            observer.fetch_add(1, Ordering::SeqCst);
        }));
        drop(tx);
        assert_eq!(fired.load(Ordering::SeqCst), 0, "one sender still alive");
        drop(tx2);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "disconnect must wake");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_semantics_are_preserved_without_wakers() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let handle = std::thread::spawn(move || rx.iter().sum::<u32>());
        tx.send(3).unwrap();
        drop(tx);
        assert_eq!(handle.join().unwrap(), 6);
    }
}
