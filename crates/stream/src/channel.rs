//! Channels of the dataflow substrate.
//!
//! A thin wrapper over `crossbeam-channel` adding the one capability the
//! cooperative executor backend needs: a **notify hook** on the receiving
//! side. When an operator task is multiplexed onto a core pool it parks
//! (returns [`crate::coop::TaskPoll::Blocked`]) instead of blocking an OS
//! thread on `recv`; the sender side must then tell the scheduler that the
//! task is runnable again. Every `send` — and the disconnection of the last
//! sender — fires the wakers attached to the channel. On the OS-thread
//! backend no waker is ever attached and the hook is a single relaxed atomic
//! load, so the blocking hot path is unchanged.
//!
//! The whole workspace creates channels through these constructors (or
//! through [`crate::runtime::Runtime::bounded`], which picks the right
//! capacity semantics per backend), so swapping backends never changes
//! operator code.

use crate::fault::EdgeFault;
use crossbeam_channel as cb;
pub use crossbeam_channel::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A wakeup callback attached to a channel: invoked after every successful
/// send and when the last sender disconnects.
pub(crate) type Waker = Arc<dyn Fn() + Send + Sync>;

/// The shared notify state of one channel. Wakers are attached by the
/// cooperative runtime when it spawns the task that owns the receiving side;
/// the OS-thread backend attaches none.
#[derive(Default)]
pub(crate) struct NotifySlot {
    has_wakers: AtomicBool,
    wakers: Mutex<Vec<Waker>>,
}

impl NotifySlot {
    /// Fires every attached waker. Cheap (one relaxed load) when none are
    /// attached.
    pub(crate) fn notify(&self) {
        if self.has_wakers.load(Ordering::Acquire) {
            for waker in self.wakers.lock().iter() {
                waker();
            }
        }
    }

    /// Attaches a waker. Must happen before the owning task first parks,
    /// otherwise a send racing the attachment could be missed.
    pub(crate) fn attach(&self, waker: Waker) {
        self.wakers.lock().push(waker);
        self.has_wakers.store(true, Ordering::Release);
    }
}

pub(crate) struct Hooks {
    slot: NotifySlot,
    /// Live `Sender` clones; the drop of the last one fires the wakers so a
    /// parked task can observe the disconnection and finish.
    senders: AtomicUsize,
    /// Messages queued (maintained by the wrapper's send/recv paths): the
    /// backlog gauge the overload policy reads without holding an endpoint.
    depth: AtomicUsize,
}

/// A cloneable backlog gauge for one channel, detached from both endpoints:
/// holding one neither keeps the channel connected nor consumes messages.
/// Operators use it to observe their own mailbox depth for overload
/// shedding.
#[derive(Clone)]
pub struct QueueDepth {
    hooks: Arc<Hooks>,
}

impl QueueDepth {
    /// Messages currently queued in the channel.
    pub fn get(&self) -> usize {
        self.hooks.depth.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for QueueDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueueDepth({})", self.get())
    }
}

/// The seeded drop/delay shim state shared by the clones of one faulted
/// sender (see [`Sender::with_fault`]).
struct FaultShim<T> {
    /// Diversion probability in parts per million.
    p_ppm: u32,
    /// How many later sends pass before a diverted message is retransmitted.
    redeliver_after: u64,
    /// splitmix64 state for the per-send diversion coin.
    rng: Mutex<u64>,
    /// Diverted messages awaiting retransmission, with their due send count.
    held: Mutex<VecDeque<(u64, T)>>,
    /// Sends observed on this shim (the clock `held` entries are due by).
    sent: AtomicU64,
    /// Observability: total messages diverted (shared with the metrics).
    diverted: Arc<AtomicU64>,
}

impl<T> FaultShim<T> {
    fn coin(&self) -> bool {
        let mut state = self.rng.lock();
        (crate::coop::splitmix64(&mut state) % 1_000_000) < u64::from(self.p_ppm)
    }
}

/// The sending half of a channel (see [`bounded`] / [`unbounded`]).
pub struct Sender<T> {
    /// `ManuallyDrop` so `Drop` can disconnect the inner sender *before*
    /// firing the wakers: notifying first would let a parked task observe
    /// `Empty` instead of `Disconnected`, park again, and never wake.
    inner: ManuallyDrop<cb::Sender<T>>,
    hooks: Arc<Hooks>,
    /// Optional seeded drop/delay shim (fault injection).
    fault: Option<Arc<FaultShim<T>>>,
}

/// The receiving half of a channel (see [`bounded`] / [`unbounded`]).
pub struct Receiver<T> {
    inner: cb::Receiver<T>,
    hooks: Arc<Hooks>,
}

fn wrap<T>(pair: (cb::Sender<T>, cb::Receiver<T>)) -> (Sender<T>, Receiver<T>) {
    let hooks = Arc::new(Hooks {
        slot: NotifySlot::default(),
        senders: AtomicUsize::new(1),
        depth: AtomicUsize::new(0),
    });
    (
        Sender {
            inner: ManuallyDrop::new(pair.0),
            hooks: Arc::clone(&hooks),
            fault: None,
        },
        Receiver {
            inner: pair.1,
            hooks,
        },
    )
}

/// Creates a channel with a fixed capacity; `send` blocks while full.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    wrap(cb::bounded(capacity))
}

/// Creates a channel with unlimited capacity; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    wrap(cb::unbounded())
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if let Some(fault) = &self.fault {
            let now = fault.sent.fetch_add(1, Ordering::Relaxed) + 1;
            self.flush_due(fault, now)?;
            if fault.coin() {
                fault
                    .held
                    .lock()
                    .push_back((now + fault.redeliver_after, value));
                fault.diverted.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.send_inner(value)
    }

    /// Sends a message without blocking. Fault shims do not apply here: the
    /// non-blocking path is used for control traffic that must not reorder.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.inner.try_send(value)?;
        self.hooks.depth.fetch_add(1, Ordering::Relaxed);
        self.hooks.slot.notify();
        Ok(())
    }

    fn send_inner(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)?;
        self.hooks.depth.fetch_add(1, Ordering::Relaxed);
        self.hooks.slot.notify();
        Ok(())
    }

    /// Retransmits every held message whose due send count has passed.
    fn flush_due(&self, fault: &FaultShim<T>, now: u64) -> Result<(), SendError<T>> {
        loop {
            let due = {
                let mut held = fault.held.lock();
                match held.front() {
                    Some((due, _)) if *due <= now => held.pop_front().map(|(_, m)| m),
                    _ => None,
                }
            };
            match due {
                Some(message) => self.send_inner(message)?,
                None => return Ok(()),
            }
        }
    }

    /// Wraps this sender in a seeded drop/delay shim: each blocking `send`
    /// is diverted with probability `fault.p_ppm` ppm and retransmitted
    /// after `fault.redeliver_after` later sends (or when the last clone of
    /// this shimmed sender drops) — a loss-masking "network drop" that
    /// reorders but never loses messages. Clones share the shim state.
    pub fn with_fault(mut self, fault: EdgeFault, seed: u64, diverted: Arc<AtomicU64>) -> Self {
        self.fault = Some(Arc::new(FaultShim {
            p_ppm: fault.p_ppm,
            redeliver_after: fault.redeliver_after,
            rng: Mutex::new(seed),
            held: Mutex::new(VecDeque::new()),
            sent: AtomicU64::new(0),
            diverted,
        }));
        self
    }

    /// A backlog gauge for this channel (see [`QueueDepth`]).
    pub fn depth_handle(&self) -> QueueDepth {
        QueueDepth {
            hooks: Arc::clone(&self.hooks),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available or every sender
    /// is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let value = self.inner.recv()?;
        self.note_dequeued();
        Ok(value)
    }

    /// Receives a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let value = self.inner.try_recv()?;
        self.note_dequeued();
        Ok(value)
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let value = self.inner.recv_timeout(timeout)?;
        self.note_dequeued();
        Ok(value)
    }

    fn note_dequeued(&self) {
        // saturating: a reader that raced a send counted on another clone
        // must never wrap the gauge
        let _ = self
            .hooks
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// A blocking iterator ending when the channel is disconnected and
    /// drained.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// A non-blocking iterator over currently available messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    /// A backlog gauge for this channel (see [`QueueDepth`]).
    pub fn depth_handle(&self) -> QueueDepth {
        QueueDepth {
            hooks: Arc::clone(&self.hooks),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The notify slot shared by every clone of this channel's endpoints
    /// (the cooperative runtime attaches task wakers here).
    pub(crate) fn notify_slot(&self) -> Arc<Hooks> {
        Arc::clone(&self.hooks)
    }
}

impl Hooks {
    pub(crate) fn attach_waker(&self, waker: Waker) {
        self.slot.attach(waker);
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.hooks.senders.fetch_add(1, Ordering::Relaxed);
        Self {
            inner: ManuallyDrop::new((*self.inner).clone()),
            hooks: Arc::clone(&self.hooks),
            fault: self.fault.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Loss masking: every dropping clone retransmits whatever the shared
        // shim still holds while its own inner sender is alive, so the final
        // clone's drop leaves nothing diverted behind the disconnect.
        if let Some(fault) = self.fault.take() {
            let mut held = fault.held.lock();
            while let Some((_, message)) = held.pop_front() {
                if self.send_inner(message).is_err() {
                    break; // receiver gone: nothing left to mask
                }
            }
        }
        // Disconnect the inner sender FIRST: a waker fired before the
        // channel reports `Disconnected` would let the receiving task poll
        // `Empty`, park again, and sleep forever (the notification below is
        // the last one it will ever get).
        // SAFETY: `inner` is never used again; Drop runs exactly once.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.hooks.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // last sender gone: wake parked receivers so they can observe
            // the disconnection and run their `finish`
            self.hooks.slot.notify();
        }
    }
}

/// Blocking iterator over a [`Receiver`] (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Non-blocking iterator over a [`Receiver`] (see [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            hooks: Arc::clone(&self.hooks),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn send_fires_attached_waker() {
        let (tx, rx) = unbounded::<u32>();
        let fired = Arc::new(AtomicU32::new(0));
        let observer = Arc::clone(&fired);
        rx.notify_slot().attach_waker(Arc::new(move || {
            observer.fetch_add(1, Ordering::SeqCst);
        }));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn last_sender_drop_fires_waker() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let fired = Arc::new(AtomicU32::new(0));
        let observer = Arc::clone(&fired);
        rx.notify_slot().attach_waker(Arc::new(move || {
            observer.fetch_add(1, Ordering::SeqCst);
        }));
        drop(tx);
        assert_eq!(fired.load(Ordering::SeqCst), 0, "one sender still alive");
        drop(tx2);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "disconnect must wake");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn depth_gauge_tracks_backlog() {
        let (tx, rx) = unbounded::<u32>();
        let gauge = rx.depth_handle();
        assert_eq!(gauge.get(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(gauge.get(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(gauge.get(), 1);
        let drained: Vec<u32> = rx.try_iter().collect();
        assert_eq!(drained, vec![2]);
        assert_eq!(gauge.get(), 0);
        // holding the gauge does not keep the channel connected
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn fault_shim_reorders_but_never_loses() {
        let diverted = Arc::new(AtomicU64::new(0));
        let (tx, rx) = unbounded::<u32>();
        let tx = tx.with_fault(
            EdgeFault {
                p_ppm: 500_000,
                redeliver_after: 3,
            },
            7,
            Arc::clone(&diverted),
        );
        const N: u32 = 200;
        for i in 0..N {
            tx.send(i).unwrap();
        }
        drop(tx); // flushes anything still held
        let mut got: Vec<u32> = rx.iter().collect();
        assert!(
            diverted.load(Ordering::SeqCst) > 0,
            "p=0.5 over 200 sends must divert something"
        );
        assert_ne!(got, (0..N).collect::<Vec<_>>(), "some reorder expected");
        got.sort_unstable();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "no loss, no duplication");
    }

    #[test]
    fn fault_shim_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<u32> {
            let (tx, rx) = unbounded::<u32>();
            let tx = tx.with_fault(
                EdgeFault {
                    p_ppm: 200_000,
                    redeliver_after: 2,
                },
                seed,
                Arc::new(AtomicU64::new(0)),
            );
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            rx.iter().collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn blocking_semantics_are_preserved_without_wakers() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let handle = std::thread::spawn(move || rx.iter().sum::<u32>());
        tx.send(3).unwrap();
        drop(tx);
        assert_eq!(handle.join().unwrap(), 6);
    }
}
