//! Machine-topology detection and thread placement.
//!
//! At high core counts the routing hot path is dominated not by the work a
//! dispatcher does but by where its cache lines live: a routing table shard
//! written on one socket and read on another costs a cross-node transfer per
//! probe. This module gives the runtime the two primitives needed to keep
//! hot state local to its executor:
//!
//! * [`CpuTopology`] — which CPUs the machine has and which NUMA node each
//!   one belongs to, parsed from `/sys/devices/system` on Linux with a
//!   portable single-node fallback everywhere else.
//! * [`Placement`] — a per-thread handle recording the node (and, when
//!   pinned, the CPU) the current executor runs on. NUMA-aware structures
//!   such as the partition crate's `TermRegistry` consult
//!   [`Placement::current_node`] to resolve reads through node-local state
//!   first.
//!
//! Pinning itself is a best-effort `sched_setaffinity` call (declared
//! directly against the C library so no external crate is required); on
//! non-Linux targets or when the call is refused, threads simply keep
//! floating and the placement degrades to the single-node behaviour.

use std::cell::Cell;
use std::path::Path;

/// The CPUs of one NUMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCpus {
    /// Kernel node id (the `N` of `/sys/devices/system/node/nodeN`).
    pub node: usize,
    /// Online CPUs belonging to this node, ascending.
    pub cpus: Vec<usize>,
}

/// One placement slot of a thread-assignment plan: a CPU together with the
/// NUMA node it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSlot {
    /// CPU to pin to.
    pub cpu: usize,
    /// NUMA node of that CPU (dense index into the detected node list, not
    /// the kernel node id — this is what [`Placement::current_node`]
    /// reports and what node-local sharding indexes by).
    pub node: usize,
}

impl CpuSlot {
    /// Applies the slot to the calling thread: best-effort pin to the CPU
    /// and record the placement in thread-local state. Returns whether the
    /// pin succeeded (the placement node is recorded either way — the node
    /// is a locality *hint*, never a correctness requirement).
    pub fn apply(self) -> bool {
        let pinned = pin_current_thread(self.cpu);
        Placement::set_current(Placement {
            node: self.node,
            cpu: pinned.then_some(self.cpu),
        });
        pinned
    }
}

/// The machine's CPU/NUMA layout as seen by the runtime.
///
/// Nodes are stored densely in kernel-id order; all placement consumers use
/// the dense index (`0..num_nodes()`), so a machine whose online nodes are
/// `{0, 2}` still yields nodes `0` and `1` here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuTopology {
    nodes: Vec<NodeCpus>,
}

impl CpuTopology {
    /// Detects the topology of the running machine: on Linux, parses
    /// `/sys/devices/system`; anywhere else (or when the parse yields
    /// nothing usable) falls back to a single node holding
    /// `available_parallelism` CPUs.
    pub fn detect() -> Self {
        Self::from_sysfs(Path::new("/sys/devices/system")).unwrap_or_else(|| {
            Self::single_node(
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
            )
        })
    }

    /// A single-node topology over CPUs `0..cpus` (the portable fallback).
    pub fn single_node(cpus: usize) -> Self {
        Self {
            nodes: vec![NodeCpus {
                node: 0,
                cpus: (0..cpus.max(1)).collect(),
            }],
        }
    }

    /// Builds a topology from an explicit node → CPU assignment (tests and
    /// synthetic layouts). Empty nodes are dropped; returns the single-node
    /// fallback over one CPU if nothing remains.
    pub fn from_nodes(nodes: Vec<NodeCpus>) -> Self {
        let nodes: Vec<NodeCpus> = nodes.into_iter().filter(|n| !n.cpus.is_empty()).collect();
        if nodes.is_empty() {
            return Self::single_node(1);
        }
        Self { nodes }
    }

    /// Parses a sysfs tree laid out like `/sys/devices/system`: node CPU
    /// lists from `node/node<N>/cpulist`, intersected with
    /// `cpu/online` so offline CPUs never enter a placement plan. Returns
    /// `None` when the tree is absent or yields no online CPU (callers fall
    /// back to [`CpuTopology::single_node`]).
    pub fn from_sysfs(root: &Path) -> Option<Self> {
        let online: Option<Vec<usize>> = std::fs::read_to_string(root.join("cpu/online"))
            .ok()
            .and_then(|s| parse_cpu_list(s.trim()));
        let node_dir = root.join("node");
        let mut nodes = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&node_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(id) = name
                    .strip_prefix("node")
                    .and_then(|n| n.parse::<usize>().ok())
                else {
                    continue;
                };
                let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                    continue;
                };
                let Some(mut cpus) = parse_cpu_list(list.trim()) else {
                    continue;
                };
                if let Some(online) = &online {
                    cpus.retain(|c| online.contains(c));
                }
                if !cpus.is_empty() {
                    nodes.push(NodeCpus { node: id, cpus });
                }
            }
        }
        if nodes.is_empty() {
            // No node directory (kernels without CONFIG_NUMA): treat every
            // online CPU as one node.
            let cpus = online?;
            if cpus.is_empty() {
                return None;
            }
            return Some(Self {
                nodes: vec![NodeCpus { node: 0, cpus }],
            });
        }
        nodes.sort_by_key(|n| n.node);
        Some(Self { nodes })
    }

    /// Number of NUMA nodes with at least one online CPU.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of online CPUs across all nodes.
    pub fn num_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus.len()).sum()
    }

    /// The per-node CPU lists, dense and in kernel-id order.
    pub fn nodes(&self) -> &[NodeCpus] {
        &self.nodes
    }

    /// The dense node index of a CPU, if the CPU is known.
    pub fn node_of_cpu(&self, cpu: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.cpus.binary_search(&cpu).is_ok())
    }

    /// The placement slot of the `i`-th thread of a pool: threads fill the
    /// machine CPU by CPU (node by node, so a pool no larger than one node
    /// stays on that node) and wrap around when the pool outgrows the
    /// machine.
    pub fn slot(&self, i: usize) -> CpuSlot {
        let total = self.num_cpus().max(1);
        let mut k = i % total;
        for (dense, node) in self.nodes.iter().enumerate() {
            if k < node.cpus.len() {
                return CpuSlot {
                    cpu: node.cpus[k],
                    node: dense,
                };
            }
            k -= node.cpus.len();
        }
        // self.nodes is never empty by construction
        CpuSlot { cpu: 0, node: 0 }
    }
}

impl Default for CpuTopology {
    fn default() -> Self {
        Self::detect()
    }
}

/// Parses a kernel CPU list (`"0-3,8,10-11"`) into an ascending vector.
/// Returns `None` on any malformed component or an empty list.
fn parse_cpu_list(list: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    if list.is_empty() {
        return None;
    }
    for part in list.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize = lo.trim().parse().ok()?;
            let hi: usize = hi.trim().parse().ok()?;
            if hi < lo {
                return None;
            }
            cpus.extend(lo..=hi);
        } else {
            cpus.push(part.parse().ok()?);
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

/// Highest CPU id a pin mask can express (the fixed `cpu_set_t` width).
const MAX_PIN_CPU: usize = 1024;

/// Pins the calling thread to one CPU via `sched_setaffinity`. Best-effort:
/// returns `false` on non-Linux targets, for CPU ids beyond the fixed mask
/// width, or when the kernel refuses (e.g. a restricted cpuset).
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= MAX_PIN_CPU {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        // Declared directly against libc (which every Linux Rust binary
        // already links) so the vendored workspace needs no libc crate.
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
        }
        let mut mask = [0u8; MAX_PIN_CPU / 8];
        mask[cpu / 8] |= 1 << (cpu % 8);
        // pid 0 targets the calling thread
        // SAFETY: plain FFI call with no pointer retention — the kernel
        // copies `cpusetsize` bytes out of `mask` before returning, and
        // `mask` is a live stack array of exactly that length.
        unsafe { sched_setaffinity(0, mask.len(), mask.as_ptr()) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

thread_local! {
    static CURRENT_PLACEMENT: Cell<Placement> = const {
        Cell::new(Placement { node: 0, cpu: None })
    };
}

/// Where the current thread runs: its (dense) NUMA node and, when pinned,
/// its CPU. Threads that were never placed report node `0` unpinned — the
/// exact behaviour of a single-node machine, so placement-aware structures
/// need no "is placement enabled" branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Dense NUMA-node index of the thread (see [`CpuSlot::node`]).
    pub node: usize,
    /// CPU the thread is pinned to, `None` when floating.
    pub cpu: Option<usize>,
}

impl Placement {
    /// The placement of the calling thread.
    pub fn current() -> Self {
        CURRENT_PLACEMENT.with(Cell::get)
    }

    /// The dense NUMA-node index of the calling thread (`0` when the thread
    /// was never placed). This is the hot-path accessor used by node-local
    /// sharding.
    #[inline]
    pub fn current_node() -> usize {
        CURRENT_PLACEMENT.with(Cell::get).node
    }

    /// Records `placement` for the calling thread (does **not** change the
    /// thread's affinity — use [`CpuSlot::apply`] for that). Public so tests
    /// and embedders can emulate a multi-node layout.
    pub fn set_current(placement: Placement) {
        CURRENT_PLACEMENT.with(|p| p.set(placement));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Builds a canned `/sys/devices/system`-shaped tree under the system
    /// temp directory; removed on drop.
    struct CannedSys {
        root: PathBuf,
    }

    impl CannedSys {
        fn new(online: Option<&str>, nodes: &[(usize, &str)]) -> Self {
            static UNIQUE: AtomicU64 = AtomicU64::new(0);
            let root = std::env::temp_dir().join(format!(
                "ps2stream-topo-{}-{}",
                std::process::id(),
                UNIQUE.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(root.join("cpu")).unwrap();
            if let Some(online) = online {
                fs::write(root.join("cpu/online"), online).unwrap();
            }
            for (id, cpulist) in nodes {
                let dir = root.join(format!("node/node{id}"));
                fs::create_dir_all(&dir).unwrap();
                fs::write(dir.join("cpulist"), cpulist).unwrap();
            }
            Self { root }
        }
    }

    impl Drop for CannedSys {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn parses_cpu_lists() {
        assert_eq!(parse_cpu_list("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpu_list("0-1,4,6-7"), Some(vec![0, 1, 4, 6, 7]));
        assert_eq!(parse_cpu_list("5"), Some(vec![5]));
        assert_eq!(parse_cpu_list(""), None);
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("a-b"), None);
        // duplicates collapse
        assert_eq!(parse_cpu_list("1,1,0-1"), Some(vec![0, 1]));
    }

    #[test]
    fn single_node_tree_parses() {
        let sys = CannedSys::new(Some("0-3"), &[(0, "0-3")]);
        let topo = CpuTopology::from_sysfs(&sys.root).unwrap();
        assert_eq!(topo.num_nodes(), 1);
        assert_eq!(topo.num_cpus(), 4);
        assert_eq!(topo.nodes()[0].cpus, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dual_socket_tree_parses_in_node_order() {
        // node directories read in arbitrary order must still come out
        // sorted by kernel id
        let sys = CannedSys::new(Some("0-7"), &[(1, "4-7"), (0, "0-3")]);
        let topo = CpuTopology::from_sysfs(&sys.root).unwrap();
        assert_eq!(topo.num_nodes(), 2);
        assert_eq!(topo.nodes()[0].node, 0);
        assert_eq!(topo.nodes()[0].cpus, vec![0, 1, 2, 3]);
        assert_eq!(topo.nodes()[1].node, 1);
        assert_eq!(topo.nodes()[1].cpus, vec![4, 5, 6, 7]);
        assert_eq!(topo.node_of_cpu(5), Some(1));
        assert_eq!(topo.node_of_cpu(99), None);
    }

    #[test]
    fn offline_cpu_holes_are_dropped() {
        // CPUs 2 and 5 offline: they appear in the node lists but not in
        // cpu/online, and must not enter the topology
        let sys = CannedSys::new(Some("0-1,3-4,6-7"), &[(0, "0-3"), (1, "4-7")]);
        let topo = CpuTopology::from_sysfs(&sys.root).unwrap();
        assert_eq!(topo.nodes()[0].cpus, vec![0, 1, 3]);
        assert_eq!(topo.nodes()[1].cpus, vec![4, 6, 7]);
        assert_eq!(topo.num_cpus(), 6);
    }

    #[test]
    fn fully_offline_node_disappears() {
        let sys = CannedSys::new(Some("0-3"), &[(0, "0-3"), (1, "4-7")]);
        let topo = CpuTopology::from_sysfs(&sys.root).unwrap();
        assert_eq!(topo.num_nodes(), 1);
        assert_eq!(topo.num_cpus(), 4);
    }

    #[test]
    fn numa_less_tree_falls_back_to_online_list() {
        let sys = CannedSys::new(Some("0-1"), &[]);
        let topo = CpuTopology::from_sysfs(&sys.root).unwrap();
        assert_eq!(topo.num_nodes(), 1);
        assert_eq!(topo.nodes()[0].cpus, vec![0, 1]);
    }

    #[test]
    fn absent_tree_yields_none_and_detect_falls_back() {
        let missing = std::env::temp_dir().join("ps2stream-topo-definitely-missing");
        assert!(CpuTopology::from_sysfs(&missing).is_none());
        // detect never panics and always yields at least one CPU on one node
        let topo = CpuTopology::detect();
        assert!(topo.num_nodes() >= 1);
        assert!(topo.num_cpus() >= 1);
    }

    #[test]
    fn slots_fill_node_by_node_and_wrap() {
        let topo = CpuTopology::from_nodes(vec![
            NodeCpus {
                node: 0,
                cpus: vec![0, 1],
            },
            NodeCpus {
                node: 1,
                cpus: vec![4, 5],
            },
        ]);
        let slots: Vec<CpuSlot> = (0..5).map(|i| topo.slot(i)).collect();
        assert_eq!(slots[0], CpuSlot { cpu: 0, node: 0 });
        assert_eq!(slots[1], CpuSlot { cpu: 1, node: 0 });
        assert_eq!(slots[2], CpuSlot { cpu: 4, node: 1 });
        assert_eq!(slots[3], CpuSlot { cpu: 5, node: 1 });
        // wrap-around
        assert_eq!(slots[4], CpuSlot { cpu: 0, node: 0 });
    }

    #[test]
    fn from_nodes_drops_empty_nodes() {
        let topo = CpuTopology::from_nodes(vec![
            NodeCpus {
                node: 0,
                cpus: vec![],
            },
            NodeCpus {
                node: 3,
                cpus: vec![9],
            },
        ]);
        assert_eq!(topo.num_nodes(), 1);
        assert_eq!(topo.slot(0), CpuSlot { cpu: 9, node: 0 });
        // all-empty input degrades to the single-CPU fallback
        assert_eq!(CpuTopology::from_nodes(Vec::new()).num_cpus(), 1);
    }

    #[test]
    fn placement_is_thread_local() {
        assert_eq!(Placement::current_node(), 0);
        Placement::set_current(Placement {
            node: 2,
            cpu: Some(7),
        });
        assert_eq!(Placement::current_node(), 2);
        let other = std::thread::spawn(Placement::current_node).join().unwrap();
        assert_eq!(other, 0, "placement must not leak across threads");
        Placement::set_current(Placement { node: 0, cpu: None });
    }

    #[test]
    fn pinning_on_this_machine_is_best_effort() {
        // CPU 0 exists everywhere Linux runs; on other targets this is false.
        let ok = pin_current_thread(0);
        if cfg!(target_os = "linux") {
            assert!(ok, "pinning to CPU 0 should succeed on Linux");
        } else {
            assert!(!ok);
        }
        assert!(!pin_current_thread(usize::MAX));
        // restore a permissive mask so later tests are unaffected
        #[cfg(target_os = "linux")]
        restore_full_affinity();
    }

    #[cfg(target_os = "linux")]
    fn restore_full_affinity() {
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
        }
        let mask = [0xffu8; MAX_PIN_CPU / 8];
        // SAFETY: same contract as `pin_current_thread` — the kernel reads
        // `mask.len()` bytes from the live stack array and keeps nothing.
        unsafe {
            let _ = sched_setaffinity(0, mask.len(), mask.as_ptr());
        }
    }
}
