//! Batched message envelopes.
//!
//! The hot path of the pipeline is dominated by per-tuple channel operations
//! when every record travels alone: one `send`, one `recv` and one wake-up per
//! tuple. Following the amortized-maintenance design of FAST-style streaming
//! indexes, tuples are grouped into [`Batch`]es — each record keeps its **own**
//! ingestion timestamp (latency accounting is still per tuple), only the
//! channel traffic is amortized.
//!
//! Two helpers build batches:
//!
//! * [`BatchBuffer`] — per-output accumulation buffers with a record-count
//!   flush threshold, for operators whose output channel carries an enum
//!   wrapping the batch (the dispatcher's per-worker reorder buffers, the
//!   worker's per-merger match buffers);
//! * [`BatchingEmitter`] — an [`Emitter`]-like façade over channels that carry
//!   `Batch<T>` directly.

use crate::envelope::Envelope;
use crate::operator::Emitter;

/// An ordered group of enveloped records travelling through one channel
/// operation. Records keep their individual ingestion timestamps and sequence
/// numbers.
#[derive(Debug, Clone, Default)]
pub struct Batch<T> {
    records: Vec<Envelope<T>>,
}

impl<T> Batch<T> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
        }
    }

    /// Creates an empty batch with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: Vec::with_capacity(capacity),
        }
    }

    /// Wraps a single envelope (the degenerate batch of size one).
    pub fn of_one(envelope: Envelope<T>) -> Self {
        Self {
            records: vec![envelope],
        }
    }

    /// Builds a batch from already-enveloped records.
    pub fn from_records(records: Vec<Envelope<T>>) -> Self {
        Self { records }
    }

    /// Appends a record.
    pub fn push(&mut self, envelope: Envelope<T>) {
        self.records.push(envelope);
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records of the batch, in arrival order.
    pub fn records(&self) -> &[Envelope<T>] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Envelope<T>> {
        self.records.iter()
    }
}

impl<T> IntoIterator for Batch<T> {
    type Item = Envelope<T>;
    type IntoIter = std::vec::IntoIter<Envelope<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Batch<T> {
    type Item = &'a Envelope<T>;
    type IntoIter = std::slice::Iter<'a, Envelope<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Per-output accumulation buffers with a record-count flush threshold.
///
/// Operators that fan records out to several downstream channels push each
/// routed record here; `push` hands back a full [`Batch`] as soon as an
/// output's buffer reaches the configured size, and `flush_all` drains the
/// remainders (called at the end of an input batch or at operator shutdown so
/// no record is ever held back indefinitely).
#[derive(Debug)]
pub struct BatchBuffer<T> {
    buffers: Vec<Vec<Envelope<T>>>,
    batch_size: usize,
}

impl<T> BatchBuffer<T> {
    /// Creates buffers for `num_outputs` downstream channels flushing every
    /// `batch_size` records (a size of 0 behaves like 1: immediate flush).
    pub fn new(num_outputs: usize, batch_size: usize) -> Self {
        let mut buffers = Vec::with_capacity(num_outputs);
        buffers.resize_with(num_outputs, Vec::new);
        Self {
            buffers,
            batch_size: batch_size.max(1),
        }
    }

    /// The configured flush threshold in records.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Appends a record to the buffer of `output`; returns the full batch to
    /// send when the buffer reached the flush threshold.
    pub fn push(&mut self, output: usize, envelope: Envelope<T>) -> Option<Batch<T>> {
        let buffer = self.buffers.get_mut(output)?;
        buffer.push(envelope);
        if buffer.len() >= self.batch_size {
            return Some(Batch::from_records(std::mem::take(buffer)));
        }
        None
    }

    /// Drains the buffer of one output, if non-empty.
    pub fn flush(&mut self, output: usize) -> Option<Batch<T>> {
        let buffer = self.buffers.get_mut(output)?;
        if buffer.is_empty() {
            return None;
        }
        Some(Batch::from_records(std::mem::take(buffer)))
    }

    /// Drains every non-empty buffer, returning `(output, batch)` pairs.
    pub fn flush_all(&mut self) -> Vec<(usize, Batch<T>)> {
        let mut out = Vec::new();
        for (i, buffer) in self.buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                out.push((i, Batch::from_records(std::mem::take(buffer))));
            }
        }
        out
    }

    /// Total number of records currently buffered across all outputs.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }
}

/// An emitter over channels carrying `Batch<T>` directly: single records go
/// in, batches come out once the per-output threshold is reached.
#[derive(Debug)]
pub struct BatchingEmitter<T> {
    emitter: Emitter<Batch<T>>,
    buffer: BatchBuffer<T>,
}

impl<T> BatchingEmitter<T> {
    /// Wraps an emitter, flushing each output every `batch_size` records.
    pub fn new(emitter: Emitter<Batch<T>>, batch_size: usize) -> Self {
        let buffer = BatchBuffer::new(emitter.num_outputs(), batch_size);
        Self { emitter, buffer }
    }

    /// Buffers one record towards `output`, sending a batch downstream when
    /// the buffer fills up.
    pub fn emit_to(&mut self, output: usize, envelope: Envelope<T>) {
        if let Some(batch) = self.buffer.push(output, envelope) {
            self.emitter.emit_to(output, batch);
        }
    }

    /// Flushes every partially-filled buffer downstream.
    pub fn flush_all(&mut self) {
        for (output, batch) in self.buffer.flush_all() {
            self.emitter.emit_to(output, batch);
        }
    }

    /// Records buffered but not yet sent.
    pub fn pending(&self) -> usize {
        self.buffer.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::bounded;
    use crate::operator::Emitter;

    #[test]
    fn batch_keeps_per_record_timestamps() {
        let e1 = Envelope::now(1, "a");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let e2 = Envelope::now(2, "b");
        let ts1 = e1.ingested_at;
        let ts2 = e2.ingested_at;
        assert!(ts2 > ts1);
        let mut batch = Batch::new();
        batch.push(e1);
        batch.push(e2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.records()[0].ingested_at, ts1);
        assert_eq!(batch.records()[1].ingested_at, ts2);
        let seqs: Vec<u64> = batch.into_iter().map(|e| e.sequence).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn batch_of_one_and_from_records() {
        let b = Batch::of_one(Envelope::now(7, 42u32));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        let b2: Batch<u32> = Batch::from_records(vec![]);
        assert!(b2.is_empty());
    }

    #[test]
    fn buffer_flushes_at_threshold() {
        let mut buf: BatchBuffer<u32> = BatchBuffer::new(2, 3);
        assert!(buf.push(0, Envelope::now(0, 1)).is_none());
        assert!(buf.push(0, Envelope::now(1, 2)).is_none());
        let full = buf.push(0, Envelope::now(2, 3)).expect("threshold reached");
        assert_eq!(full.len(), 3);
        // the other output is untouched
        assert!(buf.push(1, Envelope::now(3, 9)).is_none());
        assert_eq!(buf.pending(), 1);
        let rest = buf.flush_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].0, 1);
        assert_eq!(rest[0].1.len(), 1);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn buffer_ignores_unknown_outputs_and_clamps_zero_size() {
        let mut buf: BatchBuffer<u32> = BatchBuffer::new(1, 0);
        assert!(buf.push(9, Envelope::now(0, 1)).is_none());
        assert!(buf.flush(9).is_none());
        // batch size 0 behaves like 1
        assert!(buf.push(0, Envelope::now(0, 1)).is_some());
    }

    #[test]
    fn batching_emitter_sends_full_batches_then_flushes() {
        let (tx, rx) = bounded::<Batch<u32>>(8);
        let mut emitter = BatchingEmitter::new(Emitter::new(vec![tx]), 2);
        emitter.emit_to(0, Envelope::now(0, 10));
        assert!(rx.try_recv().is_err());
        emitter.emit_to(0, Envelope::now(1, 11));
        assert_eq!(rx.try_recv().unwrap().len(), 2);
        emitter.emit_to(0, Envelope::now(2, 12));
        assert_eq!(emitter.pending(), 1);
        emitter.flush_all();
        assert_eq!(rx.try_recv().unwrap().len(), 1);
        assert_eq!(emitter.pending(), 0);
    }
}
