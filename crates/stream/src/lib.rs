//! A minimal in-process stream-processing substrate for PS2Stream.
//!
//! The paper deploys PS2Stream on Apache Storm over a 32-node EC2 cluster;
//! this crate is the substitution documented in DESIGN.md: operators are
//! spawned onto a pluggable [`runtime::Runtime`] — either one OS thread per
//! executor connected by bounded channels (backpressure and queueing as in
//! the evaluation) or a cooperative executor multiplexing pollable operator
//! tasks over a fixed core pool, with a seeded deterministic simulation mode
//! for reproducing exact interleavings ([`coop`]). Tuples are wrapped in
//! timestamped [`Envelope`]s for latency accounting, and [`metrics`]
//! collects the throughput, mean latency and latency distributions the
//! figures report. The [`topology`] module detects the machine's NUMA
//! layout and (optionally) pins executor threads so hot state stays
//! node-local.
//!
//! # Example
//!
//! Pick a backend the way `PS2_RUNTIME` does and inspect the machine:
//!
//! ```
//! use ps2stream_stream::{CpuTopology, Placement, Runtime, RuntimeBackend};
//!
//! let backend = RuntimeBackend::parse("coop:2").expect("valid backend spec");
//! assert_eq!(backend.name(), "coop");
//! let runtime = Runtime::new(&backend);
//! assert!(!runtime.is_deterministic());
//! runtime.join();
//!
//! // topology detection never panics; single-node fallback everywhere
//! let topology = CpuTopology::detect();
//! assert!(topology.num_nodes() >= 1 && topology.num_cpus() >= 1);
//! // an unplaced thread reports node 0 — the single-node behaviour
//! assert_eq!(Placement::current_node(), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod channel;
pub mod coop;
pub mod envelope;
pub mod fault;
pub mod metrics;
pub mod operator;
pub mod runtime;
pub mod topology;

pub use batch::{Batch, BatchBuffer, BatchingEmitter};
pub use channel::{bounded, unbounded, QueueDepth, Receiver, Sender, TryRecvError};
pub use coop::{PollTask, TaskPoll};
pub use envelope::Envelope;
pub use fault::{EdgeFault, FaultPlan, FaultRole, FaultSpec};
pub use metrics::{LatencyBreakdown, LatencyRecorder, ThroughputMeter};
pub use operator::{run_operator, Emitter, Operator};
pub use runtime::{CoopConfig, PlacementPolicy, Runtime, RuntimeBackend, TaskHandle};
pub use topology::{CpuSlot, CpuTopology, NodeCpus, Placement};

#[cfg(test)]
mod integration {
    use super::*;
    use std::sync::Arc;

    /// A two-stage pipeline: a splitter fans numbers out to two summers by
    /// parity; joining the runtime must observe every number exactly once.
    struct Splitter;
    impl Operator for Splitter {
        type In = Envelope<u64>;
        type Out = Envelope<u64>;
        fn process(&mut self, input: Envelope<u64>, emitter: &Emitter<Envelope<u64>>) {
            let idx = (input.payload % 2) as usize;
            emitter.emit_to(idx, input);
        }
    }

    struct Summer {
        total: u64,
        latencies: Arc<LatencyRecorder>,
        throughput: Arc<ThroughputMeter>,
        result: Sender<u64>,
    }
    impl Operator for Summer {
        type In = Envelope<u64>;
        type Out = ();
        fn process(&mut self, input: Envelope<u64>, _emitter: &Emitter<()>) {
            self.total += input.payload;
            self.latencies.record(input.latency());
            self.throughput.record(1);
        }
        fn finish(&mut self, _emitter: &Emitter<()>) {
            let _ = self.result.send(self.total);
        }
    }

    #[test]
    fn pipeline_processes_every_tuple_once() {
        let latencies = LatencyRecorder::shared();
        let throughput = ThroughputMeter::new();
        let (src_tx, src_rx) = bounded::<Envelope<u64>>(64);
        let (even_tx, even_rx) = bounded::<Envelope<u64>>(64);
        let (odd_tx, odd_rx) = bounded::<Envelope<u64>>(64);
        let (result_tx, result_rx) = unbounded::<u64>();

        let mut rt = Runtime::threads();
        rt.spawn_service("splitter", move || {
            run_operator(Splitter, src_rx, Emitter::new(vec![even_tx, odd_tx]));
        });
        for (name, rx) in [("even", even_rx), ("odd", odd_rx)] {
            let summer = Summer {
                total: 0,
                latencies: Arc::clone(&latencies),
                throughput: Arc::clone(&throughput),
                result: result_tx.clone(),
            };
            rt.spawn_service(name, move || {
                run_operator(summer, rx, Emitter::sink());
            });
        }
        drop(result_tx);

        let n = 1000u64;
        for i in 0..n {
            src_tx.send(Envelope::now(i, i)).unwrap();
        }
        drop(src_tx);
        rt.join();

        let totals: Vec<u64> = result_rx.iter().collect();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals.iter().sum::<u64>(), n * (n - 1) / 2);
        assert_eq!(latencies.count(), n);
        assert_eq!(throughput.count(), n);
        assert!(throughput.tuples_per_second().unwrap() > 0.0);
    }

    #[test]
    fn bounded_channels_apply_backpressure_without_deadlock() {
        // a slow consumer with a tiny channel: the producer must block but
        // everything still completes
        struct Slow {
            seen: u64,
        }
        impl Operator for Slow {
            type In = Envelope<u64>;
            type Out = ();
            fn process(&mut self, _input: Envelope<u64>, _e: &Emitter<()>) {
                self.seen += 1;
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        let (tx, rx) = bounded::<Envelope<u64>>(2);
        let mut rt = Runtime::threads();
        rt.spawn_service("slow", move || {
            let op = run_operator(Slow { seen: 0 }, rx, Emitter::sink());
            assert_eq!(op.seen, 100);
        });
        for i in 0..100 {
            tx.send(Envelope::now(i, i)).unwrap();
        }
        drop(tx);
        rt.join();
    }
}
