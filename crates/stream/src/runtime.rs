//! The pluggable execution substrate of a topology.
//!
//! PS2Stream's operators (dispatchers, workers, mergers) are written against
//! the [`crate::operator::Operator`] trait and are agnostic to *how* they are
//! executed. [`Runtime`] is the substrate they are spawned onto; it comes in
//! two backends selected by [`RuntimeBackend`]:
//!
//! * **Threads** (`RuntimeBackend::Threads`, the default) — one OS thread per
//!   operator, blocking `recv`, bounded channels with real backpressure. The
//!   in-process analogue of a Storm executor per node.
//! * **Coop** (`RuntimeBackend::Coop`) — operators become pollable tasks
//!   multiplexed over a fixed core pool (see [`crate::coop`]). With
//!   [`CoopConfig::seed`] set, the pool collapses to a single-threaded
//!   **deterministic** scheduler: tasks run only while the driver joins the
//!   runtime, and the interleaving is a pure function of the seed.
//!
//! Channels must be created through [`Runtime::bounded`] /
//! [`Runtime::unbounded`]: the cooperative backends make every channel
//! unbounded (a cooperative task must never block mid-poll), while the
//! thread backend keeps the requested capacity.

use crate::channel::{self, Receiver, Sender};
use crate::coop::{OperatorTask, PollTask, PoolRuntime, SimRuntime};
use crate::operator::{run_operator, Emitter, Operator};
use crate::topology::{CpuSlot, CpuTopology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a runtime places its executor threads on the machine.
///
/// With `pin: false` (the default) nothing changes: threads float and the
/// scheduler does what it wants. With `pin: true`, the runtime derives a
/// placement plan from `topology` — pool scheduler threads (cooperative
/// backend) or per-operator threads (thread backend) are pinned to
/// consecutive CPUs, filling NUMA node by NUMA node, and each pinned thread
/// records its node in [`crate::topology::Placement`] so node-local
/// structures (e.g. the partition crate's socket-sharded term registry)
/// resolve through local state first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPolicy {
    /// Pin executor threads to cores (best-effort `sched_setaffinity`).
    pub pin: bool,
    /// The machine layout the plan is derived from.
    pub topology: CpuTopology,
}

impl PlacementPolicy {
    /// No pinning. Uses a trivial single-node topology instead of running
    /// detection — an unpinned runtime never consults it, and this is the
    /// path every `Runtime::new` takes.
    pub fn disabled() -> Self {
        Self {
            pin: false,
            topology: CpuTopology::single_node(1),
        }
    }

    /// Pin executor threads according to the detected machine topology.
    pub fn pinned() -> Self {
        Self {
            pin: true,
            topology: CpuTopology::detect(),
        }
    }

    /// Pin executor threads according to an explicit topology (tests,
    /// synthetic layouts).
    pub fn pinned_on(topology: CpuTopology) -> Self {
        Self {
            pin: true,
            topology,
        }
    }
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Shared round-robin placement plan for incrementally spawned threads (the
/// thread backend's operators).
#[derive(Debug)]
struct PlacementPlan {
    topology: CpuTopology,
    next: AtomicUsize,
}

impl PlacementPlan {
    fn next_slot(&self) -> CpuSlot {
        self.topology
            .slot(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Configuration of the cooperative executor backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoopConfig {
    /// Number of scheduler threads in the core pool; `0` = one per available
    /// core. Ignored in deterministic mode (always single-threaded).
    pub pool_threads: usize,
    /// Messages an operator task may process per poll before yielding the
    /// scheduler thread (the send/recv yielding granularity).
    pub poll_budget: usize,
    /// When set, run in deterministic single-threaded simulation mode: the
    /// scheduler picks the next task pseudo-randomly from this seed and only
    /// runs while the driving thread joins the runtime.
    pub seed: Option<u64>,
}

impl Default for CoopConfig {
    fn default() -> Self {
        Self {
            pool_threads: 0,
            poll_budget: 32,
            seed: None,
        }
    }
}

/// Which execution substrate a topology runs on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RuntimeBackend {
    /// One OS thread per operator (the default).
    #[default]
    Threads,
    /// Cooperative tasks over a core pool, or the deterministic simulator
    /// when [`CoopConfig::seed`] is set.
    Coop(CoopConfig),
}

impl RuntimeBackend {
    /// The cooperative pool backend with default settings.
    pub fn coop() -> Self {
        Self::Coop(CoopConfig::default())
    }

    /// The deterministic single-threaded simulation backend: a full run is a
    /// pure function of the workload and this seed. Poll budget 1 maximizes
    /// the interleavings the seed space can express.
    pub fn deterministic(seed: u64) -> Self {
        Self::Coop(CoopConfig {
            pool_threads: 1,
            poll_budget: 1,
            seed: Some(seed),
        })
    }

    /// True when this backend is the deterministic simulator.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Self::Coop(c) if c.seed.is_some())
    }

    /// Short name used in reports: `threads`, `coop` or `sim`.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Threads => "threads",
            Self::Coop(c) if c.seed.is_some() => "sim",
            Self::Coop(_) => "coop",
        }
    }

    /// Parses a backend spec: `threads`, `coop`, `coop:<pool-threads>`,
    /// `sim` (seed 0) or `sim:<seed>`. Returns `None` for anything else.
    pub fn parse(spec: &str) -> Option<Self> {
        match spec {
            "threads" => Some(Self::Threads),
            "coop" => Some(Self::coop()),
            "sim" => Some(Self::deterministic(0)),
            other => {
                if let Some(threads) = other.strip_prefix("coop:") {
                    let pool_threads = threads.parse().ok()?;
                    Some(Self::Coop(CoopConfig {
                        pool_threads,
                        ..CoopConfig::default()
                    }))
                } else if let Some(seed) = other.strip_prefix("sim:") {
                    Some(Self::deterministic(seed.parse().ok()?))
                } else {
                    None
                }
            }
        }
    }

    /// Reads the backend from the `PS2_RUNTIME` environment variable (same
    /// syntax as [`RuntimeBackend::parse`]); `None` when unset.
    ///
    /// # Panics
    /// Panics on a malformed value — a typo must not silently run the
    /// default backend.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("PS2_RUNTIME").ok()?;
        Some(Self::parse(&spec).unwrap_or_else(|| {
            panic!("PS2_RUNTIME={spec:?}: expected threads|coop|coop:<threads>|sim|sim:<seed>")
        }))
    }
}

/// Identifies a spawned executor within its [`Runtime`] (opaque; pass back
/// to [`Runtime::join_tasks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskHandle(Handle);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Handle {
    /// Index into the runtime's OS-thread handles (thread backend operators
    /// and service threads of the pool backend).
    Thread(usize),
    /// Task id inside the cooperative scheduler.
    Coop(usize),
}

enum Inner {
    Threads,
    Pool(PoolRuntime),
    Sim(SimRuntime),
}

/// Owns the executors of a running topology, whatever substrate they run on.
pub struct Runtime {
    inner: Inner,
    /// Messages a cooperative operator task may process per poll.
    poll_budget: usize,
    /// Round-robin pin plan for incrementally spawned operator threads
    /// (thread backend with pinning enabled; `None` = floating threads).
    plan: Option<Arc<PlacementPlan>>,
    /// OS threads: every executor on the thread backend, service threads
    /// (e.g. the adjustment controller) on the pool backend.
    threads: Vec<Option<(String, JoinHandle<()>)>>,
}

impl Runtime {
    /// Creates a runtime for the given backend with floating (unpinned)
    /// threads.
    pub fn new(backend: &RuntimeBackend) -> Self {
        Self::with_placement(backend, PlacementPolicy::disabled())
    }

    /// Creates a runtime for the given backend under an explicit
    /// [`PlacementPolicy`].
    ///
    /// With pinning enabled, the cooperative pool spawns one scheduler
    /// thread per online CPU by default (instead of `available_parallelism`)
    /// and pins thread `i` to the topology's `i`-th CPU slot; the thread
    /// backend pins each operator thread to the next slot round-robin as it
    /// is spawned. The deterministic simulator ignores placement entirely —
    /// it is single-threaded by construction.
    pub fn with_placement(backend: &RuntimeBackend, placement: PlacementPolicy) -> Self {
        let inner = match backend {
            RuntimeBackend::Threads => Inner::Threads,
            RuntimeBackend::Coop(config) => match config.seed {
                Some(seed) => Inner::Sim(SimRuntime::new(seed)),
                None => {
                    let pool = if config.pool_threads != 0 {
                        config.pool_threads
                    } else if placement.pin {
                        placement.topology.num_cpus()
                    } else {
                        std::thread::available_parallelism()
                            .map(|p| p.get())
                            .unwrap_or(4)
                    };
                    let plan = placement
                        .pin
                        .then(|| (0..pool).map(|i| placement.topology.slot(i)).collect());
                    Inner::Pool(PoolRuntime::with_placement(pool, plan))
                }
            },
        };
        let poll_budget = match backend {
            RuntimeBackend::Threads => 1,
            RuntimeBackend::Coop(c) => c.poll_budget.max(1),
        };
        let plan = (placement.pin && matches!(inner, Inner::Threads)).then(|| {
            Arc::new(PlacementPlan {
                topology: placement.topology,
                next: AtomicUsize::new(0),
            })
        });
        Self {
            inner,
            poll_budget,
            plan,
            threads: Vec::new(),
        }
    }

    /// A runtime on the OS-thread backend (the historical default).
    pub fn threads() -> Self {
        Self::new(&RuntimeBackend::Threads)
    }

    /// True when this runtime pins its executor threads to cores.
    pub fn is_pinned(&self) -> bool {
        self.plan.is_some() || matches!(&self.inner, Inner::Pool(pool) if pool.is_pinned())
    }

    /// True when this runtime is the deterministic simulator: executors make
    /// progress only inside [`Runtime::join_tasks`] / [`Runtime::join`].
    pub fn is_deterministic(&self) -> bool {
        matches!(self.inner, Inner::Sim(_))
    }

    /// Limits the deterministic simulator to `polls` further task polls:
    /// [`Runtime::join_tasks`] then stops mid-schedule once the budget is
    /// spent, leaving every task (and its queued messages) in place. The
    /// poll count is a pure function of (workload, seed), which makes this
    /// the crash-injection hook of the recovery tests — "crash after N
    /// polls" names one reproducible instant of the run. `None` removes the
    /// limit. Returns false (and does nothing) on non-sim backends.
    pub fn set_sim_fuel(&mut self, polls: Option<u64>) -> bool {
        match &mut self.inner {
            Inner::Sim(sim) => {
                sim.set_fuel(polls);
                true
            }
            _ => false,
        }
    }

    /// Remaining sim poll budget (`None` = unlimited or not the sim
    /// backend).
    pub fn sim_fuel_remaining(&self) -> Option<u64> {
        match &self.inner {
            Inner::Sim(sim) => sim.fuel_remaining(),
            _ => None,
        }
    }

    /// Creates a channel with the backend's capacity semantics: the thread
    /// backend honours `capacity` (blocking backpressure), the cooperative
    /// backends return an unbounded channel because a task must never block
    /// inside a poll.
    pub fn bounded<T: Send + 'static>(&self, capacity: usize) -> (Sender<T>, Receiver<T>) {
        match self.inner {
            Inner::Threads => channel::bounded(capacity),
            Inner::Pool(_) | Inner::Sim(_) => channel::unbounded(),
        }
    }

    /// Creates an unbounded channel on any backend.
    pub fn unbounded<T: Send + 'static>(&self) -> (Sender<T>, Receiver<T>) {
        channel::unbounded()
    }

    /// Spawns an operator onto the substrate: a dedicated OS thread on the
    /// thread backend, a pollable task on the cooperative backends (waking on
    /// its input channel).
    pub fn spawn_operator<O: Operator>(
        &mut self,
        name: impl Into<String>,
        operator: O,
        input: Receiver<O::In>,
        emitter: Emitter<O::Out>,
    ) -> TaskHandle {
        let name = name.into();
        let poll_budget = self.poll_budget;
        match &mut self.inner {
            Inner::Threads => {
                let slot = self.plan.as_ref().map(|plan| plan.next_slot());
                let handle = std::thread::Builder::new()
                    .name(name.clone())
                    .spawn(move || {
                        if let Some(slot) = slot {
                            slot.apply();
                        }
                        run_operator(operator, input, emitter);
                    })
                    .expect("failed to spawn executor thread");
                self.threads.push(Some((name, handle)));
                TaskHandle(Handle::Thread(self.threads.len() - 1))
            }
            Inner::Pool(pool) => {
                let hooks = input.notify_slot();
                let task = OperatorTask::new(operator, input, emitter, poll_budget);
                let id = pool.spawn(name, Box::new(task), &[hooks]);
                TaskHandle(Handle::Coop(id))
            }
            Inner::Sim(sim) => {
                let task = OperatorTask::new(operator, input, emitter, poll_budget);
                TaskHandle(Handle::Coop(sim.spawn(Box::new(task))))
            }
        }
    }

    /// Spawns a custom pollable task (e.g. the adjustment controller's
    /// simulation state machine) onto a cooperative backend. On the pool
    /// backend the task is re-polled only when `wake_on` channels receive
    /// traffic, so pass every channel it consumes.
    ///
    /// # Panics
    /// Panics on the thread backend — blocking executors belong in
    /// [`Runtime::spawn_service`].
    pub fn spawn_task(
        &mut self,
        name: impl Into<String>,
        task: Box<dyn PollTask>,
        wake_on: &[&Receiver<impl Send + 'static>],
    ) -> TaskHandle {
        match &mut self.inner {
            Inner::Threads => {
                panic!("spawn_task is only available on the cooperative backends")
            }
            Inner::Pool(pool) => {
                let hooks: Vec<_> = wake_on.iter().map(|rx| rx.notify_slot()).collect();
                TaskHandle(Handle::Coop(pool.spawn(name.into(), task, &hooks)))
            }
            Inner::Sim(sim) => TaskHandle(Handle::Coop(sim.spawn(task))),
        }
    }

    /// Spawns a blocking service loop on its own OS thread (thread and pool
    /// backends). The deterministic simulator forbids hidden threads — model
    /// the service as a [`PollTask`] and use [`Runtime::spawn_task`] there.
    ///
    /// # Panics
    /// Panics on the deterministic backend.
    pub fn spawn_service<F>(&mut self, name: impl Into<String>, f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'static,
    {
        assert!(
            !self.is_deterministic(),
            "service threads would break determinism; spawn a PollTask instead"
        );
        let name = name.into();
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(f)
            .expect("failed to spawn service thread");
        self.threads.push(Some((name, handle)));
        TaskHandle(Handle::Thread(self.threads.len() - 1))
    }

    /// Number of executors spawned so far (operators + services + tasks).
    pub fn num_executors(&self) -> usize {
        let coop = match &self.inner {
            Inner::Threads => 0,
            Inner::Pool(pool) => pool.num_tasks(),
            Inner::Sim(sim) => sim.num_tasks(),
        };
        coop + self.threads.len()
    }

    /// Waits until every listed executor has terminated. On the deterministic
    /// backend this *runs* the seeded schedule (all alive tasks participate)
    /// until the targets finish.
    ///
    /// # Panics
    /// Panics with the executor's name if it panicked.
    pub fn join_tasks(&mut self, handles: &[TaskHandle]) {
        if let Err(name) = self.try_join_tasks(handles) {
            panic!("executor '{name}' panicked");
        }
    }

    /// [`Runtime::join_tasks`] with panic *capture* instead of propagation:
    /// an executor panic is returned as `Err(executor name)` so a supervisor
    /// can record the failure and keep shutting the pipeline down instead of
    /// aborting the process. On `Err`, every listed handle has still been
    /// joined (or the backend has stopped scheduling).
    pub fn try_join_tasks(&mut self, handles: &[TaskHandle]) -> Result<(), String> {
        let mut coop_ids = Vec::new();
        let mut failed: Option<String> = None;
        for handle in handles {
            match handle.0 {
                Handle::Coop(id) => coop_ids.push(id),
                Handle::Thread(index) => {
                    if let Some((name, join)) = self.threads[index].take() {
                        if join.join().is_err() && failed.is_none() {
                            failed = Some(name);
                        }
                    }
                }
            }
        }
        if !coop_ids.is_empty() {
            match &mut self.inner {
                Inner::Threads => unreachable!("coop handle on the thread backend"),
                Inner::Pool(pool) => {
                    if let (Err(name), None) = (pool.try_join(&coop_ids), &failed) {
                        failed = Some(name);
                    }
                }
                Inner::Sim(sim) => {
                    // a sim task panic unwinds on this (driving) thread;
                    // capture it so the supervisor sees it like a pool panic
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sim.run_until(&coop_ids)
                    }));
                    if caught.is_err() && failed.is_none() {
                        failed = Some("sim task".to_string());
                    }
                }
            }
        }
        match failed {
            Some(name) => Err(name),
            None => Ok(()),
        }
    }

    /// Wedges a deterministic-sim task for a window of scheduling steps
    /// (see the fault-injection layer): when the seeded scheduler picks the
    /// task inside `[after_steps, after_steps + for_steps)` it is skipped
    /// instead of polled, so its mailbox piles up and drains afterwards.
    /// Returns false (and does nothing) on non-sim backends.
    pub fn sim_stall(&mut self, handle: TaskHandle, after_steps: u64, for_steps: u64) -> bool {
        match (&mut self.inner, handle.0) {
            (Inner::Sim(sim), Handle::Coop(id)) => {
                sim.stall_task(id, after_steps, for_steps);
                true
            }
            _ => false,
        }
    }

    /// Waits for every executor spawned on this runtime.
    pub fn join(mut self) {
        let handles: Vec<TaskHandle> = (0..self.threads.len())
            .map(|i| TaskHandle(Handle::Thread(i)))
            .collect();
        let coop: Vec<TaskHandle> = match &self.inner {
            Inner::Threads => Vec::new(),
            Inner::Pool(pool) => (0..pool.num_tasks())
                .map(|i| TaskHandle(Handle::Coop(i)))
                .collect(),
            Inner::Sim(sim) => (0..sim.num_tasks())
                .map(|i| TaskHandle(Handle::Coop(i)))
                .collect(),
        };
        self.join_tasks(&coop);
        self.join_tasks(&handles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn spawn_and_join_runs_all_service_threads() {
        let counter = Arc::new(AtomicU32::new(0));
        let mut rt = Runtime::threads();
        for i in 0..4 {
            let counter = Arc::clone(&counter);
            rt.spawn_service(format!("exec-{i}"), move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(rt.num_executors(), 4);
        rt.join();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "executor 'boom' panicked")]
    fn join_propagates_panics() {
        let mut rt = Runtime::threads();
        rt.spawn_service("boom", || panic!("kaboom"));
        rt.join();
    }

    #[test]
    fn backend_parsing_round_trips() {
        assert_eq!(
            RuntimeBackend::parse("threads"),
            Some(RuntimeBackend::Threads)
        );
        assert_eq!(RuntimeBackend::parse("coop"), Some(RuntimeBackend::coop()));
        assert_eq!(
            RuntimeBackend::parse("coop:3"),
            Some(RuntimeBackend::Coop(CoopConfig {
                pool_threads: 3,
                ..CoopConfig::default()
            }))
        );
        assert_eq!(
            RuntimeBackend::parse("sim:42"),
            Some(RuntimeBackend::deterministic(42))
        );
        assert!(RuntimeBackend::parse("tokio").is_none());
        assert!(RuntimeBackend::deterministic(1).is_deterministic());
        assert!(!RuntimeBackend::coop().is_deterministic());
        assert_eq!(RuntimeBackend::Threads.name(), "threads");
        assert_eq!(RuntimeBackend::coop().name(), "coop");
        assert_eq!(RuntimeBackend::deterministic(9).name(), "sim");
    }

    /// The same operator pipeline produces the same results on all three
    /// substrates.
    mod cross_backend {
        use super::*;
        use crate::envelope::Envelope;

        struct Doubler {
            out: Option<crate::channel::Sender<u64>>,
        }
        impl Operator for Doubler {
            type In = Envelope<u64>;
            type Out = ();
            fn process(&mut self, input: Envelope<u64>, _e: &Emitter<()>) {
                if let Some(out) = &self.out {
                    let _ = out.send(input.payload * 2);
                }
            }
            fn finish(&mut self, _e: &Emitter<()>) {
                self.out = None;
            }
        }

        fn run(backend: &RuntimeBackend) -> Vec<u64> {
            let mut rt = Runtime::new(backend);
            let (in_tx, in_rx) = rt.bounded::<Envelope<u64>>(64);
            let (out_tx, out_rx) = rt.unbounded::<u64>();
            let h = rt.spawn_operator(
                "doubler",
                Doubler { out: Some(out_tx) },
                in_rx,
                Emitter::sink(),
            );
            for i in 0..200u64 {
                in_tx.send(Envelope::now(i, i)).unwrap();
            }
            drop(in_tx);
            rt.join_tasks(&[h]);
            let mut got: Vec<u64> = out_rx.try_iter().collect();
            got.sort_unstable();
            got
        }

        #[test]
        fn all_backends_agree() {
            let expected: Vec<u64> = (0..200u64).map(|i| i * 2).collect();
            assert_eq!(run(&RuntimeBackend::Threads), expected);
            assert_eq!(run(&RuntimeBackend::coop()), expected);
            assert_eq!(run(&RuntimeBackend::deterministic(3)), expected);
        }

        fn run_pinned(backend: &RuntimeBackend) -> Vec<u64> {
            let mut rt = Runtime::with_placement(backend, PlacementPolicy::pinned());
            assert!(rt.is_pinned() || backend.is_deterministic());
            let (in_tx, in_rx) = rt.bounded::<Envelope<u64>>(64);
            let (out_tx, out_rx) = rt.unbounded::<u64>();
            let h = rt.spawn_operator(
                "doubler",
                Doubler { out: Some(out_tx) },
                in_rx,
                Emitter::sink(),
            );
            for i in 0..200u64 {
                in_tx.send(Envelope::now(i, i)).unwrap();
            }
            drop(in_tx);
            rt.join_tasks(&[h]);
            let mut got: Vec<u64> = out_rx.try_iter().collect();
            got.sort_unstable();
            got
        }

        /// Core pinning is a placement optimization, never a semantic
        /// change: placed runtimes deliver the same results.
        #[test]
        fn pinned_backends_agree_with_floating_ones() {
            let expected: Vec<u64> = (0..200u64).map(|i| i * 2).collect();
            assert_eq!(run_pinned(&RuntimeBackend::Threads), expected);
            assert_eq!(run_pinned(&RuntimeBackend::coop()), expected);
            // the simulator ignores placement (single-threaded by design)
            let sim = Runtime::with_placement(
                &RuntimeBackend::deterministic(3),
                PlacementPolicy::pinned(),
            );
            assert!(!sim.is_pinned());
        }
    }
}
