//! Thread management for topologies.
//!
//! Every executor (dispatcher, worker, merger) runs on its own OS thread —
//! the in-process analogue of a Storm executor on a cluster node. The
//! [`Runtime`] owns the join handles and propagates panics when joined, so a
//! failing executor cannot silently vanish.

use std::thread::{self, JoinHandle};

/// Owns the threads of a running topology.
#[derive(Debug, Default)]
pub struct Runtime {
    handles: Vec<(String, JoinHandle<()>)>,
}

impl Runtime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a named executor thread.
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let name = name.into();
        let handle = thread::Builder::new()
            .name(name.clone())
            .spawn(f)
            .expect("failed to spawn executor thread");
        self.handles.push((name, handle));
    }

    /// Number of executor threads spawned.
    pub fn num_executors(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every executor to terminate.
    ///
    /// # Panics
    /// Panics with the executor's name if any executor thread panicked.
    pub fn join(self) {
        for (name, handle) in self.handles {
            if handle.join().is_err() {
                panic!("executor '{name}' panicked");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn spawn_and_join_runs_all_executors() {
        let counter = Arc::new(AtomicU32::new(0));
        let mut rt = Runtime::new();
        for i in 0..4 {
            let counter = Arc::clone(&counter);
            rt.spawn(format!("exec-{i}"), move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(rt.num_executors(), 4);
        rt.join();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "executor 'boom' panicked")]
    fn join_propagates_panics() {
        let mut rt = Runtime::new();
        rt.spawn("boom", || panic!("kaboom"));
        rt.join();
    }
}
