//! R-tree with Sort-Tile-Recursive (STR) bulk loading.
//!
//! The R-tree space-partitioning baseline (Figure 6(c)(d), following
//! SpatialHadoop) builds an R-tree over a sample of the workload and assigns
//! its leaf nodes to workers. The tree also supports rectangle-overlap
//! queries, which the integration tests use as a matching oracle.

use crate::point::Point;
use crate::rect::Rect;

/// An entry stored in the R-tree: a rectangle plus an opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RTreeEntry<T> {
    /// Bounding rectangle of the entry.
    pub rect: Rect,
    /// User payload.
    pub data: T,
}

impl<T> RTreeEntry<T> {
    /// Creates a new entry.
    pub fn new(rect: Rect, data: T) -> Self {
        Self { rect, data }
    }
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf {
        rect: Rect,
        entries: Vec<RTreeEntry<T>>,
    },
    Internal {
        rect: Rect,
        children: Vec<Node<T>>,
    },
}

impl<T> Node<T> {
    fn rect(&self) -> Rect {
        match self {
            Node::Leaf { rect, .. } | Node::Internal { rect, .. } => *rect,
        }
    }
}

/// Summary of one R-tree leaf node: its bounding rectangle and how many
/// entries it holds. Space partitioners consume these summaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafSummary {
    /// Minimum bounding rectangle of the leaf.
    pub rect: Rect,
    /// Number of entries stored in the leaf.
    pub len: usize,
}

/// A static R-tree built with STR bulk loading.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    node_capacity: usize,
    len: usize,
}

impl<T: Clone> RTree<T> {
    /// Default maximum number of entries per node.
    pub const DEFAULT_NODE_CAPACITY: usize = 16;

    /// Bulk-loads an R-tree from entries using the Sort-Tile-Recursive
    /// algorithm with the given node capacity.
    ///
    /// # Panics
    /// Panics if `node_capacity < 2`.
    pub fn bulk_load_with_capacity(mut entries: Vec<RTreeEntry<T>>, node_capacity: usize) -> Self {
        assert!(node_capacity >= 2, "RTree node capacity must be at least 2");
        let len = entries.len();
        if entries.is_empty() {
            return Self {
                root: None,
                node_capacity,
                len: 0,
            };
        }
        let leaves = str_pack_leaves(&mut entries, node_capacity);
        let root = build_upwards(leaves, node_capacity);
        Self {
            root: Some(root),
            node_capacity,
            len,
        }
    }

    /// Bulk-loads with [`RTree::DEFAULT_NODE_CAPACITY`].
    pub fn bulk_load(entries: Vec<RTreeEntry<T>>) -> Self {
        Self::bulk_load_with_capacity(entries, Self::DEFAULT_NODE_CAPACITY)
    }

    /// Number of entries stored in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of entries per node.
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// Minimum bounding rectangle of the whole tree ([`Rect::empty`] if the
    /// tree is empty).
    pub fn bounds(&self) -> Rect {
        self.root.as_ref().map_or_else(Rect::empty, Node::rect)
    }

    /// All entries whose rectangle intersects `query`.
    pub fn query_rect(&self, query: &Rect) -> Vec<&RTreeEntry<T>> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            search(root, query, &mut out);
        }
        out
    }

    /// All entries whose rectangle contains the point.
    pub fn query_point(&self, point: &Point) -> Vec<&RTreeEntry<T>> {
        self.query_rect(&Rect::from_point(*point))
    }

    /// Summaries of all leaf nodes (rectangle + entry count), in packing
    /// order. This is what the R-tree space partitioner distributes across
    /// workers.
    pub fn leaf_summaries(&self) -> Vec<LeafSummary> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            collect_leaves(root, &mut out);
        }
        out
    }
}

/// Packs entries into leaf nodes using Sort-Tile-Recursive.
fn str_pack_leaves<T: Clone>(entries: &mut [RTreeEntry<T>], node_capacity: usize) -> Vec<Node<T>> {
    let n = entries.len();
    let leaf_count = n.div_ceil(node_capacity);
    let num_slices = (leaf_count as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(num_slices);

    entries.sort_by(|a, b| {
        a.rect
            .center()
            .x
            .partial_cmp(&b.rect.center().x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut leaves = Vec::with_capacity(leaf_count);
    for slice in entries.chunks_mut(slice_size.max(1)) {
        slice.sort_by(|a, b| {
            a.rect
                .center()
                .y
                .partial_cmp(&b.rect.center().y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for chunk in slice.chunks(node_capacity) {
            let rect = chunk
                .iter()
                .fold(Rect::empty(), |acc, e| acc.union(&e.rect));
            leaves.push(Node::Leaf {
                rect,
                entries: chunk.to_vec(),
            });
        }
    }
    leaves
}

/// Packs a level of nodes into parent nodes until a single root remains.
fn build_upwards<T>(mut level: Vec<Node<T>>, node_capacity: usize) -> Node<T> {
    while level.len() > 1 {
        level.sort_by(|a, b| {
            a.rect()
                .center()
                .x
                .partial_cmp(&b.rect().center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut next = Vec::with_capacity(level.len().div_ceil(node_capacity));
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let children: Vec<Node<T>> = iter.by_ref().take(node_capacity).collect();
            let rect = children
                .iter()
                .fold(Rect::empty(), |acc, c| acc.union(&c.rect()));
            next.push(Node::Internal { rect, children });
        }
        level = next;
    }
    level
        .into_iter()
        .next()
        .expect("build_upwards requires at least one node")
}

fn search<'a, T>(node: &'a Node<T>, query: &Rect, out: &mut Vec<&'a RTreeEntry<T>>) {
    match node {
        Node::Leaf { rect, entries } => {
            if !rect.intersects(query) {
                return;
            }
            for e in entries {
                if e.rect.intersects(query) {
                    out.push(e);
                }
            }
        }
        Node::Internal { rect, children } => {
            if !rect.intersects(query) {
                return;
            }
            for c in children {
                search(c, query, out);
            }
        }
    }
}

fn collect_leaves<T>(node: &Node<T>, out: &mut Vec<LeafSummary>) {
    match node {
        Node::Leaf { rect, entries } => out.push(LeafSummary {
            rect: *rect,
            len: entries.len(),
        }),
        Node::Internal { children, .. } => {
            for c in children {
                collect_leaves(c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_entries(n: usize) -> Vec<RTreeEntry<usize>> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let x = (i % side) as f64;
                let y = (i / side) as f64;
                RTreeEntry::new(Rect::from_coords(x, y, x + 0.5, y + 0.5), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.bounds().is_empty());
        assert!(tree
            .query_rect(&Rect::from_coords(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(tree.leaf_summaries().is_empty());
    }

    #[test]
    fn bulk_load_preserves_all_entries() {
        let entries = grid_entries(137);
        let tree = RTree::bulk_load(entries.clone());
        assert_eq!(tree.len(), 137);
        let everything = tree.query_rect(&tree.bounds());
        assert_eq!(everything.len(), 137);
        let mut ids: Vec<usize> = everything.iter().map(|e| e.data).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..137).collect::<Vec<_>>());
    }

    #[test]
    fn query_matches_brute_force() {
        let entries = grid_entries(200);
        let tree = RTree::bulk_load(entries.clone());
        let queries = [
            Rect::from_coords(0.0, 0.0, 3.0, 3.0),
            Rect::from_coords(5.2, 5.2, 9.9, 6.1),
            Rect::from_coords(100.0, 100.0, 101.0, 101.0),
            Rect::from_coords(-1.0, -1.0, 0.2, 0.2),
        ];
        for q in &queries {
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|e| e.rect.intersects(q))
                .map(|e| e.data)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<usize> = tree.query_rect(q).iter().map(|e| e.data).collect();
            got.sort_unstable();
            assert_eq!(got, expected, "query {q:?}");
        }
    }

    #[test]
    fn query_point_is_rect_containment() {
        let entries = vec![
            RTreeEntry::new(Rect::from_coords(0.0, 0.0, 2.0, 2.0), 'a'),
            RTreeEntry::new(Rect::from_coords(1.0, 1.0, 3.0, 3.0), 'b'),
            RTreeEntry::new(Rect::from_coords(10.0, 10.0, 11.0, 11.0), 'c'),
        ];
        let tree = RTree::bulk_load(entries);
        let mut got: Vec<char> = tree
            .query_point(&Point::new(1.5, 1.5))
            .iter()
            .map(|e| e.data)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec!['a', 'b']);
    }

    #[test]
    fn leaf_nodes_respect_capacity_and_cover_entries() {
        let entries = grid_entries(100);
        let tree = RTree::bulk_load_with_capacity(entries.clone(), 8);
        let leaves = tree.leaf_summaries();
        let total: usize = leaves.iter().map(|l| l.len).sum();
        assert_eq!(total, 100);
        for leaf in &leaves {
            assert!(leaf.len <= 8);
            assert!(leaf.len >= 1);
        }
        assert!(leaves.len() >= 100usize.div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_capacity_panics() {
        let _ = RTree::bulk_load_with_capacity(grid_entries(4), 1);
    }

    #[test]
    fn bounds_cover_all_entries() {
        let entries = grid_entries(50);
        let tree = RTree::bulk_load(entries.clone());
        for e in &entries {
            assert!(tree.bounds().contains_rect(&e.rect));
        }
    }
}
