//! Uniform spatial grid.
//!
//! Several PS2Stream components are built on a uniform grid over the data
//! space: the worker-side GI² index, the dispatcher-side gridt index and the
//! grid space-partitioning baseline all divide the space into `nx × ny`
//! equally-sized cells. [`UniformGrid`] provides the shared cell geometry and
//! point/rectangle → cell mapping.

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Identifier of a grid cell: `(column, row)` with the origin in the
/// lower-left corner of the grid's bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Column index (x direction), `0 .. nx`.
    pub col: u32,
    /// Row index (y direction), `0 .. ny`.
    pub row: u32,
}

impl CellId {
    /// Creates a new cell identifier.
    #[inline]
    pub const fn new(col: u32, row: u32) -> Self {
        Self { col, row }
    }
}

/// A uniform grid dividing a bounding rectangle into `nx × ny` cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    bounds: Rect,
    nx: u32,
    ny: u32,
    cell_w: f64,
    cell_h: f64,
}

impl UniformGrid {
    /// Creates a grid over `bounds` with `nx` columns and `ny` rows.
    ///
    /// # Panics
    /// Panics if `nx` or `ny` is zero or if `bounds` is empty.
    pub fn new(bounds: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "UniformGrid requires nx > 0 and ny > 0");
        assert!(
            !bounds.is_empty(),
            "UniformGrid requires a non-empty bounding rectangle"
        );
        Self {
            bounds,
            nx,
            ny,
            cell_w: bounds.width() / nx as f64,
            cell_h: bounds.height() / ny as f64,
        }
    }

    /// Convenience constructor for the paper's `2^k × 2^k` granularity
    /// (the evaluation uses `2^6 × 2^6`).
    pub fn with_power_of_two(bounds: Rect, k: u32) -> Self {
        let n = 1u32 << k;
        Self::new(bounds, n, n)
    }

    /// The grid's bounding rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Maps a cell id to a dense index in `0 .. num_cells()` (row-major).
    #[inline]
    pub fn cell_index(&self, cell: CellId) -> usize {
        cell.row as usize * self.nx as usize + cell.col as usize
    }

    /// Inverse of [`UniformGrid::cell_index`].
    #[inline]
    pub fn cell_from_index(&self, index: usize) -> CellId {
        let row = (index / self.nx as usize) as u32;
        let col = (index % self.nx as usize) as u32;
        CellId::new(col, row)
    }

    /// The cell containing `p`, or `None` if the point lies outside the grid.
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        if !self.bounds.contains_point(p) {
            return None;
        }
        Some(self.cell_of_clamped(p))
    }

    /// The cell containing `p`, clamping points outside the grid to the
    /// nearest boundary cell. Useful when minor floating point drift places a
    /// point marginally outside the configured bounds.
    pub fn cell_of_clamped(&self, p: &Point) -> CellId {
        let col = ((p.x - self.bounds.min.x) / self.cell_w).floor();
        let row = ((p.y - self.bounds.min.y) / self.cell_h).floor();
        let col = (col.max(0.0) as u32).min(self.nx - 1);
        let row = (row.max(0.0) as u32).min(self.ny - 1);
        CellId::new(col, row)
    }

    /// The rectangle covered by a cell.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let x0 = self.bounds.min.x + cell.col as f64 * self.cell_w;
        let y0 = self.bounds.min.y + cell.row as f64 * self.cell_h;
        Rect::from_coords(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// All cells overlapping the query rectangle (inclusive of touching
    /// boundaries), in row-major order. Returns an empty vector if the
    /// rectangle does not intersect the grid bounds.
    pub fn cells_overlapping(&self, rect: &Rect) -> Vec<CellId> {
        let Some(clipped) = self.bounds.intersection(rect) else {
            return Vec::new();
        };
        let lo = self.cell_of_clamped(&clipped.min);
        let hi = self.cell_of_clamped(&clipped.max);
        let mut out = Vec::with_capacity(((hi.col - lo.col + 1) * (hi.row - lo.row + 1)) as usize);
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                out.push(CellId::new(col, row));
            }
        }
        out
    }

    /// Iterates over every cell id in row-major order.
    pub fn all_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.ny).flat_map(move |row| (0..self.nx).map(move |col| CellId::new(col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> UniformGrid {
        UniformGrid::new(Rect::from_coords(0.0, 0.0, 4.0, 4.0), 4, 4)
    }

    #[test]
    fn construction_and_counts() {
        let g = grid4();
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.nx(), 4);
        assert_eq!(g.ny(), 4);
        assert_eq!(g.bounds(), Rect::from_coords(0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "nx > 0")]
    fn zero_columns_panics() {
        let _ = UniformGrid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 0, 4);
    }

    #[test]
    fn power_of_two_constructor() {
        let g = UniformGrid::with_power_of_two(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 6);
        assert_eq!(g.nx(), 64);
        assert_eq!(g.ny(), 64);
        assert_eq!(g.num_cells(), 64 * 64);
    }

    #[test]
    fn cell_of_interior_points() {
        let g = grid4();
        assert_eq!(g.cell_of(&Point::new(0.5, 0.5)), Some(CellId::new(0, 0)));
        assert_eq!(g.cell_of(&Point::new(3.5, 0.5)), Some(CellId::new(3, 0)));
        assert_eq!(g.cell_of(&Point::new(0.5, 3.5)), Some(CellId::new(0, 3)));
        assert_eq!(g.cell_of(&Point::new(2.1, 1.9)), Some(CellId::new(2, 1)));
    }

    #[test]
    fn cell_of_boundary_and_outside() {
        let g = grid4();
        // the max corner is clamped into the last cell
        assert_eq!(g.cell_of(&Point::new(4.0, 4.0)), Some(CellId::new(3, 3)));
        assert_eq!(g.cell_of(&Point::new(-0.1, 0.5)), None);
        assert_eq!(g.cell_of(&Point::new(0.5, 4.1)), None);
        assert_eq!(
            g.cell_of_clamped(&Point::new(-5.0, 100.0)),
            CellId::new(0, 3)
        );
    }

    #[test]
    fn cell_rect_tiles_cover_bounds() {
        let g = grid4();
        let mut total_area = 0.0;
        for cell in g.all_cells() {
            let r = g.cell_rect(cell);
            total_area += r.area();
            assert!(g.bounds().contains_rect(&r));
        }
        assert!((total_area - g.bounds().area()).abs() < 1e-9);
    }

    #[test]
    fn cell_index_roundtrip() {
        let g = grid4();
        for (i, cell) in g.all_cells().enumerate() {
            assert_eq!(g.cell_index(cell), i);
            assert_eq!(g.cell_from_index(i), cell);
        }
    }

    #[test]
    fn cells_overlapping_rect() {
        let g = grid4();
        let cells = g.cells_overlapping(&Rect::from_coords(0.5, 0.5, 1.5, 1.5));
        assert_eq!(
            cells,
            vec![
                CellId::new(0, 0),
                CellId::new(1, 0),
                CellId::new(0, 1),
                CellId::new(1, 1)
            ]
        );
        // rectangle entirely outside the grid
        assert!(g
            .cells_overlapping(&Rect::from_coords(10.0, 10.0, 11.0, 11.0))
            .is_empty());
        // rectangle covering the whole grid
        assert_eq!(
            g.cells_overlapping(&Rect::from_coords(-1.0, -1.0, 5.0, 5.0))
                .len(),
            16
        );
    }

    #[test]
    fn point_cell_consistent_with_cell_rect() {
        let g = UniformGrid::new(Rect::from_coords(-10.0, -5.0, 10.0, 5.0), 8, 16);
        let p = Point::new(3.3, -2.7);
        let cell = g.cell_of(&p).unwrap();
        assert!(g.cell_rect(cell).contains_point(&p));
    }
}
