//! Axis-aligned rectangles.
//!
//! An STS query's spatial predicate `q.R` is a rectangle; the dispatcher and
//! worker indexes operate on rectangles and grid cells. [`Rect`] is the
//! shared representation, stored as an inclusive min/max corner pair.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle defined by its lower-left (`min`) and
/// upper-right (`max`) corners. Boundaries are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalizing the corners so
    /// that `min` is component-wise below `max`.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a rectangle from raw coordinates `(x_min, y_min, x_max, y_max)`.
    #[inline]
    pub fn from_coords(x_min: f64, y_min: f64, x_max: f64, y_max: f64) -> Self {
        Self::new(Point::new(x_min, y_min), Point::new(x_max, y_max))
    }

    /// A degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Self { min: p, max: p }
    }

    /// A square centered at `center` with the given side length.
    #[inline]
    pub fn square(center: Point, side: f64) -> Self {
        let h = side.abs() / 2.0;
        Self::from_coords(center.x - h, center.y - h, center.x + h, center.y + h)
    }

    /// The "empty" rectangle: an inverted box that contains nothing and acts
    /// as the identity for [`Rect::union`].
    #[inline]
    pub fn empty() -> Self {
        Self {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns true if this rectangle is the empty (inverted) rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along the x axis (0 for the empty rectangle).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along the y axis (0 for the empty rectangle).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (used as the R-tree margin metric).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Extent (max - min) along dimension `dim` (0 = x, 1 = y).
    #[inline]
    pub fn extent(&self, dim: usize) -> f64 {
        match dim {
            0 => self.width(),
            1 => self.height(),
            _ => panic!("Rect::extent: dimension {dim} out of range (expected 0 or 1)"),
        }
    }

    /// The dimension with the larger extent (ties broken towards x).
    #[inline]
    pub fn longest_dim(&self) -> usize {
        if self.height() > self.width() {
            1
        } else {
            0
        }
    }

    /// Returns true if the point lies inside the rectangle (inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns true if `other` is fully contained in `self` (inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Returns true if the two rectangles overlap (inclusive of touching
    /// edges). The empty rectangle intersects nothing.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The intersection of two rectangles, or `None` if they do not overlap.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// The smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Grows the rectangle to include a point.
    #[inline]
    pub fn expand_to_point(&mut self, p: &Point) {
        if self.is_empty() {
            self.min = *p;
            self.max = *p;
        } else {
            self.min = self.min.min(p);
            self.max = self.max.max(p);
        }
    }

    /// The increase in area required for this rectangle to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Splits the rectangle into two halves at `value` along dimension `dim`.
    ///
    /// The split value is clamped to the rectangle's extent, so both halves
    /// are always valid (possibly degenerate) rectangles.
    pub fn split_at(&self, dim: usize, value: f64) -> (Rect, Rect) {
        let v = match dim {
            0 => value.clamp(self.min.x, self.max.x),
            1 => value.clamp(self.min.y, self.max.y),
            _ => panic!("Rect::split_at: dimension {dim} out of range (expected 0 or 1)"),
        };
        let low = Rect {
            min: self.min,
            max: self.max.with_coord(dim, v),
        };
        let high = Rect {
            min: self.min.with_coord(dim, v),
            max: self.max,
        };
        (low, high)
    }
}

impl Default for Rect {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point::new(2.0, 3.0), Point::new(0.0, 1.0));
        assert_eq!(r.min, Point::new(0.0, 1.0));
        assert_eq!(r.max, Point::new(2.0, 3.0));
    }

    #[test]
    fn geometry_accessors() {
        let r = Rect::from_coords(1.0, 2.0, 4.0, 7.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 5.0);
        assert_eq!(r.area(), 15.0);
        assert_eq!(r.margin(), 8.0);
        assert_eq!(r.center(), Point::new(2.5, 4.5));
        assert_eq!(r.longest_dim(), 1);
        assert_eq!(r.extent(0), 3.0);
        assert_eq!(r.extent(1), 5.0);
    }

    #[test]
    fn empty_rect_properties() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains_point(&Point::origin()));
        assert!(!e.intersects(&unit()));
        assert_eq!(e.union(&unit()), unit());
    }

    #[test]
    fn contains_point_boundaries_inclusive() {
        let r = unit();
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(r.contains_point(&Point::new(1.0, 1.0)));
        assert!(r.contains_point(&Point::new(0.5, 0.5)));
        assert!(!r.contains_point(&Point::new(1.0001, 0.5)));
        assert!(!r.contains_point(&Point::new(0.5, -0.0001)));
    }

    #[test]
    fn contains_rect() {
        let outer = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::from_coords(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::empty()));
    }

    #[test]
    fn intersects_and_intersection() {
        let a = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_coords(1.0, 1.0, 3.0, 3.0);
        let c = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(
            a.intersection(&b),
            Some(Rect::from_coords(1.0, 1.0, 2.0, 2.0))
        );
        assert_eq!(a.intersection(&c), None);
        // touching edges count as intersecting
        let d = Rect::from_coords(2.0, 0.0, 4.0, 2.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::from_coords(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn enlargement() {
        let a = unit();
        let b = Rect::from_coords(0.0, 0.0, 2.0, 1.0);
        assert_eq!(a.enlargement(&b), 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn expand_to_point() {
        let mut r = Rect::empty();
        r.expand_to_point(&Point::new(1.0, 2.0));
        assert_eq!(r, Rect::from_point(Point::new(1.0, 2.0)));
        r.expand_to_point(&Point::new(-1.0, 5.0));
        assert_eq!(r, Rect::from_coords(-1.0, 2.0, 1.0, 5.0));
    }

    #[test]
    fn split_at_partitions_area() {
        let r = Rect::from_coords(0.0, 0.0, 4.0, 2.0);
        let (lo, hi) = r.split_at(0, 1.0);
        assert_eq!(lo, Rect::from_coords(0.0, 0.0, 1.0, 2.0));
        assert_eq!(hi, Rect::from_coords(1.0, 0.0, 4.0, 2.0));
        assert!((lo.area() + hi.area() - r.area()).abs() < 1e-12);
        // out-of-range split value is clamped
        let (lo, hi) = r.split_at(1, 100.0);
        assert_eq!(lo, r);
        assert_eq!(hi.area(), 0.0);
    }

    #[test]
    fn square_constructor() {
        let s = Rect::square(Point::new(1.0, 1.0), 2.0);
        assert_eq!(s, Rect::from_coords(0.0, 0.0, 2.0, 2.0));
        assert_eq!(s.center(), Point::new(1.0, 1.0));
    }
}
