//! Weighted kd-tree spatial decomposition.
//!
//! The kd-tree partitioning baseline (used by Tornado and AQWA, evaluated in
//! Figure 6 of the paper) recursively splits the space at the weighted median
//! of the sample points, so that each leaf receives an approximately equal
//! share of the workload. The hybrid partitioner reuses the same splitting
//! machinery for its spatial phase.

use crate::point::Point;
use crate::rect::Rect;

/// A sample point together with the amount of load it represents
/// (e.g. "1.0 per object observed at this location").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Location of the sample.
    pub point: Point,
    /// Non-negative load weight.
    pub weight: f64,
}

impl WeightedPoint {
    /// Creates a weighted sample point.
    #[inline]
    pub fn new(point: Point, weight: f64) -> Self {
        Self { point, weight }
    }
}

/// How the split dimension is chosen at each level of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitAxis {
    /// Alternate between x and y, starting with x (classic kd-tree).
    #[default]
    Alternate,
    /// Always split the longer side of the node's rectangle.
    LongestExtent,
}

/// A node of the kd-tree decomposition.
#[derive(Debug, Clone)]
pub enum KdNode {
    /// Internal node split along `dim` at `value`.
    Internal {
        /// Bounding rectangle of this subtree.
        rect: Rect,
        /// Split dimension (0 = x, 1 = y).
        dim: usize,
        /// Split coordinate.
        value: f64,
        /// Subtree covering coordinates `< value`.
        low: Box<KdNode>,
        /// Subtree covering coordinates `>= value`.
        high: Box<KdNode>,
    },
    /// Leaf region.
    Leaf {
        /// Rectangle covered by this leaf.
        rect: Rect,
        /// Total sample weight that fell into this leaf.
        weight: f64,
        /// Number of sample points in this leaf.
        count: usize,
    },
}

impl KdNode {
    /// The rectangle covered by this node.
    pub fn rect(&self) -> Rect {
        match self {
            KdNode::Internal { rect, .. } | KdNode::Leaf { rect, .. } => *rect,
        }
    }
}

/// A kd-tree decomposition of a bounding rectangle into leaf regions of
/// approximately equal sample weight.
#[derive(Debug, Clone)]
pub struct KdTree {
    root: KdNode,
    leaves: Vec<LeafRegion>,
}

/// A leaf region of the kd-tree decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafRegion {
    /// Rectangle covered by the leaf.
    pub rect: Rect,
    /// Total sample weight in the leaf.
    pub weight: f64,
    /// Number of samples in the leaf.
    pub count: usize,
}

impl KdTree {
    /// Builds a kd-tree over `bounds` using the given weighted sample points,
    /// stopping when `target_leaves` leaves have been produced (or when leaves
    /// can no longer be split because they contain at most one sample).
    ///
    /// # Panics
    /// Panics if `target_leaves == 0` or `bounds` is empty.
    pub fn build(
        bounds: Rect,
        samples: &[WeightedPoint],
        target_leaves: usize,
        axis: SplitAxis,
    ) -> Self {
        assert!(
            target_leaves > 0,
            "KdTree::build requires target_leaves > 0"
        );
        assert!(
            !bounds.is_empty(),
            "KdTree::build requires non-empty bounds"
        );
        let mut pts: Vec<WeightedPoint> = samples
            .iter()
            .copied()
            .filter(|s| bounds.contains_point(&s.point))
            .collect();
        let root = build_recursive(bounds, &mut pts, target_leaves, 0, axis);
        let mut leaves = Vec::with_capacity(target_leaves);
        collect_leaves(&root, &mut leaves);
        Self { root, leaves }
    }

    /// The root node of the tree.
    pub fn root(&self) -> &KdNode {
        &self.root
    }

    /// The leaf regions of the decomposition, in depth-first order.
    pub fn leaves(&self) -> &[LeafRegion] {
        &self.leaves
    }

    /// Index (into [`KdTree::leaves`]) of the leaf containing the point, or
    /// `None` if the point is outside the root bounds.
    pub fn leaf_of(&self, p: &Point) -> Option<usize> {
        if !self.root.rect().contains_point(p) {
            return None;
        }
        let mut node = &self.root;
        let mut leaf_index = 0usize;
        loop {
            match node {
                KdNode::Leaf { .. } => return Some(leaf_index),
                KdNode::Internal {
                    dim,
                    value,
                    low,
                    high,
                    ..
                } => {
                    if p.coord(*dim) < *value {
                        node = low;
                    } else {
                        leaf_index += count_leaves(low);
                        node = high;
                    }
                }
            }
        }
    }

    /// Indices of every leaf whose rectangle intersects `rect`.
    pub fn leaves_overlapping(&self, rect: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        overlap_recursive(&self.root, rect, &mut 0, &mut out);
        out
    }
}

fn build_recursive(
    rect: Rect,
    pts: &mut [WeightedPoint],
    target_leaves: usize,
    depth: usize,
    axis: SplitAxis,
) -> KdNode {
    let total_weight: f64 = pts.iter().map(|p| p.weight).sum();
    if target_leaves <= 1 || pts.len() <= 1 {
        return KdNode::Leaf {
            rect,
            weight: total_weight,
            count: pts.len(),
        };
    }
    let dim = match axis {
        SplitAxis::Alternate => depth % 2,
        SplitAxis::LongestExtent => rect.longest_dim(),
    };
    let Some(value) = weighted_median(pts, dim) else {
        return KdNode::Leaf {
            rect,
            weight: total_weight,
            count: pts.len(),
        };
    };
    let split_idx = partition_in_place(pts, dim, value);
    if split_idx == 0 || split_idx == pts.len() {
        // degenerate split (all points equal along this dimension)
        return KdNode::Leaf {
            rect,
            weight: total_weight,
            count: pts.len(),
        };
    }
    let (low_pts, high_pts) = pts.split_at_mut(split_idx);
    let (low_rect, high_rect) = rect.split_at(dim, value);
    // Split the leaf budget proportionally to the weight of each half so the
    // resulting leaves carry approximately equal load.
    let low_weight: f64 = low_pts.iter().map(|p| p.weight).sum();
    let frac = if total_weight > 0.0 {
        low_weight / total_weight
    } else {
        0.5
    };
    let low_leaves = ((target_leaves as f64 * frac).round() as usize).clamp(1, target_leaves - 1);
    let high_leaves = target_leaves - low_leaves;
    KdNode::Internal {
        rect,
        dim,
        value,
        low: Box::new(build_recursive(
            low_rect,
            low_pts,
            low_leaves,
            depth + 1,
            axis,
        )),
        high: Box::new(build_recursive(
            high_rect,
            high_pts,
            high_leaves,
            depth + 1,
            axis,
        )),
    }
}

/// Weighted median of the points along `dim`. Returns `None` if the points
/// carry no weight or are all identical along the dimension.
fn weighted_median(pts: &[WeightedPoint], dim: usize) -> Option<f64> {
    if pts.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..pts.len()).collect();
    order.sort_by(|&a, &b| {
        pts[a]
            .point
            .coord(dim)
            .partial_cmp(&pts[b].point.coord(dim))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total: f64 = pts.iter().map(|p| p.weight.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    let lo = pts[order[0]].point.coord(dim);
    let hi = pts[order[order.len() - 1]].point.coord(dim);
    if hi <= lo {
        return None;
    }
    let mut acc = 0.0;
    for &i in &order {
        acc += pts[i].weight.max(0.0);
        if acc >= total / 2.0 {
            let v = pts[i].point.coord(dim);
            // Avoid a split exactly at the boundary, which would produce an
            // empty side; nudge into the interior instead.
            if v <= lo {
                return Some(lo + (hi - lo) * 0.5);
            }
            return Some(v);
        }
    }
    Some(lo + (hi - lo) * 0.5)
}

/// Partitions `pts` in place so that points with `coord < value` come first.
/// Returns the index of the first point in the high half.
fn partition_in_place(pts: &mut [WeightedPoint], dim: usize, value: f64) -> usize {
    let mut i = 0usize;
    for j in 0..pts.len() {
        if pts[j].point.coord(dim) < value {
            pts.swap(i, j);
            i += 1;
        }
    }
    i
}

fn collect_leaves(node: &KdNode, out: &mut Vec<LeafRegion>) {
    match node {
        KdNode::Leaf {
            rect,
            weight,
            count,
        } => out.push(LeafRegion {
            rect: *rect,
            weight: *weight,
            count: *count,
        }),
        KdNode::Internal { low, high, .. } => {
            collect_leaves(low, out);
            collect_leaves(high, out);
        }
    }
}

fn count_leaves(node: &KdNode) -> usize {
    match node {
        KdNode::Leaf { .. } => 1,
        KdNode::Internal { low, high, .. } => count_leaves(low) + count_leaves(high),
    }
}

fn overlap_recursive(node: &KdNode, rect: &Rect, next_leaf: &mut usize, out: &mut Vec<usize>) {
    match node {
        KdNode::Leaf { rect: r, .. } => {
            if r.intersects(rect) {
                out.push(*next_leaf);
            }
            *next_leaf += 1;
        }
        KdNode::Internal {
            rect: r, low, high, ..
        } => {
            if !r.intersects(rect) {
                *next_leaf += count_leaves(node);
                return;
            }
            overlap_recursive(low, rect, next_leaf, out);
            overlap_recursive(high, rect, next_leaf, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_samples(n: usize) -> Vec<WeightedPoint> {
        // deterministic pseudo-uniform grid of samples
        let side = (n as f64).sqrt().ceil() as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % side) as f64 / side as f64 * 10.0 + 0.01;
            let y = (i / side) as f64 / side as f64 * 10.0 + 0.01;
            out.push(WeightedPoint::new(Point::new(x, y), 1.0));
        }
        out
    }

    #[test]
    fn build_produces_requested_leaves() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let samples = uniform_samples(256);
        for target in [1usize, 2, 4, 8, 16] {
            let tree = KdTree::build(bounds, &samples, target, SplitAxis::Alternate);
            assert_eq!(tree.leaves().len(), target, "target={target}");
        }
    }

    #[test]
    fn leaves_tile_the_bounds() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let samples = uniform_samples(200);
        let tree = KdTree::build(bounds, &samples, 8, SplitAxis::LongestExtent);
        let total_area: f64 = tree.leaves().iter().map(|l| l.rect.area()).sum();
        assert!((total_area - bounds.area()).abs() < 1e-6);
        for leaf in tree.leaves() {
            assert!(bounds.contains_rect(&leaf.rect));
        }
    }

    #[test]
    fn leaf_weights_are_balanced() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let samples = uniform_samples(1024);
        let tree = KdTree::build(bounds, &samples, 8, SplitAxis::Alternate);
        let weights: Vec<f64> = tree.leaves().iter().map(|l| l.weight).collect();
        let max = weights.iter().cloned().fold(f64::MIN, f64::max);
        let min = weights.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0);
        assert!(max / min < 2.0, "imbalanced leaves: {weights:?}");
    }

    #[test]
    fn leaf_of_matches_leaf_rect() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let samples = uniform_samples(300);
        let tree = KdTree::build(bounds, &samples, 6, SplitAxis::Alternate);
        for s in &samples {
            let idx = tree.leaf_of(&s.point).expect("sample inside bounds");
            assert!(tree.leaves()[idx].rect.contains_point(&s.point));
        }
        assert_eq!(tree.leaf_of(&Point::new(-1.0, 0.0)), None);
    }

    #[test]
    fn leaves_overlapping_finds_all_intersections() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let samples = uniform_samples(400);
        let tree = KdTree::build(bounds, &samples, 10, SplitAxis::Alternate);
        let query = Rect::from_coords(2.0, 2.0, 7.0, 7.0);
        let found = tree.leaves_overlapping(&query);
        for (i, leaf) in tree.leaves().iter().enumerate() {
            assert_eq!(
                found.contains(&i),
                leaf.rect.intersects(&query),
                "leaf {i} mismatch"
            );
        }
        // whole-space query must return every leaf
        assert_eq!(tree.leaves_overlapping(&bounds).len(), tree.leaves().len());
    }

    #[test]
    fn skewed_weights_shift_the_split() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        // heavy cluster on the left, light cluster on the right
        let mut samples = Vec::new();
        for i in 0..90 {
            samples.push(WeightedPoint::new(
                Point::new(1.0 + (i % 10) as f64 * 0.1, 5.0),
                1.0,
            ));
        }
        for i in 0..10 {
            samples.push(WeightedPoint::new(
                Point::new(9.0 + (i % 10) as f64 * 0.05, 5.0),
                1.0,
            ));
        }
        let tree = KdTree::build(bounds, &samples, 2, SplitAxis::Alternate);
        assert_eq!(tree.leaves().len(), 2);
        // the left leaf should be much narrower than the right one
        let left = &tree.leaves()[0];
        let right = &tree.leaves()[1];
        assert!(left.rect.width() < right.rect.width());
    }

    #[test]
    fn empty_samples_yield_single_leaf() {
        let bounds = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let tree = KdTree::build(bounds, &[], 8, SplitAxis::Alternate);
        assert_eq!(tree.leaves().len(), 1);
        assert_eq!(tree.leaves()[0].rect, bounds);
        assert_eq!(tree.leaves()[0].count, 0);
    }

    #[test]
    fn identical_points_cannot_be_split() {
        let bounds = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let samples = vec![WeightedPoint::new(Point::new(0.5, 0.5), 1.0); 50];
        let tree = KdTree::build(bounds, &samples, 4, SplitAxis::Alternate);
        assert_eq!(tree.leaves().len(), 1);
        assert_eq!(tree.leaves()[0].count, 50);
    }
}
