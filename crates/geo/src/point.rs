//! Geographic points.
//!
//! A [`Point`] is a two-dimensional coordinate. Throughout PS2Stream the
//! `x` axis corresponds to longitude and the `y` axis to latitude, matching
//! the paper's `o.loc` (latitude/longitude pair) of a spatio-textual object.

use serde::{Deserialize, Serialize};

/// Approximate number of kilometres per degree of latitude.
///
/// Used by the query generators to convert the paper's "side length between
/// 1km and 50km" specification into degrees.
pub const KM_PER_DEGREE_LAT: f64 = 111.0;

/// A two-dimensional point (`x` = longitude, `y` = latitude).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Longitude (or generic x coordinate).
    pub x: f64,
    /// Latitude (or generic y coordinate).
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Returns the origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to another point, in coordinate units.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in hot paths).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Coordinate along dimension `dim` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dim > 1`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        match dim {
            0 => self.x,
            1 => self.y,
            _ => panic!("Point::coord: dimension {dim} out of range (expected 0 or 1)"),
        }
    }

    /// Returns a copy of this point with the coordinate along `dim` replaced.
    #[inline]
    pub fn with_coord(&self, dim: usize, value: f64) -> Self {
        match dim {
            0 => Self::new(value, self.y),
            1 => Self::new(self.x, value),
            _ => panic!("Point::with_coord: dimension {dim} out of range (expected 0 or 1)"),
        }
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Self {
        Self::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Self {
        Self::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns true if every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Self::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// Converts a distance in kilometres to degrees of latitude.
#[inline]
pub fn km_to_degrees(km: f64) -> f64 {
    km / KM_PER_DEGREE_LAT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let p = Point::new(1.5, -2.0);
        assert_eq!(p.x, 1.5);
        assert_eq!(p.y, -2.0);
        assert_eq!(p.coord(0), 1.5);
        assert_eq!(p.coord(1), -2.0);
    }

    #[test]
    #[should_panic(expected = "dimension 2 out of range")]
    fn coord_out_of_range_panics() {
        let p = Point::origin();
        let _ = p.coord(2);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.0, 7.5);
        let b = Point::new(4.0, 2.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn with_coord_replaces_single_axis() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.with_coord(0, 9.0), Point::new(9.0, 2.0));
        assert_eq!(p.with_coord(1, 9.0), Point::new(1.0, 9.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (3.0, 4.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (3.0, 4.0));
    }

    #[test]
    fn km_conversion() {
        assert!((km_to_degrees(111.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
