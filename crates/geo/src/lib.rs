//! Spatial primitives for PS2Stream.
//!
//! This crate provides the geometric building blocks used throughout the
//! PS2Stream reproduction (ICDE 2017, "Distributed Publish/Subscribe Query
//! Processing on the Spatio-Textual Data Stream"):
//!
//! * [`Point`] / [`Rect`] — object locations and STS query regions,
//! * [`UniformGrid`] — the cell geometry shared by the GI² worker index, the
//!   gridt dispatcher index, and the grid space-partitioning baseline,
//! * [`KdTree`] — weighted kd-tree decomposition used by the kd-tree
//!   partitioning baseline and the spatial phase of hybrid partitioning,
//! * [`RTree`] — STR bulk-loaded R-tree used by the R-tree partitioning
//!   baseline and as a matching oracle in tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod grid;
pub mod kdtree;
pub mod point;
pub mod rect;
pub mod rtree;

pub use grid::{CellId, UniformGrid};
pub use kdtree::{KdNode, KdTree, LeafRegion, SplitAxis, WeightedPoint};
pub use point::{km_to_degrees, Point, KM_PER_DEGREE_LAT};
pub use rect::Rect;
pub use rtree::{LeafSummary, RTree, RTreeEntry};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point> {
        (-180.0f64..180.0, -90.0f64..90.0).prop_map(|(x, y)| Point::new(x, y))
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
    }

    proptest! {
        #[test]
        fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn rect_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i) || i.area() == 0.0);
                prop_assert!(b.contains_rect(&i) || i.area() == 0.0);
                prop_assert!(a.intersects(&b));
            } else {
                prop_assert!(!a.intersects(&b));
            }
        }

        #[test]
        fn rect_contains_center(r in arb_rect()) {
            prop_assert!(r.contains_point(&r.center()));
        }

        #[test]
        fn rect_intersects_is_symmetric(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }

        #[test]
        fn grid_cell_of_round_trips(p in arb_point()) {
            let g = UniformGrid::new(Rect::from_coords(-180.0, -90.0, 180.0, 90.0), 64, 64);
            let cell = g.cell_of(&p).expect("point inside bounds");
            prop_assert!(g.cell_rect(cell).contains_point(&p));
        }

        #[test]
        fn grid_overlap_includes_containing_cell(p in arb_point(), side in 0.001f64..5.0) {
            let g = UniformGrid::new(Rect::from_coords(-180.0, -90.0, 180.0, 90.0), 32, 32);
            let query = Rect::square(p, side);
            let cells = g.cells_overlapping(&query);
            let home = g.cell_of(&p).expect("point inside bounds");
            prop_assert!(cells.contains(&home));
        }

        #[test]
        fn kdtree_assigns_every_point_to_containing_leaf(
            pts in proptest::collection::vec(arb_point(), 1..200),
            leaves in 1usize..12,
        ) {
            let bounds = Rect::from_coords(-180.0, -90.0, 180.0, 90.0);
            let samples: Vec<WeightedPoint> =
                pts.iter().map(|p| WeightedPoint::new(*p, 1.0)).collect();
            let tree = KdTree::build(bounds, &samples, leaves, SplitAxis::Alternate);
            let total_area: f64 = tree.leaves().iter().map(|l| l.rect.area()).sum();
            prop_assert!((total_area - bounds.area()).abs() / bounds.area() < 1e-9);
            for p in &pts {
                let idx = tree.leaf_of(p).expect("inside bounds");
                prop_assert!(tree.leaves()[idx].rect.contains_point(p));
            }
        }

        #[test]
        fn rtree_query_equals_brute_force(
            rects in proptest::collection::vec(arb_rect(), 0..100),
            query in arb_rect(),
        ) {
            let entries: Vec<RTreeEntry<usize>> = rects
                .iter()
                .enumerate()
                .map(|(i, r)| RTreeEntry::new(*r, i))
                .collect();
            let tree = RTree::bulk_load(entries.clone());
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|e| e.rect.intersects(&query))
                .map(|e| e.data)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<usize> = tree.query_rect(&query).iter().map(|e| e.data).collect();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
