//! Tokenization of object text.
//!
//! Spatio-textual objects carry free text (tweet-like). The tokenizer
//! lowercases, splits on non-alphanumeric characters and drops a small
//! English stop-word list, mirroring the usual preprocessing applied to the
//! TWEETS-US / TWEETS-UK corpora.

use crate::vocab::{TermId, Vocabulary};

/// English stop-words removed by [`Tokenizer::tokenize`].
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "do", "for", "from", "has", "have",
    "he", "her", "his", "i", "in", "is", "it", "its", "me", "my", "no", "not", "of", "on", "or",
    "our", "she", "so", "than", "that", "the", "their", "them", "they", "this", "to", "up", "was",
    "we", "were", "what", "will", "with", "you", "your",
];

/// A tokenizer that normalizes raw text into distinct interned terms.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Vocabulary,
    min_token_len: usize,
    remove_stop_words: bool,
}

impl Tokenizer {
    /// Creates a tokenizer writing into the given vocabulary, with stop-word
    /// removal enabled and a minimum token length of 2.
    pub fn new(vocab: Vocabulary) -> Self {
        Self {
            vocab,
            min_token_len: 2,
            remove_stop_words: true,
        }
    }

    /// Disables stop-word removal (useful for tests with tiny vocabularies).
    pub fn with_stop_words_disabled(mut self) -> Self {
        self.remove_stop_words = false;
        self
    }

    /// Sets the minimum token length (shorter tokens are dropped).
    pub fn with_min_token_len(mut self, len: usize) -> Self {
        self.min_token_len = len;
        self
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Tokenizes `text` into a deduplicated, sorted list of term ids.
    ///
    /// Matching in PS2Stream is set-based (a keyword either occurs in the
    /// object text or it does not), so duplicates within one object are
    /// irrelevant and removed here.
    pub fn tokenize(&self, text: &str) -> Vec<TermId> {
        let mut ids: Vec<TermId> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter_map(|raw| {
                if raw.len() < self.min_token_len {
                    return None;
                }
                let lower = raw.to_lowercase();
                if self.remove_stop_words && STOP_WORDS.contains(&lower.as_str()) {
                    return None;
                }
                Some(self.vocab.intern(&lower))
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::new(Vocabulary::new())
    }

    #[test]
    fn tokenize_lowercases_and_splits() {
        let t = tok();
        let ids = t.tokenize("Kobe has RETIRED!");
        // "has" is a stop word
        assert_eq!(ids.len(), 2);
        assert!(t.vocab().get("kobe").is_some());
        assert!(t.vocab().get("retired").is_some());
        assert!(t.vocab().get("has").is_none());
    }

    #[test]
    fn tokenize_dedups_terms() {
        let t = tok();
        let ids = t.tokenize("kobe kobe kobe lebron");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn tokenize_output_is_sorted() {
        let t = tok();
        let ids = t.tokenize("zebra apple mango");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn short_tokens_dropped() {
        let t = tok();
        let ids = t.tokenize("I like the NBA: a b c");
        // "i", "a", "b", "c" too short; "the", "like" stop/kept
        assert!(t.vocab().get("nba").is_some());
        assert!(t.vocab().get("b").is_none());
        assert!(!ids.is_empty());
    }

    #[test]
    fn punctuation_and_unicode_split() {
        let t = tok();
        let ids = t.tokenize("café—restaurant,diner #food");
        assert!(t.vocab().get("café").is_some());
        assert!(t.vocab().get("restaurant").is_some());
        assert!(t.vocab().get("food").is_some());
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn empty_text_gives_no_tokens() {
        let t = tok();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   !!! ").is_empty());
    }

    #[test]
    fn stop_word_removal_can_be_disabled() {
        let t = Tokenizer::new(Vocabulary::new()).with_stop_words_disabled();
        let ids = t.tokenize("the and or");
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn shared_vocab_gives_stable_ids() {
        let vocab = Vocabulary::new();
        let t1 = Tokenizer::new(vocab.clone());
        let t2 = Tokenizer::new(vocab);
        let a = t1.tokenize("kobe retired");
        let b = t2.tokenize("retired kobe");
        assert_eq!(a, b);
    }
}
