//! Boolean keyword expressions of STS queries.
//!
//! An STS query's text predicate `q.K` is "a set of query keywords connected
//! by AND or OR operators" (Section III-A). We store the expression in
//! disjunctive normal form: a disjunction of conjunctions of keywords. An
//! object satisfies the expression if *some* conjunction is fully contained
//! in the object's term set.
//!
//! The DNF view also yields the posting rule used by both GI² and the gridt
//! dispatcher index (Section IV-C/IV-D): a query is posted under the least
//! frequent keyword of each conjunction, which guarantees that every matching
//! object probes at least one list containing the query.

use crate::vocab::TermId;
use serde::{Deserialize, Serialize};

/// A boolean keyword expression in disjunctive normal form.
///
/// Invariants maintained by the constructors:
/// * every conjunction is non-empty, sorted and deduplicated;
/// * the expression contains at least one conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BooleanExpr {
    dnf: Vec<Vec<TermId>>,
}

impl BooleanExpr {
    /// An expression with a single keyword.
    pub fn single(term: TermId) -> Self {
        Self {
            dnf: vec![vec![term]],
        }
    }

    /// A pure conjunction: `k1 AND k2 AND ...`.
    ///
    /// # Panics
    /// Panics if `terms` is empty.
    pub fn and_of(terms: impl IntoIterator<Item = TermId>) -> Self {
        let clause = normalize_clause(terms.into_iter().collect());
        assert!(
            !clause.is_empty(),
            "BooleanExpr::and_of requires at least one keyword"
        );
        Self { dnf: vec![clause] }
    }

    /// A pure disjunction: `k1 OR k2 OR ...`.
    ///
    /// # Panics
    /// Panics if `terms` is empty.
    pub fn or_of(terms: impl IntoIterator<Item = TermId>) -> Self {
        let mut terms: Vec<TermId> = terms.into_iter().collect();
        assert!(
            !terms.is_empty(),
            "BooleanExpr::or_of requires at least one keyword"
        );
        terms.sort_unstable();
        terms.dedup();
        Self {
            dnf: terms.into_iter().map(|t| vec![t]).collect(),
        }
    }

    /// Builds an expression from an explicit DNF (disjunction of
    /// conjunctions). Empty conjunctions are dropped.
    ///
    /// # Panics
    /// Panics if no non-empty conjunction remains.
    pub fn from_dnf(clauses: impl IntoIterator<Item = Vec<TermId>>) -> Self {
        let dnf: Vec<Vec<TermId>> = clauses
            .into_iter()
            .map(normalize_clause)
            .filter(|c| !c.is_empty())
            .collect();
        assert!(
            !dnf.is_empty(),
            "BooleanExpr::from_dnf requires at least one non-empty conjunction"
        );
        Self { dnf }
    }

    /// The conjunctions of the DNF.
    pub fn conjunctions(&self) -> &[Vec<TermId>] {
        &self.dnf
    }

    /// True if the expression is a single conjunction (AND-only query).
    pub fn is_conjunctive(&self) -> bool {
        self.dnf.len() == 1
    }

    /// All distinct keywords appearing anywhere in the expression, sorted.
    pub fn all_terms(&self) -> Vec<TermId> {
        let mut out: Vec<TermId> = self.dnf.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of distinct keywords in the expression.
    pub fn num_keywords(&self) -> usize {
        self.all_terms().len()
    }

    /// Returns true if the keyword occurs anywhere in the expression.
    pub fn contains_term(&self, term: TermId) -> bool {
        self.dnf.iter().any(|c| c.binary_search(&term).is_ok())
    }

    /// Evaluates the expression against a **sorted, deduplicated** object
    /// term list (as produced by the tokenizer).
    pub fn matches_sorted(&self, object_terms: &[TermId]) -> bool {
        debug_assert!(object_terms.windows(2).all(|w| w[0] < w[1]));
        self.dnf
            .iter()
            .any(|conj| conj.iter().all(|t| object_terms.binary_search(t).is_ok()))
    }

    /// For each conjunction, the keyword minimizing `frequency`, i.e. the
    /// least frequent (most selective) keyword. These are the terms the query
    /// is posted / routed under.
    pub fn representative_terms<F: Fn(TermId) -> u64>(&self, frequency: F) -> Vec<TermId> {
        let mut out: Vec<TermId> = self
            .dnf
            .iter()
            .map(|conj| {
                *conj
                    .iter()
                    .min_by_key(|t| (frequency(**t), t.0))
                    .expect("conjunctions are non-empty")
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The 64-bit match signature of the expression: the bitwise AND over
    /// conjunctions of each conjunction's term-set signature
    /// ([`crate::terms_signature`]).
    ///
    /// Soundness: an object matches the expression only via *some*
    /// conjunction `c` with `c ⊆ object`, hence `sig(c) ⊆ sig(object)`; the
    /// AND across all conjunctions is a subset of `sig(c)`, so
    /// `self.signature() & !sig(object) == 0` is a necessary condition for
    /// any match. For single-conjunction (AND-only) queries — the common
    /// case — this is the full conjunction signature and rejects most
    /// non-matching candidates with one AND+compare; for OR-heavy queries it
    /// degrades gracefully towards 0 (accept-all), never rejecting a true
    /// match.
    pub fn signature(&self) -> u64 {
        self.dnf
            .iter()
            .map(|conj| crate::terms_signature(conj))
            .fold(!0u64, |acc, s| acc & s)
    }

    /// Approximate heap size of the expression in bytes (used by the memory
    /// accounting of worker/dispatcher indexes).
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .dnf
                .iter()
                .map(|c| {
                    std::mem::size_of::<Vec<TermId>>() + c.len() * std::mem::size_of::<TermId>()
                })
                .sum::<usize>()
    }
}

fn normalize_clause(mut clause: Vec<TermId>) -> Vec<TermId> {
    clause.sort_unstable();
    clause.dedup();
    clause
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn single_keyword_matches() {
        let e = BooleanExpr::single(t(3));
        assert!(e.matches_sorted(&[t(1), t(3), t(7)]));
        assert!(!e.matches_sorted(&[t(1), t(7)]));
        assert!(e.is_conjunctive());
        assert_eq!(e.num_keywords(), 1);
    }

    #[test]
    fn and_requires_all_terms() {
        let e = BooleanExpr::and_of([t(1), t(5)]);
        assert!(e.matches_sorted(&[t(1), t(2), t(5)]));
        assert!(!e.matches_sorted(&[t(1)]));
        assert!(!e.matches_sorted(&[t(5)]));
        assert!(!e.matches_sorted(&[]));
        assert!(e.is_conjunctive());
    }

    #[test]
    fn or_requires_any_term() {
        let e = BooleanExpr::or_of([t(1), t(5)]);
        assert!(e.matches_sorted(&[t(1)]));
        assert!(e.matches_sorted(&[t(5), t(9)]));
        assert!(!e.matches_sorted(&[t(2), t(3)]));
        assert!(!e.is_conjunctive());
    }

    #[test]
    fn dnf_mixed_expression() {
        // (kobe AND retired) OR lebron
        let e = BooleanExpr::from_dnf([vec![t(1), t(2)], vec![t(3)]]);
        assert!(e.matches_sorted(&[t(1), t(2)]));
        assert!(e.matches_sorted(&[t(3)]));
        assert!(!e.matches_sorted(&[t(1)]));
        assert!(!e.matches_sorted(&[t(2)]));
        assert_eq!(e.conjunctions().len(), 2);
        assert_eq!(e.num_keywords(), 3);
    }

    #[test]
    fn constructors_dedupe_and_sort() {
        let e = BooleanExpr::and_of([t(5), t(1), t(5)]);
        assert_eq!(e.conjunctions(), &[vec![t(1), t(5)]]);
        let e = BooleanExpr::or_of([t(5), t(1), t(5)]);
        assert_eq!(e.conjunctions().len(), 2);
        let e = BooleanExpr::from_dnf([vec![], vec![t(2), t(2)]]);
        assert_eq!(e.conjunctions(), &[vec![t(2)]]);
    }

    #[test]
    #[should_panic(expected = "at least one keyword")]
    fn empty_and_panics() {
        let _ = BooleanExpr::and_of([]);
    }

    #[test]
    #[should_panic(expected = "non-empty conjunction")]
    fn empty_dnf_panics() {
        let _ = BooleanExpr::from_dnf([vec![]]);
    }

    #[test]
    fn contains_term_and_all_terms() {
        let e = BooleanExpr::from_dnf([vec![t(4), t(2)], vec![t(9)]]);
        assert!(e.contains_term(t(2)));
        assert!(e.contains_term(t(9)));
        assert!(!e.contains_term(t(5)));
        assert_eq!(e.all_terms(), vec![t(2), t(4), t(9)]);
    }

    #[test]
    fn representative_terms_picks_least_frequent_per_conjunction() {
        // frequencies: t1=100, t2=5, t3=50
        let freq = |term: TermId| match term.0 {
            1 => 100,
            2 => 5,
            3 => 50,
            _ => 0,
        };
        let and_expr = BooleanExpr::and_of([t(1), t(2), t(3)]);
        assert_eq!(and_expr.representative_terms(freq), vec![t(2)]);

        let or_expr = BooleanExpr::or_of([t(1), t(3)]);
        assert_eq!(or_expr.representative_terms(freq), vec![t(1), t(3)]);

        let mixed = BooleanExpr::from_dnf([vec![t(1), t(3)], vec![t(2)]]);
        assert_eq!(mixed.representative_terms(freq), vec![t(2), t(3)]);
    }

    #[test]
    fn representative_terms_completeness_for_matching_objects() {
        // Posting rule soundness: if an object matches, it must contain at
        // least one representative term.
        let freq = |term: TermId| term.0 as u64;
        let exprs = [
            BooleanExpr::and_of([t(1), t(2), t(3)]),
            BooleanExpr::or_of([t(4), t(5)]),
            BooleanExpr::from_dnf([vec![t(1), t(6)], vec![t(7), t(8)]]),
        ];
        let objects: Vec<Vec<TermId>> = vec![
            vec![t(1), t(2), t(3)],
            vec![t(4)],
            vec![t(5), t(9)],
            vec![t(7), t(8)],
            vec![t(1), t(6), t(9)],
        ];
        for e in &exprs {
            let reps = e.representative_terms(freq);
            for obj in &objects {
                if e.matches_sorted(obj) {
                    assert!(
                        reps.iter().any(|r| obj.binary_search(r).is_ok()),
                        "expr {e:?} matched {obj:?} but no representative term present"
                    );
                }
            }
        }
    }

    #[test]
    fn signature_is_necessary_for_matching() {
        use crate::terms_signature;
        // exhaustive-ish sweep: random-ish expressions vs. object term sets
        let exprs = [
            BooleanExpr::single(t(3)),
            BooleanExpr::and_of([t(1), t(2), t(3)]),
            BooleanExpr::or_of([t(4), t(5)]),
            BooleanExpr::from_dnf([vec![t(1), t(6)], vec![t(7), t(8)]]),
            BooleanExpr::and_of((0..12).map(t)),
        ];
        let objects: Vec<Vec<TermId>> = (0u32..64)
            .map(|i| (0..10).filter(|k| (i >> (k % 6)) & 1 == 1).map(t).collect())
            .collect();
        for e in &exprs {
            let sig = e.signature();
            for obj in &objects {
                if e.matches_sorted(obj) {
                    assert_eq!(
                        sig & !terms_signature(obj),
                        0,
                        "signature rejected a matching object: {e:?} vs {obj:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn and_signature_is_conjunction_signature() {
        use crate::terms_signature;
        let e = BooleanExpr::and_of([t(1), t(2), t(3)]);
        assert_eq!(e.signature(), terms_signature(&[t(1), t(2), t(3)]));
        // a disjoint object signature is rejected: with the fixed hash,
        // terms 1/2/3 map to bits {39, 15, 54} and terms 20/21 to {23, 62},
        // so no query bit is covered by the object
        let obj_sig = terms_signature(&[t(20), t(21)]);
        assert_ne!(e.signature() & !obj_sig, 0);
    }

    #[test]
    fn memory_usage_grows_with_terms() {
        let small = BooleanExpr::single(t(1));
        let big = BooleanExpr::and_of((0..20).map(t));
        assert!(big.memory_usage() > small.memory_usage());
    }
}
