//! Text primitives for PS2Stream.
//!
//! The text side of the spatio-textual model: an interned [`Vocabulary`] of
//! keywords, a [`Tokenizer`] for object text, [`BooleanExpr`] keyword
//! predicates of STS queries, [`TermStats`] document-frequency statistics,
//! and [`TermDistribution`] sparse vectors with the cosine similarity used by
//! the hybrid partitioner.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod similarity;
pub mod stats;
pub mod token;
pub mod vocab;

pub use expr::BooleanExpr;
pub use similarity::TermDistribution;
pub use stats::TermStats;
pub use token::{Tokenizer, STOP_WORDS};
pub use vocab::{terms_signature, TermId, Vocabulary};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_terms(max_id: u32, max_len: usize) -> impl Strategy<Value = Vec<TermId>> {
        proptest::collection::vec((0..max_id).prop_map(TermId), 0..max_len).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    fn arb_expr(max_id: u32) -> impl Strategy<Value = BooleanExpr> {
        proptest::collection::vec(
            proptest::collection::vec((0..max_id).prop_map(TermId), 1..4),
            1..4,
        )
        .prop_map(BooleanExpr::from_dnf)
    }

    proptest! {
        #[test]
        fn expr_matching_object_contains_a_representative_term(
            expr in arb_expr(30),
            object in arb_terms(30, 20),
        ) {
            // Soundness of the least-frequent-keyword posting rule: any
            // matching object must contain at least one representative term,
            // regardless of the frequency function used.
            let freq = |t: TermId| (t.0 * 7 + 3) as u64 % 11;
            if expr.matches_sorted(&object) {
                let reps = expr.representative_terms(freq);
                prop_assert!(reps.iter().any(|r| object.binary_search(r).is_ok()));
            }
        }

        #[test]
        fn expr_superset_objects_still_match(
            expr in arb_expr(30),
            extra in arb_terms(60, 10),
        ) {
            // If an object matches, adding more terms never breaks the match
            // (boolean expressions here are monotone: no negation).
            let base = expr.all_terms();
            prop_assert!(expr.matches_sorted(&base));
            let mut bigger = base.clone();
            bigger.extend_from_slice(&extra);
            bigger.sort_unstable();
            bigger.dedup();
            prop_assert!(expr.matches_sorted(&bigger));
        }

        #[test]
        fn expr_signature_never_rejects_a_match(
            expr in arb_expr(200),
            object in arb_terms(200, 24),
        ) {
            // The 64-bit prefilter must be a *necessary* condition: whenever
            // the expression matches the object, the signature test passes.
            if expr.matches_sorted(&object) {
                prop_assert_eq!(expr.signature() & !terms_signature(&object), 0);
            }
        }

        #[test]
        fn cosine_similarity_bounded(
            a in proptest::collection::vec((0u32..50, 0.0f64..100.0), 0..30),
            b in proptest::collection::vec((0u32..50, 0.0f64..100.0), 0..30),
        ) {
            let da: TermDistribution = a.into_iter().map(|(t, w)| (TermId(t), w)).collect();
            let db: TermDistribution = b.into_iter().map(|(t, w)| (TermId(t), w)).collect();
            let sim = da.cosine_similarity(&db);
            prop_assert!((0.0..=1.0).contains(&sim));
            prop_assert!((sim - db.cosine_similarity(&da)).abs() < 1e-9);
        }

        #[test]
        fn stats_least_frequent_minimizes_frequency(
            docs in proptest::collection::vec(arb_terms(20, 10), 1..30),
            probe in proptest::collection::vec((0u32..20).prop_map(TermId), 1..6),
        ) {
            let mut stats = TermStats::new();
            for d in &docs {
                stats.observe(d);
            }
            let chosen = stats.least_frequent(&probe);
            for t in &probe {
                prop_assert!(stats.frequency(chosen) <= stats.frequency(*t));
            }
        }

        #[test]
        fn tokenizer_output_sorted_unique(text in "[a-zA-Z0-9 ,.!?#]{0,200}") {
            let tok = Tokenizer::new(Vocabulary::new());
            let ids = tok.tokenize(&text);
            for w in ids.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
