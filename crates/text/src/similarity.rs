//! Term distributions and cosine similarity.
//!
//! The hybrid partitioning algorithm (Algorithm 1) decides whether a subspace
//! should be text-partitioned by computing the **cosine similarity** between
//! the term distribution of the objects and the term distribution of the
//! queries inside that subspace: `simt(O_n, Q_n)`. [`TermDistribution`] is a
//! sparse term-frequency vector supporting exactly that computation.

use crate::vocab::TermId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse term-frequency vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TermDistribution {
    weights: HashMap<TermId, f64>,
}

impl TermDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to a term's entry.
    pub fn add(&mut self, term: TermId, weight: f64) {
        *self.weights.entry(term).or_insert(0.0) += weight;
    }

    /// Adds one count for each term of an object / query term list.
    pub fn add_terms(&mut self, terms: &[TermId]) {
        for &t in terms {
            self.add(t, 1.0);
        }
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &TermDistribution) {
        for (&t, &w) in &other.weights {
            self.add(t, w);
        }
    }

    /// Weight of a term (0.0 if absent).
    pub fn weight(&self, term: TermId) -> f64 {
        self.weights.get(&term).copied().unwrap_or(0.0)
    }

    /// Number of distinct terms with non-zero weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the distribution has no entries.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over `(term, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, f64)> + '_ {
        self.weights.iter().map(|(t, w)| (*t, *w))
    }

    /// Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Cosine similarity with another distribution, in `[0, 1]` for
    /// non-negative weights. Returns 0.0 if either vector is empty or has
    /// zero norm.
    pub fn cosine_similarity(&self, other: &TermDistribution) -> f64 {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let dot: f64 = small
            .weights
            .iter()
            .map(|(t, w)| w * large.weight(*t))
            .sum();
        let denom = self.norm() * other.norm();
        if denom <= 0.0 {
            0.0
        } else {
            (dot / denom).clamp(0.0, 1.0)
        }
    }

    /// Total weight across all terms.
    pub fn total_weight(&self) -> f64 {
        self.weights.values().sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.weights.len() * (std::mem::size_of::<TermId>() + std::mem::size_of::<f64>() + 16)
    }
}

impl FromIterator<(TermId, f64)> for TermDistribution {
    fn from_iter<I: IntoIterator<Item = (TermId, f64)>>(iter: I) -> Self {
        let mut d = TermDistribution::new();
        for (t, w) in iter {
            d.add(t, w);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn add_and_weight() {
        let mut d = TermDistribution::new();
        d.add(t(1), 2.0);
        d.add(t(1), 3.0);
        d.add(t(2), 1.0);
        assert_eq!(d.weight(t(1)), 5.0);
        assert_eq!(d.weight(t(2)), 1.0);
        assert_eq!(d.weight(t(3)), 0.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_weight(), 6.0);
    }

    #[test]
    fn add_terms_counts_each_occurrence() {
        let mut d = TermDistribution::new();
        d.add_terms(&[t(1), t(2), t(1)]);
        assert_eq!(d.weight(t(1)), 2.0);
        assert_eq!(d.weight(t(2)), 1.0);
    }

    #[test]
    fn identical_distributions_have_similarity_one() {
        let d: TermDistribution = [(t(1), 3.0), (t(2), 4.0)].into_iter().collect();
        assert!((d.cosine_similarity(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_similarity_zero() {
        let a: TermDistribution = [(t(1), 1.0), (t(2), 1.0)].into_iter().collect();
        let b: TermDistribution = [(t(3), 1.0), (t(4), 1.0)].into_iter().collect();
        assert_eq!(a.cosine_similarity(&b), 0.0);
    }

    #[test]
    fn scaling_does_not_change_similarity() {
        let a: TermDistribution = [(t(1), 1.0), (t(2), 2.0)].into_iter().collect();
        let b: TermDistribution = [(t(1), 10.0), (t(2), 20.0)].into_iter().collect();
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a: TermDistribution = [(t(1), 1.0), (t(2), 5.0), (t(7), 0.5)]
            .into_iter()
            .collect();
        let b: TermDistribution = [(t(2), 3.0), (t(7), 2.0), (t(9), 4.0)]
            .into_iter()
            .collect();
        assert!((a.cosine_similarity(&b) - b.cosine_similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_similarity_is_zero() {
        let a = TermDistribution::new();
        let b: TermDistribution = [(t(1), 1.0)].into_iter().collect();
        assert_eq!(a.cosine_similarity(&b), 0.0);
        assert_eq!(a.cosine_similarity(&a), 0.0);
    }

    #[test]
    fn partial_overlap_similarity_between_zero_and_one() {
        let a: TermDistribution = [(t(1), 1.0), (t(2), 1.0)].into_iter().collect();
        let b: TermDistribution = [(t(2), 1.0), (t(3), 1.0)].into_iter().collect();
        let sim = a.cosine_similarity(&b);
        assert!(sim > 0.0 && sim < 1.0);
        assert!((sim - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: TermDistribution = [(t(1), 1.0)].into_iter().collect();
        let b: TermDistribution = [(t(1), 2.0), (t(2), 3.0)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.weight(t(1)), 3.0);
        assert_eq!(a.weight(t(2)), 3.0);
    }

    #[test]
    fn norm_and_memory() {
        let d: TermDistribution = [(t(1), 3.0), (t(2), 4.0)].into_iter().collect();
        assert!((d.norm() - 5.0).abs() < 1e-12);
        assert!(d.memory_usage() > std::mem::size_of::<TermDistribution>());
    }
}
