//! Interned term vocabulary.
//!
//! Every keyword appearing in objects or STS queries is interned into a
//! compact [`TermId`], so that the routing tables, inverted indexes and text
//! partitioners operate on integers instead of strings.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an interned term. Dense, starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The term's bit in a 64-bit term signature: a single bit chosen by a
    /// multiplicative hash of the id. Signatures of term *sets* are the OR of
    /// their members' bits, giving a one-instruction necessary condition for
    /// set containment (see [`terms_signature`]).
    #[inline]
    pub fn signature_bit(self) -> u64 {
        1u64 << ((self.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
    }
}

/// The 64-bit signature of a term set: the OR of every member's
/// [`TermId::signature_bit`]. If set `A ⊆ B` then
/// `terms_signature(A) & !terms_signature(B) == 0`; the converse may not
/// hold (hash collisions), so the test is a *necessary* condition — a cheap
/// prefilter that never rejects a true containment.
#[inline]
pub fn terms_signature(terms: &[TermId]) -> u64 {
    terms.iter().fold(0u64, |sig, t| sig | t.signature_bit())
}

impl From<u32> for TermId {
    fn from(v: u32) -> Self {
        TermId(v)
    }
}

#[derive(Debug, Default)]
struct VocabInner {
    term_to_id: HashMap<String, TermId>,
    id_to_term: Vec<String>,
}

/// A thread-safe, append-only term vocabulary.
///
/// The vocabulary is shared between the workload generators, the dispatchers
/// and the workers; interning is concurrent behind an `RwLock` (reads, the
/// common case after warm-up, take the shared lock).
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    inner: Arc<RwLock<VocabInner>>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id. Terms are case-sensitive; callers
    /// should normalize (e.g. lowercase) before interning.
    pub fn intern(&self, term: &str) -> TermId {
        if let Some(id) = self.inner.read().term_to_id.get(term) {
            return *id;
        }
        let mut inner = self.inner.write();
        if let Some(id) = inner.term_to_id.get(term) {
            return *id;
        }
        let id = TermId(inner.id_to_term.len() as u32);
        inner.id_to_term.push(term.to_owned());
        inner.term_to_id.insert(term.to_owned(), id);
        id
    }

    /// Looks up a term without interning it.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.inner.read().term_to_id.get(term).copied()
    }

    /// Returns the string for an id, if it exists.
    pub fn term(&self, id: TermId) -> Option<String> {
        self.inner.read().id_to_term.get(id.index()).cloned()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().id_to_term.len()
    }

    /// Returns true if no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns every token of an iterator, returning the ids in order.
    pub fn intern_all<'a, I: IntoIterator<Item = &'a str>>(&self, terms: I) -> Vec<TermId> {
        terms.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Approximate memory footprint in bytes (strings + hash map overhead).
    pub fn memory_usage(&self) -> usize {
        let inner = self.inner.read();
        let strings: usize = inner.id_to_term.iter().map(|s| s.len() * 2).sum();
        strings
            + inner.id_to_term.len() * std::mem::size_of::<String>() * 2
            + inner.term_to_id.len()
                * (std::mem::size_of::<TermId>() + std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let v = Vocabulary::new();
        let a = v.intern("kobe");
        let b = v.intern("kobe");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let v = Vocabulary::new();
        let a = v.intern("kobe");
        let b = v.intern("lebron");
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn get_and_term_roundtrip() {
        let v = Vocabulary::new();
        let id = v.intern("retired");
        assert_eq!(v.get("retired"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(id).as_deref(), Some("retired"));
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn intern_all_preserves_order() {
        let v = Vocabulary::new();
        let ids = v.intern_all(["a", "b", "a", "c"]);
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn empty_and_memory() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        v.intern("word");
        assert!(!v.is_empty());
        assert!(v.memory_usage() > 0);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let v = Vocabulary::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = v.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| v.intern(&format!("t{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<TermId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(v.len(), 100);
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}
