//! Term frequency statistics over an object corpus.
//!
//! Several components need to know how frequent each keyword is among the
//! spatio-textual objects:
//!
//! * GI² and the gridt index post queries under their **least frequent**
//!   keyword,
//! * the frequency-based text partitioner balances workers by term frequency,
//! * the Q2 query generator requires "at least one keyword that is not in the
//!   top 1% most frequent terms".
//!
//! [`TermStats`] accumulates document frequencies from a sample of objects
//! and answers those questions.

use crate::vocab::TermId;
use serde::{Deserialize, Serialize};

/// Document-frequency statistics for interned terms.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermStats {
    /// `counts[term.index()]` = number of objects containing the term.
    counts: Vec<u64>,
    /// Number of objects observed.
    num_docs: u64,
}

impl TermStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one object's (deduplicated) term list.
    pub fn observe(&mut self, terms: &[TermId]) {
        self.num_docs += 1;
        for &t in terms {
            let idx = t.index();
            if idx >= self.counts.len() {
                self.counts.resize(idx + 1, 0);
            }
            self.counts[idx] += 1;
        }
    }

    /// Records a whole batch of objects' term lists in one call. Equivalent
    /// to calling [`TermStats::observe`] per document (pinned by the
    /// `observe_batch_equals_repeated_observe` property). The GI² batch
    /// matcher deliberately does **not** use this: a separate observation
    /// pass over a batch walks every term slice twice, so it observes inside
    /// its per-object match loop instead.
    pub fn observe_batch<'a, I>(&mut self, docs: I)
    where
        I: Iterator<Item = &'a [TermId]>,
    {
        for doc in docs {
            self.observe(doc);
        }
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &TermStats) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.num_docs += other.num_docs;
    }

    /// Document frequency of a term (0 if never observed).
    #[inline]
    pub fn frequency(&self, term: TermId) -> u64 {
        self.counts.get(term.index()).copied().unwrap_or(0)
    }

    /// Number of observed objects.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Number of distinct terms with at least one occurrence.
    pub fn num_terms(&self) -> usize {
        self.counts.iter().filter(|c| **c > 0).count()
    }

    /// The least frequent term of a non-empty slice (ties broken by id).
    ///
    /// # Panics
    /// Panics if `terms` is empty.
    pub fn least_frequent(&self, terms: &[TermId]) -> TermId {
        *terms
            .iter()
            .min_by_key(|t| (self.frequency(**t), t.0))
            .expect("least_frequent requires a non-empty term slice")
    }

    /// Terms sorted by descending frequency (ties by ascending id).
    pub fn terms_by_frequency(&self) -> Vec<(TermId, u64)> {
        let mut out: Vec<(TermId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (TermId(i as u32), *c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        out
    }

    /// The set of terms making up the most frequent `fraction` of the
    /// vocabulary (e.g. `0.01` = "top 1% most frequent terms" from the Q2
    /// query specification). At least one term is returned when any term has
    /// been observed.
    pub fn top_fraction(&self, fraction: f64) -> Vec<TermId> {
        let ranked = self.terms_by_frequency();
        if ranked.is_empty() {
            return Vec::new();
        }
        let k = ((ranked.len() as f64 * fraction).ceil() as usize).clamp(1, ranked.len());
        ranked.into_iter().take(k).map(|(t, _)| t).collect()
    }

    /// Relative frequency of a term among observed documents (0.0 if no
    /// documents were observed).
    pub fn relative_frequency(&self, term: TermId) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.frequency(term) as f64 / self.num_docs as f64
        }
    }

    /// The raw per-term document-frequency counts (`counts[term.index()]`),
    /// exposed for snapshot serialization.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds statistics from snapshot parts (the inverse of
    /// [`TermStats::counts`] + [`TermStats::num_docs`]).
    pub fn from_parts(counts: Vec<u64>, num_docs: u64) -> Self {
        Self { counts, num_docs }
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn sample_stats() -> TermStats {
        let mut s = TermStats::new();
        // term 0 appears in 3 docs, term 1 in 2, term 2 in 1
        s.observe(&[t(0), t(1)]);
        s.observe(&[t(0), t(1), t(2)]);
        s.observe(&[t(0)]);
        s
    }

    #[test]
    fn observe_counts_document_frequency() {
        let s = sample_stats();
        assert_eq!(s.num_docs(), 3);
        assert_eq!(s.frequency(t(0)), 3);
        assert_eq!(s.frequency(t(1)), 2);
        assert_eq!(s.frequency(t(2)), 1);
        assert_eq!(s.frequency(t(99)), 0);
        assert_eq!(s.num_terms(), 3);
    }

    #[test]
    fn least_frequent_picks_rarest() {
        let s = sample_stats();
        assert_eq!(s.least_frequent(&[t(0), t(1), t(2)]), t(2));
        assert_eq!(s.least_frequent(&[t(0), t(1)]), t(1));
        // unknown terms have frequency zero and win
        assert_eq!(s.least_frequent(&[t(0), t(42)]), t(42));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn least_frequent_empty_panics() {
        sample_stats().least_frequent(&[]);
    }

    #[test]
    fn terms_by_frequency_is_descending() {
        let s = sample_stats();
        let ranked = s.terms_by_frequency();
        assert_eq!(ranked[0], (t(0), 3));
        assert_eq!(ranked[1], (t(1), 2));
        assert_eq!(ranked[2], (t(2), 1));
    }

    #[test]
    fn top_fraction_returns_most_frequent() {
        let s = sample_stats();
        assert_eq!(s.top_fraction(0.01), vec![t(0)]);
        assert_eq!(s.top_fraction(0.5), vec![t(0), t(1)]);
        assert_eq!(s.top_fraction(1.0).len(), 3);
        assert!(TermStats::new().top_fraction(0.5).is_empty());
    }

    #[test]
    fn relative_frequency() {
        let s = sample_stats();
        assert!((s.relative_frequency(t(0)) - 1.0).abs() < 1e-12);
        assert!((s.relative_frequency(t(1)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(TermStats::new().relative_frequency(t(0)), 0.0);
    }

    #[test]
    fn observe_batch_equals_repeated_observe() {
        let docs: Vec<Vec<TermId>> =
            vec![vec![t(0), t(1)], vec![], vec![t(0), t(1), t(5)], vec![t(3)]];
        let mut one_by_one = TermStats::new();
        for d in &docs {
            one_by_one.observe(d);
        }
        let mut batched = TermStats::new();
        batched.observe_batch(docs.iter().map(Vec::as_slice));
        assert_eq!(batched.num_docs(), one_by_one.num_docs());
        for i in 0..8 {
            assert_eq!(batched.frequency(t(i)), one_by_one.frequency(t(i)));
        }
        // an empty batch is a no-op
        batched.observe_batch(std::iter::empty());
        assert_eq!(batched.num_docs(), one_by_one.num_docs());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = sample_stats();
        let mut b = TermStats::new();
        b.observe(&[t(2), t(3)]);
        a.merge(&b);
        assert_eq!(a.num_docs(), 4);
        assert_eq!(a.frequency(t(2)), 2);
        assert_eq!(a.frequency(t(3)), 1);
    }

    #[test]
    fn snapshot_parts_roundtrip() {
        let s = sample_stats();
        let rebuilt = TermStats::from_parts(s.counts().to_vec(), s.num_docs());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn memory_usage_grows_with_vocabulary() {
        let mut s = TermStats::new();
        let base = s.memory_usage();
        s.observe(&[t(1000)]);
        assert!(s.memory_usage() > base);
    }
}
