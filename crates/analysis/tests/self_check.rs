//! Self-check: `ps2lint` must pass over the actual workspace, and each rule
//! must still fire on a seeded fixture tree. Together these pin the gate's
//! two failure modes — a rule rotting into a false positive on real code,
//! and a rule rotting into silence.

use std::path::{Path, PathBuf};
use std::process::Command;

fn ps2lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ps2lint"))
}

fn temp_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps2lint-selfcheck-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/fix/src")).unwrap();
    std::fs::create_dir_all(dir.join("docs")).unwrap();
    dir
}

fn write(root: &Path, rel: &str, text: &str) {
    std::fs::write(root.join(rel), text).unwrap();
}

/// The gate's reason to exist: the real workspace is clean under the real
/// checked-in allowlist. A regression anywhere in the repo fails here first.
#[test]
fn workspace_is_clean() {
    let root = ps2stream_analysis::workspace_root_for_tests();
    assert!(
        root.join("ps2lint.allow").is_file(),
        "workspace root misdetected: {}",
        root.display()
    );
    let out = ps2lint()
        .arg("--root")
        .arg(&root)
        .arg("--explain")
        .output()
        .expect("run ps2lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "ps2lint found violations in the workspace:\n{stdout}"
    );
    assert!(
        stdout.contains(" 0 violation(s)"),
        "unexpected summary:\n{stdout}"
    );
    assert!(
        !stdout.contains("stale allow entry"),
        "ps2lint.allow carries dead exemptions:\n{stdout}"
    );
}

/// Every rule fires at least once on a tree seeded with one violation each,
/// and the process exits nonzero.
#[test]
fn seeded_fixture_tree_trips_every_rule() {
    let dir = temp_tree("dirty");
    write(
        &dir,
        "ps2lint.allow",
        "hot crates/fix/src/hot.rs hot_fn\n\
         lock-order crates/fix/src/locks.rs\n\
         operator-path crates/fix/src\n\
         persist-path crates/fix/src/persist\n",
    );
    std::fs::create_dir_all(dir.join("crates/fix/src/persist")).unwrap();
    write(
        &dir,
        "crates/fix/src/persist/log.rs",
        "fn append(&mut self) { self.file.write_all(&self.raw).unwrap(); self.file.sync_all().unwrap(); }\n",
    );
    write(
        &dir,
        "crates/fix/src/locks.rs",
        r#"
        fn promote_badly(&self, cell: u32, local: usize, home: usize) {
            let s = self.shard_of(cell);
            let mut mine = self.groups[local].shards[s].write();
            let mut theirs = self.groups[home].shards[s].write();
            install(&mut mine, &mut theirs);
        }
        "#,
    );
    write(
        &dir,
        "crates/fix/src/hot.rs",
        "fn hot_fn(&mut self) { let mut v = Vec::new(); v.push(1); }\n",
    );
    write(
        &dir,
        "crates/fix/src/op.rs",
        "fn tick(&mut self) { self.started = Instant::now(); }\n",
    );
    write(
        &dir,
        "crates/fix/src/unsafe_code.rs",
        "fn peek(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    write(
        &dir,
        "crates/fix/src/chan.rs",
        "fn wire() -> (Sender<u32>, Receiver<u32>) { unbounded::<u32>() }\n",
    );
    write(
        &dir,
        "crates/fix/src/knob.rs",
        r#"fn scale() -> Option<String> { std::env::var("PS2_FIXTURE_KNOB").ok() }"#,
    );
    write(
        &dir,
        "docs/RUNTIME.md",
        "# Runtime\n\nNo knobs documented.\n",
    );

    let out = ps2lint()
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run ps2lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected violation exit, got {:?}:\n{stdout}",
        out.status
    );
    for rule in [
        "[lock-order]",
        "[no-alloc-hot]",
        "[sim-determinism]",
        "[unsafe-audit]",
        "[channel-discipline]",
        "[env-doc-drift]",
        "[durability-discipline]",
        "[panic-free-operators]",
    ] {
        assert!(stdout.contains(rule), "{rule} did not fire:\n{stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean fixture exits 0, and an allow entry that suppresses nothing is
/// reported as stale under `--explain`.
#[test]
fn clean_fixture_exits_zero_and_stale_allows_warn() {
    let dir = temp_tree("clean");
    write(
        &dir,
        "ps2lint.allow",
        "operator-path crates/fix/src\n\
         allow channel-discipline crates/fix/src/lib.rs unbounded :: kept for the stale-entry check\n",
    );
    write(
        &dir,
        "crates/fix/src/lib.rs",
        "fn add(a: u32, b: u32) -> u32 { a + b }\n",
    );
    write(&dir, "docs/RUNTIME.md", "# Runtime\n");

    let out = ps2lint()
        .arg("--root")
        .arg(&dir)
        .arg("--explain")
        .output()
        .expect("run ps2lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean tree flagged:\n{stdout}");
    assert!(
        stdout.contains("stale allow entry"),
        "unused allow not reported:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Usage and I/O errors are distinguishable from violations (exit 2).
#[test]
fn usage_errors_exit_two() {
    let out = ps2lint()
        .arg("--no-such-flag")
        .output()
        .expect("run ps2lint");
    assert_eq!(out.status.code(), Some(2));

    let out = ps2lint()
        .arg("--allow")
        .arg("/nonexistent/ps2lint.allow")
        .output()
        .expect("run ps2lint");
    assert_eq!(out.status.code(), Some(2));
}
