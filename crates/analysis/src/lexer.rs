//! A hand-rolled Rust lexer.
//!
//! `ps2lint` runs in the offline vendored-deps workspace, so it cannot pull
//! `syn`/`proc-macro2`; instead this module tokenizes Rust source directly.
//! The lexer is deliberately *lossy* about things no rule cares about
//! (numeric value, escape decoding) but exact about the things every rule
//! depends on: string/char/comment boundaries (so a keyword inside a string
//! literal is never mistaken for code), nested block comments, raw strings,
//! lifetimes vs char literals, and the line number of every token.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `Vec`, …).
    Ident,
    /// Punctuation. Multi-character only for `::`; everything else is one
    /// character per token.
    Punct,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`); the token text is the
    /// *inner* content, without quotes or prefix.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `//` comment (doc or plain), text includes the slashes.
    LineComment,
    /// A `/* … */` comment (nesting handled), text includes the delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (inner content for [`TokenKind::Str`]).
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: u32,
}

impl Token {
    /// True if this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into a token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Punct, "::".into(), line);
                }
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Body of a non-raw string; the opening quote is already consumed.
    fn string_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // skip the escaped character verbatim
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Raw string starting at the current `r`/`br` prefix (already past it):
    /// `#…#"` up to the matching `"#…#`. Returns false if this is not a raw
    /// string after all (e.g. a raw identifier `r#fn`).
    fn raw_string_body(&mut self, line: u32) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump(); // the #s and the opening quote
        }
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        text.push('"');
                        // not the terminator: the quote is content; the #s
                        // (if any) will be consumed as content next rounds
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokenKind::Str, text, line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening quote
        match self.peek(0) {
            // escaped char literal: '\n', '\'', '\u{1F600}'
            Some('\\') => {
                let mut text = String::from("\\");
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokenKind::Char, text, line);
            }
            // 'x' is a char literal; 'x… (no closing quote) is a lifetime
            Some(c) if self.peek(1) == Some('\'') => {
                self.bump();
                self.bump();
                self.push(TokenKind::Char, c.to_string(), line);
            }
            _ => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, text, line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // one decimal point, but never eat a `..` range
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        // raw/byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'
        let c = self.peek(0).unwrap();
        if c == 'r' || c == 'b' {
            let after = if c == 'b' && self.peek(1) == Some('r') {
                2
            } else {
                1
            };
            let next = self.peek(after);
            if next == Some('"') || (c != 'b' && next == Some('#')) || next == Some('#') {
                let save = (self.pos, self.line);
                for _ in 0..after {
                    self.bump();
                }
                if self.peek(0) == Some('"') {
                    self.bump();
                    self.string_body(line);
                    return;
                }
                if self.raw_string_body(line) {
                    return;
                }
                // raw identifier (`r#fn`): rewind the prefix and fall through
                self.pos = save.0;
                self.line = save.1;
            }
            if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_or_lifetime(line);
                return;
            }
        }
        let mut text = String::new();
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            // raw identifier: strip the sigil, keep the name
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn keywords_in_strings_are_not_code() {
        let toks = kinds(r#"let s = "unsafe { Instant::now() }";"#);
        assert!(toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .all(|(_, t)| t != "unsafe" && t != "Instant"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("Instant::now")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds("let x = r#\"quote \" inside\"#; y");
        let s = toks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert_eq!(s.1, "quote \" inside");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "x"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let q = '\''; let n = '\n'; let u = '\u{1F600}';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
        // the statement structure survives
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Punct && t == ";")
                .count(),
            3
        );
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = kinds("Instant::now()");
        assert_eq!(toks[1], (TokenKind::Punct, "::".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "now".to_string()));
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let toks = kinds("for i in 0..10 { a[i] = 1.5; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5"]);
    }

    #[test]
    fn line_numbers_track_every_construct() {
        let src = "fn a() {}\n\"two\nlines\"\nfn b() {}\n";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text == "b")
            .unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "bytes"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "x"));
    }
}
