//! `sim-determinism`: operator code must not read wall clocks or OS
//! randomness except through audited allowlist entries.
//!
//! PR 3's deterministic simulation makes a full pipeline run a pure function
//! of `(workload, seed)` — the property the migration-loss regression tests
//! and the 20-seed sweep rely on. A stray `Instant::now()` that *influences
//! control flow* silently breaks seed-reproducibility. Wall-clock reads in
//! operator code (`operator-path` prefixes in `ps2lint.allow`) therefore
//! require an audited `allow` entry whose justification states why the read
//! cannot affect delivered output (timing metrics, deadlines on the
//! non-deterministic thread backend, …).

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// `Type::method` pairs that read the wall clock.
const CLOCK_PATHS: &[(&str, &str)] = &[("Instant", "now"), ("SystemTime", "now")];

/// Bare identifiers that pull OS entropy.
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// See module docs.
pub struct SimDeterminism;

impl Rule for SimDeterminism {
    fn name(&self) -> &'static str {
        "sim-determinism"
    }

    fn description(&self) -> &'static str {
        "wall-clock/OS-randomness reads in operator code need an audited allow entry"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !cfg.is_operator_path(&file.rel_path) || file.is_test_path {
            return;
        }
        for i in 0..file.code_len() {
            if file.is_test_code(i) {
                continue;
            }
            let Some(id) = file.ident_at(i) else { continue };
            let item = if let Some((ty, m)) =
                CLOCK_PATHS
                    .iter()
                    .find(|(ty, _)| *ty == id)
                    .filter(|(_, m)| {
                        i + 2 < file.code_len()
                            && file.is_punct(i + 1, "::")
                            && file.is_ident(i + 2, m)
                    }) {
                format!("{ty}::{m}")
            } else if ENTROPY_IDENTS.contains(&id) {
                id.to_string()
            } else {
                continue;
            };
            out.push(Diagnostic {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: file.line_of(i),
                item: item.clone(),
                message: format!(
                    "`{item}` in operator code breaks seeded-simulation reproducibility; \
                     route it through the runtime or add an audited allow entry"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = Config::parse("operator-path crates/core/src\n").unwrap();
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        SimDeterminism.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn wall_clock_in_operator_code_is_flagged() {
        let diags = run(
            "crates/core/src/worker.rs",
            r#"
            fn handle(&mut self) {
                let start = Instant::now();
                let seed = rand::thread_rng();
                work(start, seed);
            }
        "#,
        );
        let items: Vec<_> = diags.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, ["Instant::now", "thread_rng"]);
    }

    #[test]
    fn clean_operator_code_and_test_code_pass() {
        let diags = run(
            "crates/core/src/worker.rs",
            r#"
            fn handle(&mut self, tick: u64) {
                // deterministic: logical ticks, not wall time
                self.last_tick = tick;
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn timing_is_fine_in_tests() {
                    let _ = std::time::Instant::now();
                }
            }
        "#,
        );
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn non_operator_paths_are_out_of_scope() {
        let diags = run(
            "crates/bench/src/lib.rs",
            "fn measure() { let t = Instant::now(); use_it(t); }",
        );
        assert!(diags.is_empty());
    }
}
