//! `env-doc-drift`: every `PS2_*` environment variable read in source must
//! be documented in `docs/RUNTIME.md`.
//!
//! The runtime knobs (`PS2_RUNTIME`, `PS2_PIN`, …) are the operational
//! surface of the system; an undocumented knob is unusable and un-reviewable.
//! The rule collects string literals whose entire content is a `PS2_*` name
//! (i.e. the argument of an `env::var` read — prose mentions in comments are
//! ignored) and requires each to appear in the runtime documentation.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

/// Documentation file the variables must appear in, workspace-relative.
const RUNTIME_DOC: &str = "docs/RUNTIME.md";

/// See module docs.
pub struct EnvDoc;

impl Rule for EnvDoc {
    fn name(&self) -> &'static str {
        "env-doc-drift"
    }

    fn description(&self) -> &'static str {
        "every PS2_* env var referenced in source must be documented in docs/RUNTIME.md"
    }

    fn check_workspace(
        &self,
        files: &[SourceFile],
        root: &Path,
        _cfg: &Config,
        out: &mut Vec<Diagnostic>,
    ) {
        // var -> first occurrence (path, line), deterministic order
        let mut vars: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for file in files {
            for i in 0..file.code_len() {
                // bench/example knobs are real user surface; `#[cfg(test)]`
                // fixtures are not
                if file.test_mask[i] {
                    continue;
                }
                let tok = file.ct(i);
                if tok.kind == TokenKind::Str && is_env_var_name(&tok.text) {
                    vars.entry(tok.text.clone())
                        .or_insert_with(|| (file.rel_path.clone(), tok.line));
                }
            }
        }
        if vars.is_empty() {
            return;
        }
        let doc = std::fs::read_to_string(root.join(RUNTIME_DOC)).unwrap_or_default();
        for (var, (path, line)) in vars {
            if !doc.contains(&var) {
                out.push(Diagnostic {
                    rule: self.name(),
                    path,
                    line,
                    item: var.clone(),
                    message: format!(
                        "env var `{var}` is read here but not documented in {RUNTIME_DOC}"
                    ),
                });
            }
        }
    }
}

/// True if `s` is exactly a `PS2_*` variable name.
fn is_env_var_name(s: &str) -> bool {
    s.len() > 4
        && s.starts_with("PS2_")
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run_in(dir: &Path, src: &str, doc: &str) -> Vec<Diagnostic> {
        std::fs::create_dir_all(dir.join("docs")).unwrap();
        std::fs::write(dir.join(RUNTIME_DOC), doc).unwrap();
        let files = vec![SourceFile::parse("crates/x/src/lib.rs", src)];
        let mut out = Vec::new();
        EnvDoc.check_workspace(&files, dir, &Config::default(), &mut out);
        out
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ps2lint-envdoc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn undocumented_var_is_flagged() {
        let dir = temp_dir("bad");
        let diags = run_in(
            &dir,
            r#"fn f() { let _ = std::env::var("PS2_SECRET_KNOB"); }"#,
            "# Runtime\n\nOnly `PS2_RUNTIME` is documented here.\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].item, "PS2_SECRET_KNOB");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn documented_vars_and_prose_mentions_pass() {
        let dir = temp_dir("good");
        let diags = run_in(
            &dir,
            r#"
            // comment naming PS2_IMAGINARY is prose, not a read
            fn f() { let _ = std::env::var("PS2_RUNTIME"); }
            fn g() { let msg = "set PS2_ALSO_PROSE to tune"; drop(msg); }
            "#,
            "# Runtime\n\n`PS2_RUNTIME` selects the backend.\n",
        );
        assert!(diags.is_empty(), "false positives: {diags:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
