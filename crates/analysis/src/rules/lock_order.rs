//! `lock-order`: nested shard-lock acquisitions follow the declared
//! ascending-group order.
//!
//! The NUMA `TermRegistry` (PR 4) is deadlock-free because every operation
//! holding more than one shard lock at once — `insert`'s mirror step,
//! `promote`'s snapshot-install — acquires the *same shard index* across
//! groups in **ascending group order**. That proof lives in a doc comment;
//! this rule makes the two idioms that implement it machine-checked in the
//! files declared via `lock-order <path>`:
//!
//! 1. **Ordered pair**: a function holding two named shard guards at once
//!    must derive its group indices from the canonical ordering preamble
//!    `let (first, second) = if a < b { (a, b) } else { (b, a) };` and
//!    acquire `[first]` strictly before `[second]`.
//! 2. **Index-order sweep**: a `Vec`-of-guards collect must iterate
//!    `groups.iter()` directly — no `rev`/`filter`/`skip`-style adapter may
//!    reorder or thin the sweep between `iter()` and `map()`.
//!
//! The analysis is a scope-tracked heuristic over tokens, not an alias
//! analysis: a *named* guard (`let g = …shards[…].write();`) is considered
//! held from its statement to the end of its enclosing block or an explicit
//! `drop(g)`. Single-guard functions and temporary guards that die at the
//! end of their statement are not nesting and pass untouched.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::{FnSpan, SourceFile};

/// Iterator adapters that would break index-order or completeness of a
/// guard sweep.
const FORBIDDEN_ADAPTERS: &[&str] = &[
    "rev",
    "filter",
    "skip",
    "step_by",
    "take_while",
    "skip_while",
    "filter_map",
    "chain",
];

/// See module docs.
pub struct LockOrder;

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "nested shard-lock acquisitions must follow the ascending-group order idioms"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !cfg.lock_order_files.iter().any(|p| p == &file.rel_path) {
            return;
        }
        for span in file.functions() {
            check_fn(file, &span, self.name(), out);
        }
    }
}

/// A named guard acquisition: `let [mut] NAME = …shards[…].read()/.write()…;`
struct GuardSite {
    name: String,
    /// Ident used to index `groups[…]` in the acquiring statement, if the
    /// index is a simple identifier.
    group_index: Option<String>,
    /// Brace depth (relative to the function body) the guard is declared at.
    depth: usize,
    line: u32,
}

fn check_fn(file: &SourceFile, span: &FnSpan, rule: &'static str, out: &mut Vec<Diagnostic>) {
    let ordered_pair = find_ordering_preamble(file, span);
    // collect statements and walk with a depth counter
    let mut depth = 0usize;
    let mut active: Vec<GuardSite> = Vec::new();
    let mut i = span.body_start;
    while i <= span.body_end {
        if file.is_punct(i, "{") {
            depth += 1;
            i += 1;
            continue;
        }
        if file.is_punct(i, "}") {
            depth = depth.saturating_sub(1);
            active.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        // explicit release: drop(NAME)
        if file.is_ident(i, "drop") && file.is_punct(i + 1, "(") {
            if let Some(name) = file.ident_at(i + 2) {
                active.retain(|g| g.name != name);
            }
        }
        // a guard-collecting sweep: …collect() over map-closures yielding
        // read()/write() guards
        if let Some(stmt_end) = sweep_statement_at(file, i, span.body_end) {
            if let Some(d) = check_sweep(file, i, stmt_end, rule) {
                out.push(d);
            }
            i = stmt_end + 1;
            continue;
        }
        // a named guard acquisition
        if let Some(site) = named_guard_at(file, i, span.body_end, depth) {
            let stmt_end = statement_end(file, i, span.body_end);
            if let Some(holder) = active.last() {
                // nested acquisition while another guard is held
                let ok = match (&ordered_pair, &holder.group_index, &site.group_index) {
                    (Some((a, b)), Some(g1), Some(g2)) => g1 == a && g2 == b,
                    _ => false,
                };
                if !ok {
                    out.push(Diagnostic {
                        rule,
                        path: file.rel_path.clone(),
                        line: site.line,
                        item: "nested-guards".to_string(),
                        message: format!(
                            "`{}` acquires a shard guard at line {} while `{}` (line {}) is still \
                             held, outside the ordered-pair idiom `let (first, second) = if a < b \
                             …`; nested shard locks must take ascending group order",
                            span.name, site.line, holder.name, holder.line
                        ),
                    });
                }
            }
            active.push(site);
            i = stmt_end + 1;
            continue;
        }
        i += 1;
    }
}

/// Finds `let ( A , B ) = if X < Y` and returns `(A, B)`.
fn find_ordering_preamble(file: &SourceFile, span: &FnSpan) -> Option<(String, String)> {
    for i in span.body_start..span.body_end.saturating_sub(8) {
        if file.is_ident(i, "let")
            && file.is_punct(i + 1, "(")
            && file.ident_at(i + 2).is_some()
            && file.is_punct(i + 3, ",")
            && file.ident_at(i + 4).is_some()
            && file.is_punct(i + 5, ")")
            && file.is_punct(i + 6, "=")
            && file.is_ident(i + 7, "if")
        {
            // require a `<` comparison in the if condition
            let cond_has_lt = (i + 8..(i + 14).min(span.body_end)).any(|j| file.is_punct(j, "<"));
            if cond_has_lt {
                return Some((
                    file.ident_at(i + 2).unwrap().to_string(),
                    file.ident_at(i + 4).unwrap().to_string(),
                ));
            }
        }
    }
    None
}

/// If code index `i` starts `let [mut] NAME = …` whose statement contains a
/// `shards`-indexed `.read()`/`.write()` acquisition, returns the site.
fn named_guard_at(file: &SourceFile, i: usize, body_end: usize, depth: usize) -> Option<GuardSite> {
    if !file.is_ident(i, "let") {
        return None;
    }
    let mut j = i + 1;
    if file.is_ident(j, "mut") {
        j += 1;
    }
    let name = file.ident_at(j)?.to_string();
    if !file.is_punct(j + 1, "=") {
        return None; // destructuring / if-let / typed lets handled below
    }
    let stmt_end = statement_end(file, i, body_end);
    // the statement must index `shards[…]` and end a chain in read()/write()
    let mut saw_shards_index = false;
    let mut saw_guard_call = false;
    let mut group_index = None;
    for k in j..stmt_end {
        if file.is_ident(k, "shards") && file.is_punct(k + 1, "[") {
            saw_shards_index = true;
        }
        if (file.is_ident(k, "read") || file.is_ident(k, "write"))
            && file.is_punct(k + 1, "(")
            && file.is_punct(k + 2, ")")
        {
            saw_guard_call = true;
        }
        if file.is_ident(k, "groups") && file.is_punct(k + 1, "[") {
            group_index = file.ident_at(k + 2).map(str::to_string);
        }
    }
    // a collect-sweep is handled by check_sweep, not as a named guard
    let is_sweep = (j..stmt_end).any(|k| file.is_ident(k, "collect"));
    if saw_shards_index && saw_guard_call && !is_sweep {
        Some(GuardSite {
            name,
            group_index,
            depth,
            line: file.line_of(i),
        })
    } else {
        None
    }
}

/// If code index `i` starts a statement that collects lock guards, returns
/// the statement end.
fn sweep_statement_at(file: &SourceFile, i: usize, body_end: usize) -> Option<usize> {
    if !file.is_ident(i, "let") {
        return None;
    }
    let stmt_end = statement_end(file, i, body_end);
    let collects = (i..stmt_end).any(|k| file.is_ident(k, "collect"));
    if !collects {
        return None;
    }
    // a map closure whose final expression is `.read()`/`.write()`:
    // tokens `read|write ( ) )`
    let yields_guard = (i..stmt_end.saturating_sub(3)).any(|k| {
        (file.is_ident(k, "read") || file.is_ident(k, "write"))
            && file.is_punct(k + 1, "(")
            && file.is_punct(k + 2, ")")
            && file.is_punct(k + 3, ")")
    });
    yields_guard.then_some(stmt_end)
}

/// Validates a guard-collecting sweep: must be `groups.iter().map(…)` with no
/// reordering/thinning adapter.
fn check_sweep(
    file: &SourceFile,
    start: usize,
    stmt_end: usize,
    rule: &'static str,
) -> Option<Diagnostic> {
    let direct_iter = (start..stmt_end.saturating_sub(6)).any(|k| {
        file.is_ident(k, "groups")
            && file.is_punct(k + 1, ".")
            && file.is_ident(k + 2, "iter")
            && file.is_punct(k + 3, "(")
            && file.is_punct(k + 4, ")")
            && file.is_punct(k + 5, ".")
            && file.is_ident(k + 6, "map")
    });
    let bad_adapter =
        (start..stmt_end).find(|&k| FORBIDDEN_ADAPTERS.iter().any(|a| file.is_ident(k, a)));
    if direct_iter && bad_adapter.is_none() {
        return None;
    }
    let line = file.line_of(bad_adapter.unwrap_or(start));
    Some(Diagnostic {
        rule,
        path: file.rel_path.clone(),
        line,
        item: "guard-sweep".to_string(),
        message: "collecting shard guards must iterate `groups.iter()` directly (ascending \
                  group order, every group); adapters like rev/filter break the deadlock-freedom \
                  and replica-exactness arguments"
            .to_string(),
    })
}

/// Code index of the `;` ending the statement starting at `i` (or `body_end`).
fn statement_end(file: &SourceFile, i: usize, body_end: usize) -> usize {
    let mut depth = 0isize;
    for j in i..=body_end {
        if file.is_punct(j, "(") || file.is_punct(j, "[") || file.is_punct(j, "{") {
            depth += 1;
        } else if file.is_punct(j, ")") || file.is_punct(j, "]") || file.is_punct(j, "}") {
            depth -= 1;
        } else if depth == 0 && file.is_punct(j, ";") {
            return j;
        }
    }
    body_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        let cfg = Config::parse("lock-order crates/partition/src/registry.rs\n").unwrap();
        let file = SourceFile::parse("crates/partition/src/registry.rs", src);
        let mut out = Vec::new();
        LockOrder.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn unordered_nested_guards_are_flagged() {
        let diags = run(r#"
            fn promote_badly(&self, cell: u32, local: usize, home: usize) {
                let s = self.shard_of(cell);
                let mut mine = self.groups[local].shards[s].write();
                let mut theirs = self.groups[home].shards[s].write();
                install(&mut mine, &mut theirs);
            }
        "#);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].item, "nested-guards");
    }

    #[test]
    fn the_ordered_pair_idiom_passes() {
        let diags = run(r#"
            fn promote(&self, cell: u32, local: usize, home: usize) {
                let s = self.shard_of(cell);
                let (first, second) = if local < home {
                    (local, home)
                } else {
                    (home, local)
                };
                let mut g1 = self.groups[first].shards[s].write();
                let mut g2 = self.groups[second].shards[s].write();
                install(&mut g1, &mut g2);
            }
        "#);
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn ordered_pair_used_backwards_is_flagged() {
        let diags = run(r#"
            fn promote(&self, cell: u32, local: usize, home: usize) {
                let s = self.shard_of(cell);
                let (first, second) = if local < home {
                    (local, home)
                } else {
                    (home, local)
                };
                let mut g2 = self.groups[second].shards[s].write();
                let mut g1 = self.groups[first].shards[s].write();
                install(&mut g1, &mut g2);
            }
        "#);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn sequential_guards_in_disjoint_scopes_pass() {
        let diags = run(r#"
            fn insert(&self, cell: u32) -> bool {
                if fast_path {
                    let mut home_guard = self.groups[home].shards[s].write();
                    home_guard.touch();
                    drop(home_guard);
                }
                {
                    let shard = self.groups[local].shards[s].read();
                    if shard.contains(&cell) { return true; }
                }
                let shard = self.groups[home].shards[s].read();
                shard.contains(&cell)
            }
        "#);
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn reversed_guard_sweep_is_flagged_and_index_order_passes() {
        let bad = run(r#"
            fn mirror(&self, s: usize) {
                let mut guards: Vec<_> =
                    self.groups.iter().rev().map(|g| g.shards[s].write()).collect();
                use_all(&mut guards);
            }
        "#);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].item, "guard-sweep");

        let good = run(r#"
            fn mirror(&self, s: usize) {
                let mut guards: Vec<_> =
                    self.groups.iter().map(|g| g.shards[s].write()).collect();
                use_all(&mut guards);
            }
        "#);
        assert!(good.is_empty(), "false positives: {good:?}");
    }
}
