//! The rule engine: one module per rule, each grounded in a documented
//! workspace invariant (see `docs/ANALYSIS.md`).

pub mod channel_discipline;
pub mod durability;
pub mod env_doc;
pub mod lock_order;
pub mod no_alloc_hot;
pub mod panic_free;
pub mod sim_determinism;
pub mod unsafe_audit;

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;
use std::path::Path;

/// A lint rule. Per-file rules implement [`Rule::check_file`]; cross-file
/// rules (drift checks) implement [`Rule::check_workspace`].
pub trait Rule {
    /// The rule's name as shown in diagnostics and matched by the allowlist.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Checks a single file.
    fn check_file(&self, _file: &SourceFile, _cfg: &Config, _out: &mut Vec<Diagnostic>) {}

    /// Checks cross-file invariants; `root` is the workspace root (for
    /// reading non-Rust artifacts such as docs).
    fn check_workspace(
        &self,
        _files: &[SourceFile],
        _root: &Path,
        _cfg: &Config,
        _out: &mut Vec<Diagnostic>,
    ) {
    }
}

/// Every registered rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(no_alloc_hot::NoAllocHot),
        Box::new(sim_determinism::SimDeterminism),
        Box::new(unsafe_audit::UnsafeAudit),
        Box::new(channel_discipline::ChannelDiscipline),
        Box::new(env_doc::EnvDoc),
        Box::new(durability::DurabilityDiscipline),
        Box::new(panic_free::PanicFreeOperators),
    ]
}
