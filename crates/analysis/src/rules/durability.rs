//! `durability-discipline`: persistence code writes through the framed
//! writer, and every fsync states why it is there.
//!
//! The durability layer's recovery invariant (longest-valid-prefix replay)
//! holds only if *every* byte in the operation log and the snapshots went
//! through the length-prefixed, CRC-framed writer — a bare `write_all` of
//! unframed bytes in a persist path silently produces a file the recovery
//! scanner will truncate at. And the placement of each `sync_all` /
//! `sync_data` / `fsync` call is itself a correctness argument (what must be
//! on disk before what), so each call site carries a `// DURABILITY:`
//! comment stating the ordering it enforces, exactly as `unsafe` carries
//! `// SAFETY:`. Files under a `persist-path <prefix>` directive are the
//! framed-write scope; the fsync-comment requirement is workspace-wide.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// How many lines above the call an attached comment may start (mirrors the
/// `unsafe-audit` window).
const ATTACH_WINDOW: u32 = 3;

/// Methods that force data to stable storage.
const FSYNC_METHODS: &[&str] = &["sync_all", "sync_data", "fsync"];

/// See module docs.
pub struct DurabilityDiscipline;

impl Rule for DurabilityDiscipline {
    fn name(&self) -> &'static str {
        "durability-discipline"
    }

    fn description(&self) -> &'static str {
        "persist paths write via the framed writer; every fsync call carries a DURABILITY comment"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        for i in 0..file.code_len() {
            if file.is_test_code(i) {
                continue;
            }
            let Some(name) = file.ident_at(i) else {
                continue;
            };
            // only method/path calls: `.name(` or `::name(`
            let called = i + 1 < file.code_len()
                && file.is_punct(i + 1, "(")
                && i > 0
                && (file.is_punct(i - 1, ".") || file.is_punct(i - 1, "::"));
            if !called {
                continue;
            }
            if name == "write_all" && cfg.is_persist_path(&file.rel_path) {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: file.line_of(i),
                    item: "write_all".to_string(),
                    message: "bare `write_all` in a persist path: recovery only understands \
                              framed records — write through the framed writer (or carry an \
                              audited allow if this *is* the framed writer)"
                        .to_string(),
                });
            }
            if FSYNC_METHODS.contains(&name) && !has_durability_comment(file, i) {
                out.push(Diagnostic {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: file.line_of(i),
                    item: name.to_string(),
                    message: format!(
                        "`{name}` without a `// DURABILITY:` comment stating the write-ordering \
                         it enforces"
                    ),
                });
            }
        }
    }
}

/// A comment mentioning DURABILITY ends within the window just above the
/// call (or on the same line).
fn has_durability_comment(file: &SourceFile, code_idx: usize) -> bool {
    let line = file.line_of(code_idx);
    file.tokens.iter().any(|t| {
        t.is_comment()
            && t.line <= line
            && t.line + ATTACH_WINDOW >= line
            && t.text.contains("DURABILITY")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = Config::parse("persist-path crates/persist/src\n").unwrap();
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        DurabilityDiscipline.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn bare_write_all_in_a_persist_path_is_flagged() {
        let diags = run(
            "crates/persist/src/oplog.rs",
            "fn dump(&mut self) { self.file.write_all(&self.buf).unwrap(); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].item, "write_all");
    }

    #[test]
    fn write_all_outside_persist_paths_is_not_this_rules_business() {
        let diags = run(
            "crates/bench/src/json.rs",
            "fn dump(&mut self) { self.file.write_all(&self.buf).unwrap(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn undocumented_fsync_is_flagged_everywhere() {
        let diags = run(
            "crates/bench/src/json.rs",
            "fn publish(f: &File) { f.sync_all().unwrap(); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].item, "sync_all");
    }

    #[test]
    fn documented_fsync_passes_and_builder_write_is_ignored() {
        let diags = run(
            "crates/persist/src/oplog.rs",
            r#"
            fn reopen(path: &Path) -> File {
                let f = OpenOptions::new().write(true).open(path).unwrap();
                // DURABILITY: truncation must be on disk before new appends
                // extend the file.
                f.sync_all().unwrap();
                f
            }
            "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn the_window_does_not_reach_across_unrelated_code() {
        let diags = run(
            "crates/persist/src/frame.rs",
            r#"
            fn a(f: &File) {
                // DURABILITY: belongs to the call below.
                f.sync_all().unwrap();
            }
            fn far(f: &File) {
                let x = 1;
                let y = 2;
                let z = x + y;
                f.sync_data().unwrap();
            }
            "#,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].item, "sync_data");
    }
}
