//! `no-alloc-hot`: declared hot functions must not allocate.
//!
//! The GI² matching kernel (PR 5) is allocation-free by design — its ~3.5x
//! throughput gain evaporates if a future change reintroduces a per-object
//! `Vec` or `HashSet`. Functions declared via `hot <path> <fn>…` in
//! `ps2lint.allow` may not contain fresh-container constructors or
//! allocating conversions. Pushing into *recycled* caller buffers
//! (`scratch.results.push(..)`) is fine — amortized growth is the design —
//! so `push`/`extend`/`entry` are deliberately not flagged; the rule targets
//! per-call container construction, the regression class PR 5 eliminated.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// Container types whose `new`/`with_capacity`/`from` mean a fresh heap
/// allocation per call.
const CONTAINER_TYPES: &[&str] = &[
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Rc", "Arc",
];

/// Constructor names that allocate on the container types above.
const CONSTRUCTORS: &[&str] = &["new", "with_capacity", "from", "default"];

/// Method calls that allocate a fresh container from borrowed data.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "into_owned"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// See module docs.
pub struct NoAllocHot;

impl Rule for NoAllocHot {
    fn name(&self) -> &'static str {
        "no-alloc-hot"
    }

    fn description(&self) -> &'static str {
        "declared hot functions (matching kernel, candidate traversal, routing probes) must not allocate"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let Some(hot) = cfg.hot_fns_for(&file.rel_path) else {
            return;
        };
        for span in file.functions() {
            if !hot.iter().any(|h| h == &span.name) {
                continue;
            }
            for i in span.body_start..=span.body_end {
                if let Some(found) = allocation_at(file, i) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: file.line_of(i),
                        item: found.clone(),
                        message: format!(
                            "hot function `{}` is declared allocation-free but contains `{}`",
                            span.name, found
                        ),
                    });
                }
            }
        }
    }
}

/// If code token `i` starts an allocating construct, returns its item key.
fn allocation_at(file: &SourceFile, i: usize) -> Option<String> {
    let id = file.ident_at(i)?;
    // `Type::constructor`
    if CONTAINER_TYPES.contains(&id) && i + 2 < file.code_len() && file.is_punct(i + 1, "::") {
        if let Some(ctor) = file.ident_at(i + 2) {
            if CONSTRUCTORS.contains(&ctor) {
                return Some(format!("{id}::{ctor}"));
            }
        }
    }
    // `.collect()` / `.to_vec()` / …
    if ALLOC_METHODS.contains(&id) && i > 0 && file.is_punct(i - 1, ".") {
        return Some(id.to_string());
    }
    // `vec![…]` / `format!(…)`
    if ALLOC_MACROS.contains(&id) && i + 1 < file.code_len() && file.is_punct(i + 1, "!") {
        return Some(format!("{id}!"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        let cfg = Config::parse("hot crates/x/src/hot.rs kernel traverse\n").unwrap();
        let file = SourceFile::parse("crates/x/src/hot.rs", src);
        let mut out = Vec::new();
        NoAllocHot.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn violating_hot_function_is_flagged() {
        let diags = run(r#"
            pub fn kernel(input: &[u32], out: &mut Vec<u32>) {
                let staging: Vec<u32> = input.iter().copied().collect();
                let label = format!("{}", staging.len());
                let dedup = std::collections::HashSet::new();
                out.push(label.len() as u32 + dedup.len() as u32);
            }
        "#);
        let items: Vec<_> = diags.iter().map(|d| d.item.as_str()).collect();
        assert!(items.contains(&"collect"), "items: {items:?}");
        assert!(items.contains(&"format!"));
        assert!(items.contains(&"HashSet::new"));
    }

    #[test]
    fn clean_hot_function_and_cold_neighbors_pass() {
        let diags = run(r#"
            pub fn kernel(input: &[u32], scratch: &mut Scratch) {
                scratch.results.clear();
                for &x in input {
                    if scratch.first_visit(x) {
                        scratch.results.push(x);
                    }
                }
            }
            /// Cold path: may allocate freely — not in the hot set.
            pub fn cold_report(input: &[u32]) -> Vec<String> {
                input.iter().map(|x| format!("{x}")).collect()
            }
        "#);
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn type_annotations_are_not_constructors() {
        // `Vec<u32>` in a signature or let-type is not an allocation
        let diags = run(r#"
            pub fn traverse(list: &mut Vec<u32>) -> Option<u32> {
                let first: Option<&u32> = list.first();
                first.copied()
            }
        "#);
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }
}
