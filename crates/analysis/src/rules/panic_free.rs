//! `panic-free-operators`: operator code must not abort the pipeline.
//!
//! PR 10's supervised pipeline turns worker failures into recoverable events
//! (respawn from the shadow subscription log, replay of parked records). A
//! stray `unwrap()` in an operator defeats that machinery: the panic tears
//! down an executor the supervisor was built to keep alive, and on the
//! thread backend it poisons the whole run. `unwrap()`, `expect()` and
//! `panic!` in operator code (`operator-path` prefixes in `ps2lint.allow`)
//! therefore require an audited `allow` entry whose justification states why
//! the site cannot fire at runtime (startup-only, invariant guarded by a
//! prior check, …). Assertion macros (`assert!`, `unreachable!`,
//! `debug_assert!`) are out of scope — they document invariants rather than
//! swallow `Result`s.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// See module docs.
pub struct PanicFreeOperators;

impl Rule for PanicFreeOperators {
    fn name(&self) -> &'static str {
        "panic-free-operators"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic! in operator code needs an audited allow entry"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !cfg.is_operator_path(&file.rel_path) || file.is_test_path {
            return;
        }
        for i in 0..file.code_len() {
            if file.is_test_code(i) {
                continue;
            }
            // `.unwrap(` / `.expect(` — a method call consuming a
            // Result/Option by aborting (names like `unwrap_or` lex as one
            // distinct identifier and never reach here)
            let item = if file.is_punct(i, ".")
                && i + 2 < file.code_len()
                && file.is_punct(i + 2, "(")
                && matches!(file.ident_at(i + 1), Some("unwrap") | Some("expect"))
            {
                file.ident_at(i + 1).unwrap().to_string()
            // `panic!` — an explicit abort (`panic::catch_unwind` is a path,
            // not a macro bang, and does not match)
            } else if file.is_ident(i, "panic")
                && i + 1 < file.code_len()
                && file.is_punct(i + 1, "!")
            {
                "panic!".to_string()
            } else {
                continue;
            };
            out.push(Diagnostic {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: file.line_of(i),
                item: item.clone(),
                message: format!(
                    "`{item}` in operator code aborts an executor the supervisor is \
                     built to keep alive; return an error, degrade, or add an \
                     audited allow entry"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = Config::parse("operator-path crates/core/src\n").unwrap();
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        PanicFreeOperators.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn aborts_in_operator_code_are_flagged() {
        let diags = run(
            "crates/core/src/worker.rs",
            r#"
            fn handle(&mut self) {
                let v = self.rx.recv().unwrap();
                let w = self.table.get(&v).expect("routed");
                if w.is_stale() {
                    panic!("stale route");
                }
            }
        "#,
        );
        let items: Vec<_> = diags.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, ["unwrap", "expect", "panic!"]);
    }

    #[test]
    fn fallible_combinators_and_assertions_pass() {
        let diags = run(
            "crates/core/src/worker.rs",
            r#"
            fn handle(&mut self) {
                let v = self.rx.recv().unwrap_or_default();
                let w = self.cache.get(&v).unwrap_or_else(|| self.rebuild(v));
                assert!(w.is_live());
                match w.kind() {
                    Kind::Known(k) => self.apply(k),
                    Kind::Other => unreachable!("validated on ingest"),
                }
                let guard = std::panic::catch_unwind(|| w.run());
                drop(guard);
            }
        "#,
        );
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn test_code_and_non_operator_paths_are_out_of_scope() {
        let diags = run(
            "crates/core/src/worker.rs",
            r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { make().unwrap(); }
            }
        "#,
        );
        assert!(diags.is_empty());
        let diags = run(
            "crates/bench/src/lib.rs",
            "fn f() { run().unwrap(); panic!(\"boom\"); }",
        );
        assert!(diags.is_empty());
    }
}
