//! `channel-discipline`: `unbounded()` channels only in audited backend
//! modules, never in new operators.
//!
//! Backpressure is what keeps the pipeline's memory bounded under the
//! churn-storm and flash-crowd regimes (Adaptive Processing, PAPERS.md). The
//! audited exceptions are structural: the channel constructors themselves,
//! the cooperative/sim backend (whose tasks must never block mid-poll), and
//! the worker command channels the migration barrier relies on. Anything
//! else asking for an unbounded queue is a reviewable decision, not a
//! default.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// See module docs.
pub struct ChannelDiscipline;

impl Rule for ChannelDiscipline {
    fn name(&self) -> &'static str {
        "channel-discipline"
    }

    fn description(&self) -> &'static str {
        "unbounded() channel construction outside allowlisted backend modules"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let _ = cfg;
        if file.is_test_path {
            return;
        }
        for i in 0..file.code_len() {
            if file.is_test_code(i) || !file.is_ident(i, "unbounded") {
                continue;
            }
            // a *call*: `unbounded(` or `unbounded::<T>(`; bare mentions
            // (imports, re-exports, fn definitions) are not construction
            let next_is_call = i + 1 < file.code_len()
                && (file.is_punct(i + 1, "(") || file.is_punct(i + 1, "::"));
            if !next_is_call {
                continue;
            }
            // skip the definition site itself: `fn unbounded…`
            if i > 0 && file.is_ident(i - 1, "fn") {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                path: file.rel_path.clone(),
                line: file.line_of(i),
                item: "unbounded".to_string(),
                message: "unbounded channel outside the audited backend modules: use a bounded \
                          channel (backpressure) or add an allow entry with a justification"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = Config::default();
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        ChannelDiscipline.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn unbounded_calls_in_operator_code_are_flagged() {
        let diags = run(
            "crates/core/src/new_operator.rs",
            r#"
            fn wire(&self) {
                let (tx, rx) = unbounded::<Job>();
                let (tx2, rx2) = channel::unbounded();
                use_all(tx, rx, tx2, rx2);
            }
        "#,
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn bounded_channels_imports_and_tests_pass() {
        let diags = run(
            "crates/core/src/new_operator.rs",
            r#"
            use ps2stream_stream::{bounded, unbounded, Receiver};
            pub fn unbounded_reexport_mention() {}
            fn wire(&self) {
                let (tx, rx) = bounded::<Job>(64);
                use_both(tx, rx);
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let (_tx, _rx) = super::unbounded::<u32>(); }
            }
        "#,
        );
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn definition_site_is_not_a_call() {
        let diags = run(
            "crates/stream/src/channel.rs",
            "pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) { wrap(inner()) }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
