//! `unsafe-audit`: every `unsafe` block, function or impl carries a
//! `// SAFETY:` comment.
//!
//! The workspace has very little `unsafe` (FFI affinity calls, one
//! `ManuallyDrop` in the channel wrapper) — exactly why each occurrence must
//! state its proof obligation where the next reader will see it. The comment
//! may sit on the same line, up to three lines above, or inside the unsafe
//! block itself; `/// # Safety` doc headers on `unsafe fn` also count.

use super::Rule;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// How many lines above the `unsafe` token an attached comment may start.
const ATTACH_WINDOW: u32 = 3;

/// See module docs.
pub struct UnsafeAudit;

impl Rule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }

    fn description(&self) -> &'static str {
        "every unsafe block/fn/impl needs an attached SAFETY comment"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let _ = cfg;
        for i in 0..file.code_len() {
            if !file.is_ident(i, "unsafe") {
                continue;
            }
            let line = file.line_of(i);
            if has_safety_comment(file, i, line) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                path: file.rel_path.clone(),
                line,
                item: "unsafe".to_string(),
                message: "unsafe without a `// SAFETY:` comment stating why the invariants hold"
                    .to_string(),
            });
        }
    }
}

fn has_safety_comment(file: &SourceFile, code_idx: usize, line: u32) -> bool {
    let mentions_safety =
        |text: &str| text.contains("SAFETY") || text.contains("Safety") || text.contains("safety");
    // a comment ending within the window just above (or on the same line)
    let above = file.tokens.iter().any(|t| {
        t.is_comment()
            && t.line <= line
            && t.line + ATTACH_WINDOW >= line
            && mentions_safety(&t.text)
    });
    if above {
        return true;
    }
    // or inside the unsafe block's braces
    if let Some(open) = (code_idx + 1..file.code_len()).find(|&j| {
        // stop scanning at statement end — an `unsafe impl Send for X {}`
        // body or `unsafe {}` block both open within a few tokens
        file.is_punct(j, "{") || file.is_punct(j, ";")
    }) {
        if file.is_punct(open, "{") {
            let close = {
                let mut depth = 0usize;
                let mut end = open;
                for j in open..file.code_len() {
                    if file.is_punct(j, "{") {
                        depth += 1;
                    } else if file.is_punct(j, "}") {
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break;
                        }
                    }
                }
                end
            };
            let (start_tok, end_tok) = (file.code[open], file.code[close]);
            return file.tokens[start_tok..=end_tok]
                .iter()
                .any(|t| t.is_comment() && mentions_safety(&t.text));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        UnsafeAudit.check_file(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let diags = run(r#"
            fn pin(cpu: usize) -> bool {
                unsafe { sched_setaffinity(0, 8, MASK.as_ptr()) == 0 }
            }
        "#);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].item, "unsafe");
    }

    #[test]
    fn documented_unsafe_passes_in_all_accepted_positions() {
        let diags = run(r#"
            fn above() {
                // SAFETY: the mask outlives the call; pid 0 is the calling thread.
                unsafe { sched_setaffinity(0, 8, MASK.as_ptr()) };
            }
            fn inside() {
                unsafe {
                    // SAFETY: `inner` is never used again; Drop runs exactly once.
                    ManuallyDrop::drop(&mut self.inner)
                };
            }
            /// Does raw things.
            ///
            /// # Safety
            /// Caller must uphold the aliasing rules.
            pub unsafe fn raw(ptr: *mut u8) { touch(ptr) }
        "#);
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn the_window_does_not_reach_across_unrelated_code() {
        let diags = run(r#"
            fn a() {
                // SAFETY: this comment belongs to the call below.
                unsafe { documented() };
            }
            fn far_away() {
                let x = 1;
                let y = 2;
                let z = 3;
                let w = x + y + z;
                unsafe { undocumented(w) };
            }
        "#);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].line > 7);
    }
}
