//! The `ps2lint.allow` file: rule configuration plus the audited allowlist.
//!
//! Line-oriented, hand-parsed (no TOML dependency). Blank lines and `#`
//! comments are ignored. Directives:
//!
//! ```text
//! hot <path> <fn> [<fn> …]       # declare allocation-free hot functions
//! lock-order <path>              # file whose nested shard locks are checked
//! operator-path <path-prefix>    # operator code for sim-determinism scope
//! persist-path <path-prefix>     # durable-storage code (durability-discipline scope)
//! allow <rule> <path> <item> :: <justification>
//! ```
//!
//! An `allow` line suppresses diagnostics of `rule` in `path` whose item key
//! (e.g. `Instant::now`, `unbounded`, a `PS2_*` variable) equals `<item>`
//! (`*` matches any item). The justification after `::` is mandatory — it is
//! what `ps2lint --explain` prints, making every exemption an audited,
//! greppable decision instead of a silent hole.

/// One audited `allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry applies to.
    pub rule: String,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Item key within the rule (`*` = any).
    pub item: String,
    /// One-line justification (printed by `--explain`).
    pub why: String,
    /// 1-based line in the allowlist file (for stale-entry reporting).
    pub line: u32,
}

/// Parsed configuration + allowlist.
#[derive(Debug, Default)]
pub struct Config {
    /// `(path, hot function names)` — bodies that must not allocate.
    pub hot: Vec<(String, Vec<String>)>,
    /// Files whose nested shard-lock acquisitions are order-checked.
    pub lock_order_files: Vec<String>,
    /// Path prefixes holding operator code (sim-determinism scope).
    pub operator_paths: Vec<String>,
    /// Path prefixes holding durable-storage code (durability-discipline
    /// framed-write scope).
    pub persist_paths: Vec<String>,
    /// Audited exemptions.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parses the allowlist text. Returns `Err` with a line-tagged message on
    /// malformed directives — a broken allowlist must fail the lint run, not
    /// silently allow everything.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().unwrap();
            match directive {
                "hot" => {
                    let path = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: `hot` needs a path"))?;
                    let fns: Vec<String> = words.map(str::to_string).collect();
                    if fns.is_empty() {
                        return Err(format!(
                            "line {line_no}: `hot {path}` declares no functions"
                        ));
                    }
                    cfg.hot.push((path.to_string(), fns));
                }
                "lock-order" => {
                    let path = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: `lock-order` needs a path"))?;
                    cfg.lock_order_files.push(path.to_string());
                }
                "operator-path" => {
                    let path = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: `operator-path` needs a prefix"))?;
                    cfg.operator_paths.push(path.to_string());
                }
                "persist-path" => {
                    let path = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: `persist-path` needs a prefix"))?;
                    cfg.persist_paths.push(path.to_string());
                }
                "allow" => {
                    // the separator is ` :: ` with spaces — item keys like
                    // `Instant::now` contain bare `::`
                    let (head, why) = line.split_once(" :: ").ok_or_else(|| {
                        format!("line {line_no}: `allow` needs a ` :: justification`")
                    })?;
                    let why = why.trim();
                    if why.is_empty() {
                        return Err(format!("line {line_no}: empty justification"));
                    }
                    let parts: Vec<&str> = head.split_whitespace().collect();
                    if parts.len() != 4 {
                        return Err(format!(
                            "line {line_no}: expected `allow <rule> <path> <item> :: why`, got {} fields",
                            parts.len()
                        ));
                    }
                    cfg.allows.push(AllowEntry {
                        rule: parts[1].to_string(),
                        path: parts[2].to_string(),
                        item: parts[3].to_string(),
                        why: why.to_string(),
                        line: line_no,
                    });
                }
                other => {
                    return Err(format!("line {line_no}: unknown directive `{other}`"));
                }
            }
        }
        Ok(cfg)
    }

    /// Hot-function names declared for `path`, if any.
    pub fn hot_fns_for(&self, path: &str) -> Option<&[String]> {
        self.hot
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, fns)| fns.as_slice())
    }

    /// True if `path` is under any declared operator-code prefix.
    pub fn is_operator_path(&self, path: &str) -> bool {
        self.operator_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// True if `path` is under any declared persist-code prefix.
    pub fn is_persist_path(&self, path: &str) -> bool {
        self.persist_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let cfg = Config::parse(
            "# comment\n\
             hot crates/index/src/gi2.rs match_batch match_object_into\n\
             lock-order crates/partition/src/registry.rs\n\
             operator-path crates/core/src\n\
             allow sim-determinism crates/core/src/worker.rs Instant::now :: timing metrics only\n",
        )
        .unwrap();
        assert_eq!(
            cfg.hot_fns_for("crates/index/src/gi2.rs").unwrap(),
            ["match_batch", "match_object_into"]
        );
        assert!(cfg.is_operator_path("crates/core/src/worker.rs"));
        assert!(!cfg.is_operator_path("crates/bench/src/lib.rs"));
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].item, "Instant::now");
        assert_eq!(cfg.allows[0].why, "timing metrics only");
    }

    #[test]
    fn malformed_lines_are_errors_not_silent_allows() {
        assert!(Config::parse("allow sim-determinism a.rs Instant::now\n").is_err());
        assert!(Config::parse("allow x y z :: \n").is_err());
        assert!(Config::parse("frobnicate everything\n").is_err());
        assert!(Config::parse("hot crates/x/src/lib.rs\n").is_err());
    }
}
