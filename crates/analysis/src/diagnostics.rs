//! Diagnostics and the lint report.

use crate::config::{AllowEntry, Config};

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired (e.g. `no-alloc-hot`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Item key the allowlist matches on (e.g. `Instant::now`, `unbounded`,
    /// `Vec::new`, a `PS2_*` variable name).
    pub item: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders as `path:line: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived the allowlist — any entry here fails the run.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by an allow entry, paired with the index of the
    /// entry (into [`Config::allows`]) that matched.
    pub suppressed: Vec<(Diagnostic, usize)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Splits raw diagnostics into violations and allowlisted suppressions.
    pub fn from_diagnostics(diags: Vec<Diagnostic>, cfg: &Config) -> Report {
        let mut report = Report::default();
        for d in diags {
            match cfg
                .allows
                .iter()
                .position(|a| a.rule == d.rule && a.path == d.path && matches_item(a, &d))
            {
                Some(idx) => report.suppressed.push((d, idx)),
                None => report.violations.push(d),
            }
        }
        report
            .violations
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        report
    }

    /// True if the run is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Allow entries (by index) that suppressed nothing this run — candidates
    /// for deletion, surfaced by `--explain`.
    pub fn stale_allows(&self, cfg: &Config) -> Vec<usize> {
        (0..cfg.allows.len())
            .filter(|i| !self.suppressed.iter().any(|(_, idx)| idx == i))
            .collect()
    }
}

fn matches_item(a: &AllowEntry, d: &Diagnostic) -> bool {
    a.item == "*" || a.item == d.item
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, item: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            item: item.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn allow_entries_suppress_exactly_their_key() {
        let cfg = Config::parse(
            "allow r crates/a.rs Instant::now :: why\n\
             allow r crates/b.rs * :: blanket\n",
        )
        .unwrap();
        let report = Report::from_diagnostics(
            vec![
                diag("r", "crates/a.rs", "Instant::now"),     // suppressed
                diag("r", "crates/a.rs", "thread_rng"),       // different item
                diag("r", "crates/b.rs", "anything"),         // wildcard
                diag("other", "crates/a.rs", "Instant::now"), // different rule
            ],
            &cfg,
        );
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.suppressed.len(), 2);
        assert!(report.stale_allows(&cfg).is_empty());
    }

    #[test]
    fn stale_allows_are_reported() {
        let cfg = Config::parse("allow r crates/unused.rs * :: obsolete\n").unwrap();
        let report = Report::from_diagnostics(vec![], &cfg);
        assert!(report.is_clean());
        assert_eq!(report.stale_allows(&cfg), vec![0]);
    }
}
