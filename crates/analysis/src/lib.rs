//! `ps2stream-analysis` — in-tree static analysis for the PS2Stream
//! workspace, and the library behind the `ps2lint` binary.
//!
//! The last several PRs established invariants that are load-bearing for the
//! paper's throughput/latency figures but were enforced only by comments:
//! ascending-group lock order in the NUMA term registry, the allocation-free
//! matching kernel, seeded-simulation determinism, audited `unsafe`, and
//! bounded channels in operator code. This crate lexes the workspace's Rust
//! sources with a hand-rolled lexer (no `syn`/`proc-macro2` — the build is
//! offline with vendored deps) and runs a rule engine over the token
//! streams, with `file:line` diagnostics and a checked-in, justification-
//! carrying allowlist (`ps2lint.allow`). See `docs/ANALYSIS.md` for the rule
//! catalogue and how to add one.
//!
//! # Example
//!
//! ```
//! use ps2stream_analysis::{config::Config, diagnostics::Report, source::SourceFile};
//! use ps2stream_analysis::rules::{all_rules, Rule};
//!
//! let cfg = Config::parse("operator-path crates/core/src\n").unwrap();
//! let file = SourceFile::parse(
//!     "crates/core/src/op.rs",
//!     "fn tick(&mut self) { let t = Instant::now(); self.observe(t); }",
//! );
//! let mut diags = Vec::new();
//! for rule in all_rules() {
//!     rule.check_file(&file, &cfg, &mut diags);
//! }
//! let report = Report::from_diagnostics(diags, &cfg);
//! assert_eq!(report.violations.len(), 1); // Instant::now in operator code
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;

use config::Config;
use diagnostics::Report;
use rules::all_rules;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that contain lintable Rust sources.
/// `vendor/` (offline stand-ins for external crates) and `target/` are
/// deliberately out of scope.
const SCAN_ROOTS: &[&str] = &["crates", "examples", "tests"];

/// Runs every rule over the workspace at `root` with the given
/// configuration, returning the allowlist-filtered report.
pub fn run_lint(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut rel_paths = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(root, &root.join(scan), &mut rel_paths)?;
    }
    rel_paths.sort();
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in &rel_paths {
        let text = std::fs::read_to_string(root.join(rel))?;
        files.push(SourceFile::parse(&rel.replace('\\', "/"), &text));
    }
    let mut diags = Vec::new();
    for rule in all_rules() {
        for file in &files {
            rule.check_file(file, cfg, &mut diags);
        }
        rule.check_workspace(&files, root, cfg, &mut diags);
    }
    let mut report = Report::from_diagnostics(diags, cfg);
    report.files_scanned = files.len();
    Ok(report)
}

/// Loads the allowlist at `root/ps2lint.allow` (an absent file is an empty
/// configuration — every rule then runs with no exemptions).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("ps2lint.allow");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Config::default()),
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // scan root absent (e.g. fixture trees without tests/)
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// The workspace root for self-tests: two levels up from this crate.
#[doc(hidden)]
pub fn workspace_root_for_tests() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}
