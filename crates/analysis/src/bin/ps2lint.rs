//! `ps2lint` — the workspace's static-analysis gate.
//!
//! ```text
//! ps2lint [--root <dir>] [--allow <file>] [--explain] [--list-rules]
//! ```
//!
//! Exits 0 when the tree is clean, 1 on violations, 2 on usage or I/O
//! errors. Wired as a blocking CI step; see `docs/ANALYSIS.md`.

use ps2stream_analysis::config::Config;
use ps2stream_analysis::rules::all_rules;
use ps2stream_analysis::{load_config, run_lint};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut explain = false;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(f) => allow_path = Some(PathBuf::from(f)),
                None => return usage("--allow needs a file"),
            },
            "--explain" => explain = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "ps2lint [--root <dir>] [--allow <file>] [--explain] [--list-rules]\n\
                     Static analysis over the PS2Stream workspace; see docs/ANALYSIS.md."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in all_rules() {
            println!("{:<20} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let cfg: Config = match allow_path {
        Some(p) => {
            let text = match std::fs::read_to_string(&p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ps2lint: cannot read {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            match Config::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ps2lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => match load_config(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ps2lint: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let report = match run_lint(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ps2lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.violations {
        println!("{}", d.render());
    }

    if explain {
        println!("-- audited allowlist ({} entries) --", cfg.allows.len());
        for (idx, a) in cfg.allows.iter().enumerate() {
            let hits = report.suppressed.iter().filter(|(_, i)| *i == idx).count();
            println!(
                "[{}] {} {} — {} ({} suppression{})",
                a.rule,
                a.path,
                a.item,
                a.why,
                hits,
                if hits == 1 { "" } else { "s" }
            );
        }
        for idx in report.stale_allows(&cfg) {
            let a = &cfg.allows[idx];
            println!(
                "warning: stale allow entry (line {}): [{}] {} {} suppressed nothing",
                a.line, a.rule, a.path, a.item
            );
        }
    }

    println!(
        "ps2lint: {} file(s), {} violation(s), {} suppressed by the allowlist",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "ps2lint: {msg}\nusage: ps2lint [--root <dir>] [--allow <file>] [--explain] [--list-rules]"
    );
    ExitCode::from(2)
}
