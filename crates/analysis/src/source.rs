//! A lexed source file plus the structural views the rules share:
//! comment-free code tokens, a `#[cfg(test)]` mask, and function spans.

use crate::lexer::{lex, Token, TokenKind};

/// One lexed workspace file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (diagnostic identity and
    /// the key the allowlist matches on).
    pub rel_path: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into [`SourceFile::tokens`] of the non-comment tokens.
    pub code: Vec<usize>,
    /// Per *code index*: true if the token sits inside a `#[cfg(test)]`
    /// item (rules about runtime behaviour skip test code).
    pub test_mask: Vec<bool>,
    /// True for files under `tests/`, `benches/` or `examples/` directories:
    /// the whole file is test/driver code.
    pub is_test_path: bool,
}

impl SourceFile {
    /// Lexes `text` into a file model. `rel_path` should use forward slashes.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let is_test_path = rel_path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            code,
            test_mask: Vec::new(),
            is_test_path,
        };
        file.test_mask = file.compute_test_mask();
        file
    }

    /// Number of code (non-comment) tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The `i`-th code token.
    pub fn ct(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// The text of the `i`-th code token if it is an identifier.
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        let t = self.ct(i);
        (t.kind == TokenKind::Ident).then_some(t.text.as_str())
    }

    /// True if code token `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.ident_at(i) == Some(name)
    }

    /// True if code token `i` is the punctuation `p`.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        let t = self.ct(i);
        t.kind == TokenKind::Punct && t.text == p
    }

    /// 1-based line of code token `i`.
    pub fn line_of(&self, i: usize) -> u32 {
        self.ct(i).line
    }

    /// True if code token `i` lies inside a `#[cfg(test)]` item or the file
    /// is under a test/bench/example path.
    pub fn is_test_code(&self, i: usize) -> bool {
        self.is_test_path || self.test_mask[i]
    }

    /// Marks code-token ranges covered by `#[cfg(test)]`-gated items.
    fn compute_test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.code.len()];
        let mut i = 0usize;
        while i < self.code.len() {
            if self.is_punct(i, "#") && i + 1 < self.code.len() && self.is_punct(i + 1, "[") {
                let attr_end = self.matching_close(i + 1, "[", "]");
                let is_cfg_test = self.is_ident(i + 2, "cfg")
                    && (i + 3..attr_end).any(|j| self.is_ident(j, "test"));
                if is_cfg_test {
                    // skip any further attributes, then mark the whole item
                    let mut j = attr_end + 1;
                    while j + 1 < self.code.len()
                        && self.is_punct(j, "#")
                        && self.is_punct(j + 1, "[")
                    {
                        j = self.matching_close(j + 1, "[", "]") + 1;
                    }
                    let end = self.item_end(j);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
            i += 1;
        }
        mask
    }

    /// Given the code index of an opening delimiter, returns the index of its
    /// matching close (or the last token on imbalance).
    fn matching_close(&self, open: usize, open_p: &str, close_p: &str) -> usize {
        let mut depth = 0usize;
        for j in open..self.code.len() {
            if self.is_punct(j, open_p) {
                depth += 1;
            } else if self.is_punct(j, close_p) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// End of the item starting at code index `start`: the matching `}` of
    /// its first top-level brace, or the first top-level `;`.
    fn item_end(&self, start: usize) -> usize {
        let mut paren = 0isize;
        let mut bracket = 0isize;
        for j in start..self.code.len() {
            if self.is_punct(j, "(") {
                paren += 1;
            } else if self.is_punct(j, ")") {
                paren -= 1;
            } else if self.is_punct(j, "[") {
                bracket += 1;
            } else if self.is_punct(j, "]") {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if self.is_punct(j, ";") {
                    return j;
                }
                if self.is_punct(j, "{") {
                    return self.matching_close(j, "{", "}");
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Every `fn` with a body, with the code-index range of that body
    /// (inclusive of its braces).
    pub fn functions(&self) -> Vec<FnSpan> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i + 1 < self.code.len() {
            if self.is_ident(i, "fn") {
                if let Some(name) = self.ident_at(i + 1) {
                    let name = name.to_string();
                    // find the body `{` at top-level paren/bracket depth;
                    // a `;` first means a bodyless declaration (extern block)
                    let mut paren = 0isize;
                    let mut bracket = 0isize;
                    let mut j = i + 2;
                    let mut body = None;
                    while j < self.code.len() {
                        if self.is_punct(j, "(") {
                            paren += 1;
                        } else if self.is_punct(j, ")") {
                            paren -= 1;
                        } else if self.is_punct(j, "[") {
                            bracket += 1;
                        } else if self.is_punct(j, "]") {
                            bracket -= 1;
                        } else if paren == 0 && bracket == 0 {
                            if self.is_punct(j, ";") {
                                break;
                            }
                            if self.is_punct(j, "{") {
                                body = Some((j, self.matching_close(j, "{", "}")));
                                break;
                            }
                        }
                        j += 1;
                    }
                    if let Some((open, close)) = body {
                        out.push(FnSpan {
                            name,
                            body_start: open,
                            body_end: close,
                        });
                        // nested fns are discovered by the continuing scan
                        i = open + 1;
                        continue;
                    }
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
        }
        out
    }
}

/// One function body (code-index range, braces inclusive).
#[derive(Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Code index of the body's `{`.
    pub body_start: usize,
    /// Code index of the body's `}`.
    pub body_end: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mask_covers_the_module() {
        let src = r#"
            pub fn live() { work(); }
            #[cfg(test)]
            mod tests {
                use super::*;
                #[test]
                fn t() { std::time::Instant::now(); }
            }
            pub fn also_live() {}
        "#;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut masked_idents = Vec::new();
        let mut open_idents = Vec::new();
        for i in 0..f.code_len() {
            if let Some(id) = f.ident_at(i) {
                if f.is_test_code(i) {
                    masked_idents.push(id.to_string());
                } else {
                    open_idents.push(id.to_string());
                }
            }
        }
        assert!(masked_idents.contains(&"Instant".to_string()));
        assert!(open_idents.contains(&"live".to_string()));
        assert!(open_idents.contains(&"also_live".to_string()));
        assert!(!open_idents.contains(&"Instant".to_string()));
    }

    #[test]
    fn cfg_attr_is_not_a_test_gate() {
        let src = r#"
            #[cfg_attr(test, allow(dead_code))]
            fn live() { marker(); }
        "#;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        for i in 0..f.code_len() {
            if f.is_ident(i, "marker") {
                assert!(!f.is_test_code(i), "cfg_attr must not mask live code");
            }
        }
    }

    #[test]
    fn test_paths_mask_whole_files() {
        let f = SourceFile::parse("crates/x/benches/b.rs", "fn main() {}");
        assert!(f.is_test_code(0));
        let f = SourceFile::parse("tests/integration.rs", "fn main() {}");
        assert!(f.is_test_code(0));
        let f = SourceFile::parse("crates/x/src/lib.rs", "fn main() {}");
        assert!(!f.is_test_code(0));
    }

    #[test]
    fn function_spans_include_generics_and_where_clauses() {
        let src = r#"
            extern "C" { fn ffi(x: i32) -> i32; }
            pub fn matcher<'a, I, F>(items: I, sink: F) -> &'a [u8]
            where
                I: Iterator<Item = &'a [u8]>,
                F: FnMut(usize),
            {
                inner();
                fn inner() {}
                &[]
            }
        "#;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let fns = f.functions();
        let names: Vec<_> = fns.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["matcher", "inner"]);
        let m = &fns[0];
        assert!((m.body_start..=m.body_end).any(|i| f.is_ident(i, "inner")));
    }
}
