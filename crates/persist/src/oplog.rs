//! The append-only operation log of query inserts and deletes.
//!
//! Each record is one frame (see [`crate::frame`]) whose payload is
//! `[seq: u64 LE][QueryUpdate wire bytes]` — `seq` is the global, monotonic
//! operation number assigned by the store. Loading scans the longest valid
//! frame prefix and additionally stops at the first payload that fails wire
//! decoding, so a damaged log always yields a clean prefix instead of an
//! error or a panic.

use crate::frame::{FrameScanner, FrameWriter, FsyncPolicy};
use ps2stream_model::wire;
use ps2stream_model::QueryUpdate;
use std::path::{Path, PathBuf};

/// One recovered log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedOp {
    /// Global operation number (monotonic across snapshots/compactions).
    pub seq: u64,
    /// The logged update.
    pub update: QueryUpdate,
}

/// The result of scanning a log file.
#[derive(Debug, Default)]
pub struct LoadedLog {
    /// Decoded operations of the longest valid prefix, in log order.
    pub ops: Vec<LoggedOp>,
    /// Bytes of that prefix (the truncation point for a torn tail).
    pub valid_bytes: u64,
    /// Total bytes found in the file.
    pub total_bytes: u64,
}

impl LoadedLog {
    /// True when the file carried bytes past the last valid record.
    pub fn has_torn_tail(&self) -> bool {
        self.valid_bytes < self.total_bytes
    }
}

/// Scans `path`, returning the decoded longest-valid-prefix. A missing file
/// is an empty log.
pub fn load_log(path: &Path) -> std::io::Result<LoadedLog> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadedLog::default()),
        Err(e) => return Err(e),
    };
    Ok(scan_log_bytes(&bytes))
}

/// Scans in-memory log bytes (the pure core of [`load_log`], used directly
/// by the robustness proptest).
pub fn scan_log_bytes(bytes: &[u8]) -> LoadedLog {
    let mut scanner = FrameScanner::new(bytes);
    let mut ops = Vec::new();
    let mut valid_bytes = 0u64;
    while let Some(payload) = scanner.next_payload() {
        if payload.len() < 8 {
            break; // framed but not even a seq: treat as end of prefix
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        match wire::decode_update_exact(&payload[8..]) {
            Ok(update) => ops.push(LoggedOp { seq, update }),
            Err(_) => break, // CRC-valid but undecodable: stop, never panic
        }
        valid_bytes = scanner.valid_len() as u64;
    }
    LoadedLog {
        ops,
        valid_bytes,
        total_bytes: bytes.len() as u64,
    }
}

/// The writable log handle.
pub struct OpLog {
    writer: FrameWriter,
    path: PathBuf,
    scratch: Vec<u8>,
}

impl OpLog {
    /// Creates a fresh (truncated) log at `path`.
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<Self> {
        Ok(Self {
            writer: FrameWriter::create(path, policy)?,
            path: path.to_path_buf(),
            scratch: Vec::new(),
        })
    }

    /// Opens `path` for appending after a recovery scan: the torn tail (if
    /// any) is truncated away first so new records extend the valid prefix.
    pub fn open_after_recovery(
        path: &Path,
        policy: FsyncPolicy,
        loaded: &LoadedLog,
    ) -> std::io::Result<Self> {
        if loaded.has_torn_tail() {
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(loaded.valid_bytes)?;
            // DURABILITY: the truncation must hit the disk before new appends
            // extend the file, or a machine crash could resurrect the torn
            // tail in the middle of fresh records.
            file.sync_all()?;
        }
        Ok(Self {
            writer: FrameWriter::append_to(path, policy, loaded.valid_bytes)?,
            path: path.to_path_buf(),
            scratch: Vec::new(),
        })
    }

    /// Appends one operation under `seq`.
    pub fn append(&mut self, seq: u64, update: &QueryUpdate) -> std::io::Result<()> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&seq.to_le_bytes());
        wire::encode_update(&mut self.scratch, update);
        self.writer.append(&self.scratch)
    }

    /// Hands buffered records to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Flushes and fsyncs.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.sync()
    }

    /// Simulates a process kill (drops the userland buffer). Returns the
    /// lost byte count.
    pub fn crash(self) -> usize {
        self.writer.crash()
    }

    /// Bytes of log handed to the OS.
    pub fn durable_bytes(&self) -> u64 {
        self.writer.durable_bytes()
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Rect;
    use ps2stream_model::{QueryId, StsQuery, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId};

    fn q(id: u64) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of([TermId(id as u32 % 13)]),
            Rect::from_coords(0.0, 0.0, 4.0, 4.0),
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ps2oplog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn log_roundtrips_and_reopens() {
        let path = tmp("roundtrip.log");
        let mut log = OpLog::create(&path, FsyncPolicy::Always).unwrap();
        log.append(1, &QueryUpdate::Insert(q(10))).unwrap();
        log.append(2, &QueryUpdate::Delete(q(10))).unwrap();
        log.append(3, &QueryUpdate::Insert(q(11))).unwrap();
        drop(log);

        let loaded = load_log(&path).unwrap();
        assert_eq!(loaded.ops.len(), 3);
        assert!(!loaded.has_torn_tail());
        assert_eq!(loaded.ops[0].seq, 1);
        assert_eq!(loaded.ops[2].update, QueryUpdate::Insert(q(11)));

        // appending after recovery extends the prefix
        let mut log = OpLog::open_after_recovery(&path, FsyncPolicy::Always, &loaded).unwrap();
        log.append(4, &QueryUpdate::Delete(q(11))).unwrap();
        drop(log);
        let loaded = load_log(&path).unwrap();
        assert_eq!(loaded.ops.len(), 4);
        assert_eq!(loaded.ops[3].seq, 4);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let path = tmp("torn.log");
        let mut log = OpLog::create(&path, FsyncPolicy::Always).unwrap();
        log.append(1, &QueryUpdate::Insert(q(1))).unwrap();
        log.append(2, &QueryUpdate::Insert(q(2))).unwrap();
        drop(log);
        // tear the final record
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let loaded = load_log(&path).unwrap();
        assert_eq!(loaded.ops.len(), 1);
        assert!(loaded.has_torn_tail());

        let mut log = OpLog::open_after_recovery(&path, FsyncPolicy::Always, &loaded).unwrap();
        log.append(2, &QueryUpdate::Insert(q(3))).unwrap();
        drop(log);
        let reloaded = load_log(&path).unwrap();
        assert_eq!(reloaded.ops.len(), 2);
        assert!(!reloaded.has_torn_tail());
        assert_eq!(reloaded.ops[1].update, QueryUpdate::Insert(q(3)));
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let loaded = load_log(&tmp("does-not-exist.log")).unwrap();
        assert!(loaded.ops.is_empty());
        assert_eq!(loaded.total_bytes, 0);
    }
}
