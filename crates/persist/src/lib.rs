//! Durable subscriptions for PS2Stream: operation log, snapshots, recovery.
//!
//! The paper assumes millions of standing queries served continuously; this
//! crate makes the subscription set survive a process restart. Three layers:
//!
//! * [`frame`] — length-prefixed, CRC-checked record framing with an explicit
//!   [`FsyncPolicy`] (`PS2_FSYNC`). Every durable byte of the workspace goes
//!   through it (enforced by the ps2lint `durability-discipline` rule).
//! * [`oplog`] — the append-only insert/delete log; loading yields the
//!   longest valid prefix and truncates torn tails instead of failing.
//! * [`snapshot`] + [`store`] — atomic snapshot-then-rename checkpoints of
//!   the live query set, term statistics and term-registry export, plus log
//!   compaction rewriting the log from the live map.
//!
//! See `docs/PERSISTENCE.md` for the file formats and recovery semantics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod frame;
pub mod oplog;
pub mod snapshot;
pub mod store;

pub use frame::{FrameScanner, FrameWriter, FsyncPolicy};
pub use oplog::{load_log, scan_log_bytes, LoadedLog, LoggedOp, OpLog};
pub use snapshot::{load_latest_snapshot, write_snapshot, SnapshotData};
pub use store::{PersistentStore, RecoveredState, StoreConfig, LOG_FILE};
