//! Length-prefixed, CRC-checked record framing — the single choke point
//! through which every byte of durable state is written.
//!
//! A frame is `[len: u32 LE][crc: u32 LE][payload: len bytes]`, where `crc`
//! is the CRC-32/IEEE of the payload. Appends go through [`FrameWriter`],
//! which owns a userland buffer and an explicit [`FsyncPolicy`]; scans go
//! through [`FrameScanner`], which yields payloads up to — and never past —
//! the first torn or corrupt frame. Both halves are what the ps2lint
//! `durability-discipline` rule pins the rest of the workspace to: persist
//! code must not hand raw unframed bytes to a file.
//!
//! # Crash model
//!
//! [`FrameWriter::crash`] models a process kill: the userland buffer is
//! discarded, everything previously handed to the OS survives. The fsync
//! policy controls the second level — what survives a *machine* crash — and
//! only widens, never narrows, what a process kill loses:
//!
//! * [`FsyncPolicy::Always`] — every append is written through and fsynced;
//!   a kill loses nothing.
//! * [`FsyncPolicy::EveryN`]`(n)` — appends buffer in userland and are
//!   written + fsynced every `n`-th append; a kill loses at most `n-1`
//!   trailing records.
//! * [`FsyncPolicy::Never`] — appends buffer until the buffer exceeds
//!   [`FLUSH_THRESHOLD`]; the OS decides when pages reach the disk.

use crate::crc::crc32;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Bytes of `[len][crc]` preceding every payload.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a frame may carry. A length field beyond this is treated
/// as corruption, bounding what a torn header can make recovery allocate.
pub const MAX_FRAME: usize = 64 << 20;

/// Userland buffer size at which [`FsyncPolicy::Never`] writes through.
pub const FLUSH_THRESHOLD: usize = 64 << 10;

/// When appended frames are pushed to the OS and fsynced. Parsed from the
/// `PS2_FSYNC` environment variable: `always` | `every:<n>` | `never`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Write through and fsync on every append.
    Always,
    /// Write through and fsync every `n`-th append.
    EveryN(u64),
    /// Never fsync; write through only on buffer pressure or explicit flush.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

impl FsyncPolicy {
    /// Parses `always` | `every:<n>` | `never` (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, String> {
        let v = s.trim().to_ascii_lowercase();
        match v.as_str() {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => {
                if let Some(n) = v.strip_prefix("every:") {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("PS2_FSYNC=every:<n> needs a number, got `{s}`"))?;
                    if n == 0 {
                        return Err("PS2_FSYNC=every:0 is meaningless; use `always`".to_string());
                    }
                    Ok(FsyncPolicy::EveryN(n))
                } else {
                    Err(format!(
                        "unknown PS2_FSYNC value `{s}` (expected always | every:<n> | never)"
                    ))
                }
            }
        }
    }

    /// Reads `PS2_FSYNC` from the environment; `None` when unset.
    ///
    /// # Panics
    /// Panics on a malformed value — a typo must not silently weaken
    /// durability.
    pub fn from_env() -> Option<Self> {
        std::env::var("PS2_FSYNC")
            .ok()
            .map(|v| Self::parse(&v).expect("malformed PS2_FSYNC"))
    }
}

/// Encodes one frame around `payload` into `out`.
pub fn encode_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends CRC-framed records to a file under an [`FsyncPolicy`].
pub struct FrameWriter {
    file: File,
    /// Frames not yet handed to the OS; discarded by [`FrameWriter::crash`].
    buf: Vec<u8>,
    policy: FsyncPolicy,
    appends_since_sync: u64,
    durable_bytes: u64,
    appended_frames: u64,
}

impl FrameWriter {
    /// Creates (truncates) `path` for framed appends.
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::over(file, policy, 0))
    }

    /// Opens `path` for framed appends after `existing_bytes` of already
    /// valid content (the caller truncates a torn tail first).
    pub fn append_to(
        path: &Path,
        policy: FsyncPolicy,
        existing_bytes: u64,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        Ok(Self::over(file, policy, existing_bytes))
    }

    fn over(file: File, policy: FsyncPolicy, existing_bytes: u64) -> Self {
        Self {
            file,
            buf: Vec::new(),
            policy,
            appends_since_sync: 0,
            durable_bytes: existing_bytes,
            appended_frames: 0,
        }
    }

    /// Appends one framed payload, applying the fsync policy.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        assert!(payload.len() <= MAX_FRAME, "payload exceeds MAX_FRAME");
        encode_frame(&mut self.buf, payload);
        self.appended_frames += 1;
        self.appends_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {
                if self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Hands the userland buffer to the OS (no fsync).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.durable_bytes += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes, then forces the file contents to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush()?;
        // DURABILITY: this is the single fsync point of the framed writer;
        // Always/EveryN route here so an acknowledged append survives a
        // machine crash within the configured window.
        self.file.sync_all()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Simulates a process kill: the userland buffer is discarded; bytes
    /// already handed to the OS survive. Returns how many buffered bytes
    /// were lost.
    pub fn crash(mut self) -> usize {
        let lost = self.buf.len();
        self.buf.clear(); // defeat the flush-on-drop below
        lost
    }

    /// Bytes handed to the OS so far (surviving a process kill).
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes
    }

    /// Bytes still sitting in the userland buffer (lost by a kill).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Frames appended through this writer.
    pub fn appended_frames(&self) -> u64 {
        self.appended_frames
    }
}

impl Drop for FrameWriter {
    /// Graceful close flushes to the OS (best-effort). [`FrameWriter::crash`]
    /// empties the buffer first precisely so this does nothing.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Iterates the valid frame prefix of a byte slice.
///
/// Yields each payload until the first frame that is torn (header or payload
/// truncated), oversized, or fails its CRC; [`FrameScanner::valid_len`] then
/// reports how many bytes of the slice form the longest valid prefix — the
/// truncation point recovery rewinds the log to.
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameScanner<'a> {
    /// Scans `buf` from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes of the longest valid frame prefix seen so far (final after the
    /// iterator returns `None`).
    pub fn valid_len(&self) -> usize {
        self.pos
    }

    /// Yields the next valid payload, or `None` at the first torn/corrupt
    /// frame. Inherent twin of the `Iterator` impl so callers interleaving
    /// [`FrameScanner::valid_len`] reads can loop without holding an
    /// iterator borrow.
    pub fn next_payload(&mut self) -> Option<&'a [u8]> {
        let rest = &self.buf[self.pos..];
        if rest.len() < FRAME_HEADER {
            return None; // torn header (or clean end)
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_FRAME || rest.len() < FRAME_HEADER + len {
            return None; // implausible length or torn payload
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc {
            return None; // bit rot / torn overwrite
        }
        self.pos += FRAME_HEADER + len;
        Some(payload)
    }
}

impl<'a> Iterator for FrameScanner<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        self.next_payload()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_all(buf: &[u8]) -> (Vec<Vec<u8>>, usize) {
        let mut scanner = FrameScanner::new(buf);
        let frames: Vec<Vec<u8>> = scanner.by_ref().map(<[u8]>::to_vec).collect();
        (frames, scanner.valid_len())
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("NEVER"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every:8"), Ok(FsyncPolicy::EveryN(8)));
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn frames_roundtrip_through_scanner() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"alpha");
        encode_frame(&mut buf, b"");
        encode_frame(&mut buf, b"gamma-gamma");
        let (frames, valid) = scan_all(&buf);
        assert_eq!(
            frames,
            vec![b"alpha".to_vec(), vec![], b"gamma-gamma".to_vec()]
        );
        assert_eq!(valid, buf.len());
    }

    #[test]
    fn torn_tail_stops_at_longest_valid_prefix() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"one");
        let first_end = buf.len();
        encode_frame(&mut buf, b"two");
        // every truncation point inside the second frame keeps exactly one
        for cut in first_end..buf.len() {
            let (frames, valid) = scan_all(&buf[..cut]);
            assert_eq!(frames.len(), 1, "cut at {cut}");
            assert_eq!(valid, first_end, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_stops_the_scan() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"one");
        let first_end = buf.len();
        encode_frame(&mut buf, b"two");
        for i in first_end..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let (frames, valid) = scan_all(&bad);
            assert_eq!(frames.len(), 1, "flip at {i}");
            assert_eq!(valid, first_end, "flip at {i}");
        }
    }

    #[test]
    fn oversize_length_field_is_corruption_not_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let (frames, valid) = scan_all(&buf);
        assert!(frames.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn writer_always_policy_loses_nothing_on_crash() {
        let dir = std::env::temp_dir().join(format!("ps2frame-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("always.log");
        let mut w = FrameWriter::create(&path, FsyncPolicy::Always).unwrap();
        for i in 0..5u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(w.crash(), 0);
        let bytes = std::fs::read(&path).unwrap();
        let (frames, _) = scan_all(&bytes);
        assert_eq!(frames.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_every_n_crash_loses_at_most_the_window() {
        let dir = std::env::temp_dir().join(format!("ps2frame-n-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("every4.log");
        let mut w = FrameWriter::create(&path, FsyncPolicy::EveryN(4)).unwrap();
        for i in 0..10u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        // 10 appends with a sync every 4th: records 0..8 reached the OS,
        // the 2 trailing ones sit in the userland buffer and die here
        assert!(w.crash() > 0);
        let bytes = std::fs::read(&path).unwrap();
        let (frames, _) = scan_all(&bytes);
        assert_eq!(frames.len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_drop_flushes_the_tail() {
        let dir = std::env::temp_dir().join(format!("ps2frame-d-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop.log");
        {
            let mut w = FrameWriter::create(&path, FsyncPolicy::Never).unwrap();
            for i in 0..10u32 {
                w.append(&i.to_le_bytes()).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let (frames, _) = scan_all(&bytes);
        assert_eq!(frames.len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
