//! CRC-32 (IEEE 802.3, reflected) over frame payloads.
//!
//! Every record the persistence layer writes carries a checksum of its
//! payload so recovery can tell a torn or bit-flipped tail from a valid one.
//! Table-driven, byte-at-a-time; the log append path is dominated by the
//! write syscall, not the checksum.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC-32/IEEE of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // the standard check value of CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
