//! [`PersistentStore`] — the durable face of the subscription set.
//!
//! The store sits on the ingest path: every accepted `QueryUpdate` is
//! assigned a global monotonic sequence number, appended to the operation
//! log, and mirrored into an in-memory live map keyed by query id. The live
//! map is what makes snapshots and log compaction self-contained: both are
//! written from it, without stopping or consulting the workers.
//!
//! # Recovery invariant
//!
//! Let `W` be the watermark of the newest valid snapshot (0 when none) and
//! `P` the longest valid prefix of the operation log. Recovered state =
//! snapshot state + every op in `P` with `seq > W`, applied in log order.
//! Anything after `P` (a torn or corrupt tail) is truncated, not an error.
//! Compaction preserves the invariant by writing the snapshot *first* and
//! only then rewriting the log: a crash between the two steps leaves
//! redundant ops with `seq <= W`, which replay skips.

use crate::frame::{FrameWriter, FsyncPolicy};
use crate::oplog::{load_log, LoggedOp, OpLog};
use crate::snapshot::{load_latest_snapshot, write_snapshot, SnapshotData};
use ps2stream_model::wire;
use ps2stream_model::{QueryUpdate, StsQuery};
use ps2stream_text::{TermId, TermStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Name of the operation log file inside the durability directory.
pub const LOG_FILE: &str = "oplog.psl";

/// How the store behaves; embedded in the system configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the log and snapshots (created if missing).
    pub dir: PathBuf,
    /// Fsync policy of the operation log (snapshots always sync).
    pub fsync: FsyncPolicy,
    /// Write a snapshot and compact the log every this many logged ops.
    /// `None` keeps a pure, ever-growing log (used by the byte-identical
    /// recovery tests, where replay must reproduce the exact ingest
    /// sequence).
    pub snapshot_every_ops: Option<u64>,
}

impl StoreConfig {
    /// Defaults for `dir`: `PS2_FSYNC` (or every-64), snapshot every 4096
    /// ops.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::from_env().unwrap_or_default(),
            snapshot_every_ops: Some(4096),
        }
    }

    /// Overrides the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Overrides (or disables) the snapshot interval.
    pub fn with_snapshot_every(mut self, every: Option<u64>) -> Self {
        self.snapshot_every_ops = every;
        self
    }
}

/// What [`PersistentStore::open`] found on disk.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// The snapshot recovery started from, when one existed.
    pub snapshot: Option<SnapshotData>,
    /// Log ops past the snapshot watermark, in log order.
    pub tail: Vec<LoggedOp>,
    /// Bytes of torn/corrupt log tail that were truncated away.
    pub truncated_bytes: u64,
}

impl RecoveredState {
    /// True when nothing durable was found.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.tail.is_empty()
    }

    /// True when a torn or corrupt log tail was truncated during recovery.
    pub fn has_damage(&self) -> bool {
        self.truncated_bytes > 0
    }

    /// Number of individual operations to replay.
    pub fn num_ops(&self) -> usize {
        self.snapshot.as_ref().map_or(0, |s| s.queries.len()) + self.tail.len()
    }

    /// The update sequence to replay through the normal dispatch path:
    /// snapshot queries as inserts (ascending id), then the log tail
    /// verbatim.
    pub fn replay_updates(&self) -> impl Iterator<Item = QueryUpdate> + '_ {
        self.snapshot
            .iter()
            .flat_map(|s| s.queries.iter().cloned().map(QueryUpdate::Insert))
            .chain(self.tail.iter().map(|op| op.update.clone()))
    }

    /// The live query set implied by the recovered state (snapshot + tail).
    pub fn live_queries(&self) -> BTreeMap<u64, StsQuery> {
        let mut live = BTreeMap::new();
        if let Some(s) = &self.snapshot {
            for q in &s.queries {
                live.insert(q.id.0, q.clone());
            }
        }
        for op in &self.tail {
            match &op.update {
                QueryUpdate::Insert(q) => {
                    live.insert(q.id.0, q.clone());
                }
                QueryUpdate::Delete(q) => {
                    live.remove(&q.id.0);
                }
            }
        }
        live
    }
}

/// The durable subscription store. See the module docs for the recovery
/// invariant.
pub struct PersistentStore {
    config: StoreConfig,
    log: OpLog,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Ops logged since the last snapshot (drives the snapshot cadence).
    ops_since_snapshot: u64,
    /// Live queries by raw id — the compaction and snapshot source.
    live: BTreeMap<u64, StsQuery>,
    /// Term statistics persisted with each snapshot (seeded by the caller;
    /// recovery hands them back so a restarted system does not need the
    /// original calibration sample).
    stats: TermStats,
    /// Size of the most recent snapshot file, bytes.
    last_snapshot_bytes: u64,
    /// Snapshots written by this store instance.
    snapshots_written: u64,
    /// Ops appended by this store instance.
    ops_logged: u64,
}

impl PersistentStore {
    /// Opens (or initialises) the durability directory, returning the store
    /// positioned after the recovered state, plus what was recovered.
    pub fn open(config: StoreConfig) -> std::io::Result<(Self, RecoveredState)> {
        std::fs::create_dir_all(&config.dir)?;
        let log_path = config.dir.join(LOG_FILE);
        let snapshot = load_latest_snapshot(&config.dir);
        let watermark = snapshot.as_ref().map_or(0, |s| s.watermark);
        let loaded = load_log(&log_path)?;
        let truncated_bytes = loaded.total_bytes - loaded.valid_bytes;
        let tail: Vec<LoggedOp> = loaded
            .ops
            .iter()
            .filter(|op| op.seq > watermark)
            .cloned()
            .collect();
        let next_seq = loaded
            .ops
            .last()
            .map(|op| op.seq)
            .unwrap_or(0)
            .max(watermark)
            + 1;
        let log = OpLog::open_after_recovery(&log_path, config.fsync, &loaded)?;
        let recovered = RecoveredState {
            snapshot,
            tail,
            truncated_bytes,
        };
        let live = recovered.live_queries();
        let stats = recovered
            .snapshot
            .as_ref()
            .map(|s| s.stats.clone())
            .unwrap_or_default();
        Ok((
            Self {
                config,
                log,
                next_seq,
                ops_since_snapshot: 0,
                live,
                stats,
                last_snapshot_bytes: 0,
                snapshots_written: 0,
                ops_logged: 0,
            },
            recovered,
        ))
    }

    /// Recovers the durable state **read-only**: loads the latest snapshot
    /// and the valid log prefix without opening the log for writing or
    /// truncating torn tails. Chaos and audit tooling uses this to inspect
    /// what a (possibly crashed) run left behind without mutating it —
    /// [`RecoveredState::live_queries`] then gives the implied live set.
    pub fn peek(config: &StoreConfig) -> std::io::Result<RecoveredState> {
        let log_path = config.dir.join(LOG_FILE);
        let snapshot = load_latest_snapshot(&config.dir);
        let watermark = snapshot.as_ref().map_or(0, |s| s.watermark);
        let loaded = load_log(&log_path)?;
        let truncated_bytes = loaded.total_bytes - loaded.valid_bytes;
        let tail: Vec<LoggedOp> = loaded
            .ops
            .iter()
            .filter(|op| op.seq > watermark)
            .cloned()
            .collect();
        Ok(RecoveredState {
            snapshot,
            tail,
            truncated_bytes,
        })
    }

    /// Seeds the term statistics persisted with future snapshots (typically
    /// the calibration-sample stats the routing table was built from).
    pub fn set_stats(&mut self, stats: TermStats) {
        self.stats = stats;
    }

    /// Logs one update and applies it to the live map. Returns `true` when
    /// the snapshot interval has elapsed — the caller should then invoke
    /// [`PersistentStore::snapshot_now`] with its registry export.
    pub fn log_update(&mut self, update: &QueryUpdate) -> std::io::Result<bool> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.append(seq, update)?;
        self.ops_logged += 1;
        self.ops_since_snapshot += 1;
        match update {
            QueryUpdate::Insert(q) => {
                self.live.insert(q.id.0, q.clone());
            }
            QueryUpdate::Delete(q) => {
                self.live.remove(&q.id.0);
            }
        }
        Ok(self
            .config
            .snapshot_every_ops
            .is_some_and(|every| self.ops_since_snapshot >= every))
    }

    /// Writes a snapshot of the live state at the current watermark, then
    /// compacts the log (rewrites it from the live map). `registry` is the
    /// routing table's term-registry export to embed.
    pub fn snapshot_now(&mut self, registry: Vec<(u32, Vec<TermId>)>) -> std::io::Result<()> {
        let watermark = self.next_seq - 1;
        let data = SnapshotData {
            watermark,
            stats: self.stats.clone(),
            registry,
            queries: self.live.values().cloned().collect(),
        };
        let path = write_snapshot(&self.config.dir, &data)?;
        self.last_snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        self.snapshots_written += 1;
        self.ops_since_snapshot = 0;
        self.compact_log(watermark)
    }

    /// Rewrites the operation log from the live map: one insert per live
    /// query, all at the snapshot watermark (replay after a snapshot skips
    /// them; replay *without* a snapshot — every snapshot corrupt — still
    /// rebuilds the full live set from the log alone).
    fn compact_log(&mut self, watermark: u64) -> std::io::Result<()> {
        let log_path = self.config.dir.join(LOG_FILE);
        let rewrite_path = log_path.with_extension("rewrite");
        let mut scratch = Vec::new();
        {
            let mut w = FrameWriter::create(&rewrite_path, FsyncPolicy::Always)?;
            for q in self.live.values() {
                scratch.clear();
                scratch.extend_from_slice(&watermark.to_le_bytes());
                wire::encode_update(&mut scratch, &QueryUpdate::Insert(q.clone()));
                w.append(&scratch)?;
            }
            w.sync()?;
        }
        // Flush the old handle before the swap so its buffered tail cannot
        // be written into the *new* file through a stale descriptor.
        self.log.flush()?;
        std::fs::rename(&rewrite_path, &log_path)?;
        if let Ok(d) = std::fs::File::open(&self.config.dir) {
            // DURABILITY: the rename replacing the log must be on disk
            // before appends continue, or a machine crash could leave a log
            // missing both the compacted prefix and the new tail.
            let _ = d.sync_all();
        }
        let rewritten = load_log(&log_path)?;
        self.log = OpLog::open_after_recovery(&log_path, self.config.fsync, &rewritten)?;
        Ok(())
    }

    /// Hands buffered log records to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.log.flush()
    }

    /// Flushes and fsyncs the log.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.log.sync()
    }

    /// Simulates a process kill: buffered log records are lost, everything
    /// handed to the OS survives. Returns the lost byte count.
    pub fn crash(self) -> usize {
        self.log.crash()
    }

    /// Live queries in ascending-id order.
    pub fn live_queries(&self) -> impl Iterator<Item = &StsQuery> {
        self.live.values()
    }

    /// Number of live queries.
    pub fn num_live(&self) -> usize {
        self.live.len()
    }

    /// Durable log bytes handed to the OS by this instance.
    pub fn log_bytes(&self) -> u64 {
        self.log.durable_bytes()
    }

    /// Size of the most recent snapshot file written by this instance.
    pub fn snapshot_bytes(&self) -> u64 {
        self.last_snapshot_bytes
    }

    /// Snapshots written by this instance.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Ops appended by this instance.
    pub fn ops_logged(&self) -> u64 {
        self.ops_logged
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Rect;
    use ps2stream_model::{QueryId, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn q(id: u64) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of([TermId(id as u32 % 7)]),
            Rect::from_coords(0.0, 0.0, 4.0, 4.0),
        )
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ps2store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path) -> StoreConfig {
        StoreConfig::new(dir)
            .with_fsync(FsyncPolicy::Always)
            .with_snapshot_every(None)
    }

    #[test]
    fn fresh_store_recovers_nothing() {
        let dir = tmp_dir("fresh");
        let (store, recovered) = PersistentStore::open(cfg(&dir)).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(store.num_live(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_only_recovery_replays_everything() {
        let dir = tmp_dir("logonly");
        {
            let (mut store, _) = PersistentStore::open(cfg(&dir)).unwrap();
            store.log_update(&QueryUpdate::Insert(q(1))).unwrap();
            store.log_update(&QueryUpdate::Insert(q(2))).unwrap();
            store.log_update(&QueryUpdate::Delete(q(1))).unwrap();
            store.log_update(&QueryUpdate::Insert(q(3))).unwrap();
        }
        let (store, recovered) = PersistentStore::open(cfg(&dir)).unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.tail.len(), 4);
        let updates: Vec<QueryUpdate> = recovered.replay_updates().collect();
        assert_eq!(updates.len(), 4);
        assert_eq!(
            store.live_queries().map(|q| q.id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = tmp_dir("snaptail");
        {
            let (mut store, _) = PersistentStore::open(cfg(&dir)).unwrap();
            for i in 1..=5 {
                store.log_update(&QueryUpdate::Insert(q(i))).unwrap();
            }
            store.log_update(&QueryUpdate::Delete(q(2))).unwrap();
            store.snapshot_now(vec![(3, vec![TermId(1)])]).unwrap();
            // tail past the watermark
            store.log_update(&QueryUpdate::Insert(q(9))).unwrap();
            store.log_update(&QueryUpdate::Delete(q(4))).unwrap();
        }
        let (store, recovered) = PersistentStore::open(cfg(&dir)).unwrap();
        let snap = recovered.snapshot.as_ref().expect("snapshot found");
        assert_eq!(
            snap.queries.iter().map(|q| q.id.0).collect::<Vec<_>>(),
            vec![1, 3, 4, 5]
        );
        assert_eq!(snap.registry, vec![(3, vec![TermId(1)])]);
        assert_eq!(recovered.tail.len(), 2, "only ops past the watermark");
        assert_eq!(
            store.live_queries().map(|q| q.id.0).collect::<Vec<_>>(),
            vec![1, 3, 5, 9]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_without_snapshot_uses_the_compacted_log() {
        let dir = tmp_dir("compacted");
        {
            let (mut store, _) = PersistentStore::open(cfg(&dir)).unwrap();
            for i in 1..=4 {
                store.log_update(&QueryUpdate::Insert(q(i))).unwrap();
            }
            store.log_update(&QueryUpdate::Delete(q(2))).unwrap();
            store.snapshot_now(vec![]).unwrap();
            store.log_update(&QueryUpdate::Insert(q(8))).unwrap();
        }
        // destroy every snapshot: the rewritten log alone must suffice
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            if entry.path().extension().is_some_and(|e| e == "snap") {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }
        let (store, recovered) = PersistentStore::open(cfg(&dir)).unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(
            store.live_queries().map(|q| q.id.0).collect::<Vec<_>>(),
            vec![1, 3, 4, 8]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_interval_triggers() {
        let dir = tmp_dir("interval");
        let config = StoreConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_snapshot_every(Some(3));
        let (mut store, _) = PersistentStore::open(config).unwrap();
        assert!(!store.log_update(&QueryUpdate::Insert(q(1))).unwrap());
        assert!(!store.log_update(&QueryUpdate::Insert(q(2))).unwrap());
        assert!(store.log_update(&QueryUpdate::Insert(q(3))).unwrap());
        store.snapshot_now(vec![]).unwrap();
        assert_eq!(store.snapshots_written(), 1);
        assert!(store.snapshot_bytes() > 0);
        assert!(!store.log_update(&QueryUpdate::Insert(q(4))).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_with_always_policy_loses_nothing() {
        let dir = tmp_dir("crash");
        {
            let (mut store, _) = PersistentStore::open(cfg(&dir)).unwrap();
            for i in 1..=6 {
                store.log_update(&QueryUpdate::Insert(q(i))).unwrap();
            }
            assert_eq!(store.crash(), 0);
        }
        let (store, recovered) = PersistentStore::open(cfg(&dir)).unwrap();
        assert_eq!(recovered.tail.len(), 6);
        assert_eq!(store.num_live(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_with_buffered_policy_loses_a_clean_suffix() {
        let dir = tmp_dir("crashbuf");
        let config = StoreConfig::new(&dir)
            .with_fsync(FsyncPolicy::EveryN(4))
            .with_snapshot_every(None);
        {
            let (mut store, _) = PersistentStore::open(config.clone()).unwrap();
            for i in 1..=10 {
                store.log_update(&QueryUpdate::Insert(q(i))).unwrap();
            }
            assert!(store.crash() > 0);
        }
        let (_, recovered) = PersistentStore::open(config).unwrap();
        // records 1..=8 reached the OS before the kill; the loss is a clean
        // suffix, never a hole
        assert_eq!(recovered.tail.len(), 8);
        for (i, op) in recovered.tail.iter().enumerate() {
            assert_eq!(op.update.query_id().0, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_numbers_continue_across_restart() {
        let dir = tmp_dir("seq");
        {
            let (mut store, _) = PersistentStore::open(cfg(&dir)).unwrap();
            store.log_update(&QueryUpdate::Insert(q(1))).unwrap();
            store.log_update(&QueryUpdate::Insert(q(2))).unwrap();
        }
        {
            let (mut store, _) = PersistentStore::open(cfg(&dir)).unwrap();
            store.log_update(&QueryUpdate::Insert(q(3))).unwrap();
        }
        let (_, recovered) = PersistentStore::open(cfg(&dir)).unwrap();
        let seqs: Vec<u64> = recovered.tail.iter().map(|op| op.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "monotonic across restarts");
        std::fs::remove_dir_all(&dir).ok();
    }
}
