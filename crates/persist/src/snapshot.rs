//! Atomic snapshots of the durable subscription state.
//!
//! A snapshot captures, at operation watermark `W`: the live query set (the
//! GI² slab contents, in canonical ascending-id order), the term-frequency
//! statistics that drive posting-term selection, and the routing table's
//! per-cell term registry. Recovery loads the newest *valid* snapshot and
//! replays only log records with `seq > W`.
//!
//! # Atomicity
//!
//! The file is written to `snapshot-<W>.tmp` as a single CRC-framed record
//! (through [`FrameWriter`], like every other durable byte), fsynced, then
//! renamed to `snapshot-<W>.snap`, and the directory is fsynced. A crash at
//! any point leaves either no `.snap` or a complete one; a torn `.tmp` is
//! ignored by recovery and deleted on the next successful write.

use crate::frame::{FrameScanner, FrameWriter, FsyncPolicy};
use ps2stream_model::wire::{self, WireError, WireReader};
use ps2stream_model::StsQuery;
use ps2stream_text::{TermId, TermStats};
use std::path::{Path, PathBuf};

/// Leading payload magic (version-bearing).
const MAGIC: &[u8; 8] = b"PS2SNAP1";

/// Everything a snapshot captures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotData {
    /// Operation watermark: every logged op with `seq <= watermark` is
    /// reflected in this snapshot; replay skips them.
    pub watermark: u64,
    /// Term-frequency statistics at the watermark.
    pub stats: TermStats,
    /// Term-registry export: `(cell, ascending term ids)` per non-empty cell,
    /// ascending by cell.
    pub registry: Vec<(u32, Vec<TermId>)>,
    /// Live queries in ascending-id order.
    pub queries: Vec<StsQuery>,
}

impl SnapshotData {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        wire::put_u64(&mut out, self.watermark);
        wire::put_u64(&mut out, self.stats.num_docs());
        let counts = self.stats.counts();
        wire::put_u32(&mut out, counts.len() as u32);
        for &c in counts {
            wire::put_u64(&mut out, c);
        }
        wire::put_u32(&mut out, self.registry.len() as u32);
        for (cell, terms) in &self.registry {
            wire::put_u32(&mut out, *cell);
            wire::put_u32(&mut out, terms.len() as u32);
            for t in terms {
                wire::put_u32(&mut out, t.0);
            }
        }
        wire::put_u32(&mut out, self.queries.len() as u32);
        for q in &self.queries {
            wire::encode_query(&mut out, q);
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() < MAGIC.len() || &payload[..MAGIC.len()] != MAGIC {
            return Err(WireError::BadTag(*payload.first().unwrap_or(&0)));
        }
        let mut r = WireReader::new(&payload[MAGIC.len()..]);
        let watermark = r.u64()?;
        let num_docs = r.u64()?;
        let ncounts = r.count()?;
        let mut counts = Vec::with_capacity(ncounts as usize);
        for _ in 0..ncounts {
            counts.push(r.u64()?);
        }
        let stats = TermStats::from_parts(counts, num_docs);
        let ncells = r.count()?;
        let mut registry = Vec::with_capacity(ncells as usize);
        for _ in 0..ncells {
            let cell = r.u32()?;
            let nterms = r.count()?;
            let mut terms = Vec::with_capacity(nterms as usize);
            for _ in 0..nterms {
                terms.push(TermId(r.u32()?));
            }
            registry.push((cell, terms));
        }
        let nqueries = r.count()?;
        let mut queries = Vec::with_capacity(nqueries as usize);
        for _ in 0..nqueries {
            queries.push(wire::decode_query(&mut r)?);
        }
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Self {
            watermark,
            stats,
            registry,
            queries,
        })
    }
}

/// The `.snap` path for watermark `w` in `dir`.
pub fn snapshot_path(dir: &Path, w: u64) -> PathBuf {
    dir.join(format!("snapshot-{w:020}.snap"))
}

/// Writes `data` atomically into `dir`, returning the final path. Older
/// snapshots and stale `.tmp` files are removed afterwards (the new snapshot
/// supersedes them).
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let final_path = snapshot_path(dir, data.watermark);
    let tmp_path = final_path.with_extension("tmp");
    {
        // A snapshot is durable-or-absent, never partial: sync before the
        // rename publishes it.
        let mut w = FrameWriter::create(&tmp_path, FsyncPolicy::Always)?;
        w.append(&data.encode())?;
        w.sync()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = std::fs::File::open(dir) {
        // DURABILITY: the rename itself must reach the disk — without the
        // directory fsync a machine crash can forget the publish and leave
        // only the older snapshot visible.
        let _ = d.sync_all();
    }
    prune_superseded(dir, data.watermark);
    Ok(final_path)
}

/// Deletes snapshots older than `keep_watermark` and any leftover `.tmp`.
fn prune_superseded(dir: &Path, keep_watermark: u64) {
    for (w, path) in list_snapshots(dir) {
        if w < keep_watermark {
            let _ = std::fs::remove_file(path);
        }
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "tmp") {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

/// `(watermark, path)` of every `.snap` file in `dir`, ascending.
fn list_snapshots(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(w) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".snap"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            out.push((w, path));
        }
    }
    out.sort_by_key(|(w, _)| *w);
    out
}

/// Loads the newest snapshot in `dir` that validates (magic, CRC, complete
/// decode). Corrupt or torn candidates are skipped, newest-first, so a bad
/// latest snapshot falls back to its predecessor rather than failing
/// recovery.
pub fn load_latest_snapshot(dir: &Path) -> Option<SnapshotData> {
    for (_, path) in list_snapshots(dir).into_iter().rev() {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let mut scanner = FrameScanner::new(&bytes);
        let Some(payload) = scanner.next() else {
            continue;
        };
        if let Ok(data) = SnapshotData::decode(payload) {
            return Some(data);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Rect;
    use ps2stream_model::{QueryId, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn q(id: u64) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id * 2),
            BooleanExpr::and_of([TermId(id as u32), TermId(id as u32 + 1)]),
            Rect::from_coords(0.0, 0.0, 2.0, 2.0),
        )
    }

    fn sample(watermark: u64) -> SnapshotData {
        let mut stats = TermStats::new();
        stats.observe(&[TermId(1), TermId(2)]);
        stats.observe(&[TermId(1)]);
        SnapshotData {
            watermark,
            stats,
            registry: vec![(0, vec![TermId(1)]), (5, vec![TermId(2), TermId(9)])],
            queries: vec![q(1), q(2), q(3)],
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ps2snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let data = sample(42);
        write_snapshot(&dir, &data).unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap();
        assert_eq!(loaded, data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_snapshot_wins_and_old_ones_are_pruned() {
        let dir = tmp_dir("newest");
        write_snapshot(&dir, &sample(10)).unwrap();
        write_snapshot(&dir, &sample(20)).unwrap();
        assert_eq!(load_latest_snapshot(&dir).unwrap().watermark, 20);
        assert_eq!(list_snapshots(&dir).len(), 1, "old snapshot not pruned");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_falls_back_to_predecessor() {
        let dir = tmp_dir("fallback");
        write_snapshot(&dir, &sample(10)).unwrap();
        // forge a newer, torn snapshot (bypassing write_snapshot's pruning)
        std::fs::write(snapshot_path(&dir, 99), b"PS2SNAP1 torn garbage").unwrap();
        assert_eq!(load_latest_snapshot(&dir).unwrap().watermark, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_no_snapshot() {
        let dir = tmp_dir("missing");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(load_latest_snapshot(&dir).is_none());
    }
}
