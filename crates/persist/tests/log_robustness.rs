//! Property tests of operation-log recovery under arbitrary damage.
//!
//! The recovery contract (docs/PERSISTENCE.md): for any op sequence and any
//! truncation or byte-flip applied to the *final* record, loading the log
//! yields exactly the longest valid record prefix — never a panic, never a
//! hole, and never a query whose deletion is inside that prefix (the slab
//! generation guarantee of PR 5, extended across restart).

use proptest::prelude::*;
use ps2stream_geo::Rect;
use ps2stream_model::{wire, QueryId, QueryUpdate, StsQuery, SubscriberId};
use ps2stream_persist::frame::encode_frame;
use ps2stream_persist::{scan_log_bytes, FsyncPolicy, PersistentStore, StoreConfig};
use ps2stream_text::{BooleanExpr, TermId};
use std::collections::BTreeMap;

/// A generated op: insert (id, terms, region quadrant) or delete (id).
#[derive(Debug, Clone)]
enum GenOp {
    Insert(u64, Vec<u32>, u8),
    Delete(u64),
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        3 => (0u64..12, proptest::collection::vec(0u32..20, 1..4), 0u8..4)
            .prop_map(|(id, terms, quad)| GenOp::Insert(id, terms, quad)),
        1 => (0u64..12).prop_map(GenOp::Delete),
    ]
}

fn build_update(op: &GenOp, known: &BTreeMap<u64, StsQuery>) -> QueryUpdate {
    match op {
        GenOp::Insert(id, terms, quad) => {
            let region = match quad {
                0 => Rect::from_coords(0.0, 0.0, 4.0, 4.0),
                1 => Rect::from_coords(4.0, 0.0, 8.0, 4.0),
                2 => Rect::from_coords(0.0, 4.0, 4.0, 8.0),
                _ => Rect::from_coords(4.0, 4.0, 8.0, 8.0),
            };
            QueryUpdate::Insert(StsQuery::new(
                QueryId(*id),
                SubscriberId(*id),
                BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
                region,
            ))
        }
        // deletes carry the full query description (Section IV-C); reuse the
        // last inserted shape, or a placeholder for a never-inserted id
        GenOp::Delete(id) => QueryUpdate::Delete(known.get(id).cloned().unwrap_or_else(|| {
            StsQuery::new(
                QueryId(*id),
                SubscriberId(*id),
                BooleanExpr::and_of([TermId(0)]),
                Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            )
        })),
    }
}

/// Encodes `updates` exactly as `OpLog::append` frames them, returning the
/// log bytes plus each record's end offset.
fn encode_log(updates: &[QueryUpdate]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    let mut payload = Vec::new();
    for (i, update) in updates.iter().enumerate() {
        payload.clear();
        payload.extend_from_slice(&(i as u64 + 1).to_le_bytes());
        wire::encode_update(&mut payload, update);
        encode_frame(&mut bytes, &payload);
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// The live set after applying a prefix of updates.
fn fold_live(updates: &[QueryUpdate]) -> BTreeMap<u64, StsQuery> {
    let mut live = BTreeMap::new();
    for u in updates {
        match u {
            QueryUpdate::Insert(q) => {
                live.insert(q.id.0, q.clone());
            }
            QueryUpdate::Delete(q) => {
                live.remove(&q.id.0);
            }
        }
    }
    live
}

fn materialize(ops: &[GenOp]) -> Vec<QueryUpdate> {
    let mut known = BTreeMap::new();
    let mut updates = Vec::with_capacity(ops.len());
    for op in ops {
        let update = build_update(op, &known);
        if let QueryUpdate::Insert(q) = &update {
            known.insert(q.id.0, q.clone());
        }
        updates.push(update);
    }
    updates
}

/// Checks the recovery contract for damaged `bytes` whose expected valid
/// prefix is `updates[..expect_records]`.
fn check_recovery(bytes: &[u8], updates: &[QueryUpdate], expect_records: usize) {
    let loaded = scan_log_bytes(bytes);
    assert_eq!(
        loaded.ops.len(),
        expect_records,
        "recovered record count != longest valid prefix"
    );
    for (i, op) in loaded.ops.iter().enumerate() {
        assert_eq!(op.seq, i as u64 + 1);
        assert_eq!(op.update, updates[i], "recovered op {i} diverges");
    }
    // no resurrection: the live set equals the brute-force fold of the
    // recovered prefix — a query deleted within the prefix stays deleted
    let recovered_live: Vec<u64> = fold_live(
        &loaded
            .ops
            .iter()
            .map(|op| op.update.clone())
            .collect::<Vec<_>>(),
    )
    .into_keys()
    .collect();
    let expected_live: Vec<u64> = fold_live(&updates[..expect_records]).into_keys().collect();
    assert_eq!(recovered_live, expected_live);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating the log at any byte recovers exactly the records that
    /// fully precede the cut.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        ops in proptest::collection::vec(arb_op(), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let updates = materialize(&ops);
        let (bytes, ends) = encode_log(&updates);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        check_recovery(&bytes[..cut], &updates, expect);
    }

    /// Flipping any bit of the final record invalidates exactly that record;
    /// every earlier record survives.
    #[test]
    fn corrupt_final_record_is_dropped_cleanly(
        ops in proptest::collection::vec(arb_op(), 1..20),
        offset_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let updates = materialize(&ops);
        let (mut bytes, ends) = encode_log(&updates);
        let final_start = if ends.len() >= 2 { ends[ends.len() - 2] } else { 0 };
        let final_len = bytes.len() - final_start;
        let target = final_start + ((final_len as f64 * offset_fraction) as usize).min(final_len - 1);
        bytes[target] ^= 1 << bit;
        check_recovery(&bytes, &updates, updates.len() - 1);
    }

    /// The full store round-trip on disk: damage the file tail, reopen, and
    /// the store recovers the longest valid prefix and continues appending
    /// after the truncation point.
    #[test]
    fn store_reopens_after_tail_damage(
        ops in proptest::collection::vec(arb_op(), 2..12),
        chop in 1usize..24,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ps2robust-{}-{chop}-{}",
            std::process::id(),
            ops.len(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || StoreConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_snapshot_every(None);
        let updates = materialize(&ops);
        {
            let (mut store, _) = PersistentStore::open(cfg()).unwrap();
            for u in &updates {
                store.log_update(u).unwrap();
            }
        }
        // chop bytes off the file tail (a torn final write)
        let log_path = dir.join(ps2stream_persist::LOG_FILE);
        let bytes = std::fs::read(&log_path).unwrap();
        let cut = bytes.len().saturating_sub(chop);
        std::fs::write(&log_path, &bytes[..cut]).unwrap();

        let (_, ends) = encode_log(&updates);
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        let (mut store, recovered) = PersistentStore::open(cfg()).unwrap();
        prop_assert_eq!(recovered.tail.len(), expect);
        let expected_live: Vec<u64> = fold_live(&updates[..expect]).into_keys().collect();
        let got_live: Vec<u64> = store.live_queries().map(|q| q.id.0).collect();
        prop_assert_eq!(got_live, expected_live);

        // appends after recovery extend the truncated file cleanly
        store.log_update(&QueryUpdate::Insert(StsQuery::new(
            QueryId(999),
            SubscriberId(999),
            BooleanExpr::and_of([TermId(1)]),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        ))).unwrap();
        drop(store);
        let (_, reopened) = PersistentStore::open(cfg()).unwrap();
        prop_assert_eq!(reopened.tail.len(), expect + 1);
        prop_assert!(!reopened.has_damage());
        std::fs::remove_dir_all(&dir).ok();
    }
}
