//! Fixed-layout binary encoding of the durable model types.
//!
//! The persistence layer (`ps2stream-persist`) frames every operation-log
//! record and snapshot entry as raw bytes; this module defines what those
//! bytes are. The encoding is deliberately *not* serde-based: it is a
//! little-endian, length-prefixed layout that is stable across builds,
//! byte-for-byte reproducible (the recovery tests compare files), and
//! decodable from an arbitrary — possibly torn — byte slice without panicking.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! Point       := x:f64  y:f64
//! Rect        := min:Point  max:Point
//! BooleanExpr := nclauses:u32  { nterms:u32 { term:u32 }* }*
//! StsQuery    := id:u64  subscriber:u64  Rect  BooleanExpr
//! QueryUpdate := tag:u8 (1=Insert, 2=Delete)  StsQuery
//! ```
//!
//! Decoders return [`WireError`] on truncation or malformed tags; they never
//! panic and never allocate unbounded memory from attacker-controlled (i.e.
//! torn-write) length fields.

use crate::query::{QueryId, QueryUpdate, StsQuery, SubscriberId};
use ps2stream_geo::{Point, Rect};
use ps2stream_text::{BooleanExpr, TermId};

/// Upper bound accepted for any decoded element count. Real queries have a
/// handful of clauses; a count beyond this is torn-write garbage and must be
/// rejected before it sizes an allocation.
pub const MAX_COUNT: u32 = 1 << 20;

/// Why a byte slice failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The slice ended before the value was complete.
    Truncated,
    /// An enum tag byte holds no known variant.
    BadTag(u8),
    /// A length field exceeds [`MAX_COUNT`] (torn-write garbage).
    Oversize(u32),
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "record truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::Oversize(n) => write!(f, "implausible element count {n}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked cursor over an encoded byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a count field, rejecting implausible values before they size an
    /// allocation.
    pub fn count(&mut self) -> Result<u32, WireError> {
        let n = self.u32()?;
        if n > MAX_COUNT {
            return Err(WireError::Oversize(n));
        }
        Ok(n)
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a [`Point`].
pub fn encode_point(out: &mut Vec<u8>, p: &Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

/// Decodes a [`Point`].
pub fn decode_point(r: &mut WireReader<'_>) -> Result<Point, WireError> {
    Ok(Point::new(r.f64()?, r.f64()?))
}

/// Encodes a [`Rect`].
pub fn encode_rect(out: &mut Vec<u8>, rect: &Rect) {
    encode_point(out, &rect.min);
    encode_point(out, &rect.max);
}

/// Decodes a [`Rect`].
pub fn decode_rect(r: &mut WireReader<'_>) -> Result<Rect, WireError> {
    let min = decode_point(r)?;
    let max = decode_point(r)?;
    Ok(Rect { min, max })
}

/// Encodes a [`BooleanExpr`] as its DNF clause list.
pub fn encode_expr(out: &mut Vec<u8>, expr: &BooleanExpr) {
    let clauses = expr.conjunctions();
    put_u32(out, clauses.len() as u32);
    for clause in clauses {
        put_u32(out, clause.len() as u32);
        for t in clause {
            put_u32(out, t.0);
        }
    }
}

/// Decodes a [`BooleanExpr`].
pub fn decode_expr(r: &mut WireReader<'_>) -> Result<BooleanExpr, WireError> {
    let nclauses = r.count()?;
    let mut clauses = Vec::with_capacity(nclauses as usize);
    for _ in 0..nclauses {
        let nterms = r.count()?;
        let mut clause = Vec::with_capacity(nterms as usize);
        for _ in 0..nterms {
            clause.push(TermId(r.u32()?));
        }
        clauses.push(clause);
    }
    Ok(BooleanExpr::from_dnf(clauses))
}

/// Encodes an [`StsQuery`].
pub fn encode_query(out: &mut Vec<u8>, q: &StsQuery) {
    put_u64(out, q.id.0);
    put_u64(out, q.subscriber.0);
    encode_rect(out, &q.region);
    encode_expr(out, &q.keywords);
}

/// Decodes an [`StsQuery`].
pub fn decode_query(r: &mut WireReader<'_>) -> Result<StsQuery, WireError> {
    let id = QueryId(r.u64()?);
    let subscriber = SubscriberId(r.u64()?);
    let region = decode_rect(r)?;
    let keywords = decode_expr(r)?;
    Ok(StsQuery::new(id, subscriber, keywords, region))
}

/// `QueryUpdate::Insert` tag byte.
pub const TAG_INSERT: u8 = 1;
/// `QueryUpdate::Delete` tag byte.
pub const TAG_DELETE: u8 = 2;

/// Encodes a [`QueryUpdate`].
pub fn encode_update(out: &mut Vec<u8>, update: &QueryUpdate) {
    match update {
        QueryUpdate::Insert(q) => {
            out.push(TAG_INSERT);
            encode_query(out, q);
        }
        QueryUpdate::Delete(q) => {
            out.push(TAG_DELETE);
            encode_query(out, q);
        }
    }
}

/// Decodes a [`QueryUpdate`].
pub fn decode_update(r: &mut WireReader<'_>) -> Result<QueryUpdate, WireError> {
    match r.u8()? {
        TAG_INSERT => Ok(QueryUpdate::Insert(decode_query(r)?)),
        TAG_DELETE => Ok(QueryUpdate::Delete(decode_query(r)?)),
        tag => Err(WireError::BadTag(tag)),
    }
}

/// Decodes a [`QueryUpdate`] that must span the whole slice exactly.
pub fn decode_update_exact(buf: &[u8]) -> Result<QueryUpdate, WireError> {
    let mut r = WireReader::new(buf);
    let update = decode_update(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(update)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query(id: u64) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id.wrapping_mul(31)),
            BooleanExpr::from_dnf([vec![TermId(3), TermId(9)], vec![TermId(7)]]),
            Rect::from_coords(-1.25, 0.5, 3.75, 9.0),
        )
    }

    #[test]
    fn update_roundtrips() {
        for update in [
            QueryUpdate::Insert(sample_query(42)),
            QueryUpdate::Delete(sample_query(7)),
        ] {
            let mut buf = Vec::new();
            encode_update(&mut buf, &update);
            let decoded = decode_update_exact(&buf).unwrap();
            assert_eq!(decoded, update);
        }
    }

    #[test]
    fn every_truncation_errors_without_panicking() {
        let mut buf = Vec::new();
        encode_update(&mut buf, &QueryUpdate::Insert(sample_query(5)));
        for len in 0..buf.len() {
            let err = decode_update_exact(&buf[..len]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated),
                "prefix of {len} bytes: {err:?}"
            );
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf = Vec::new();
        encode_update(&mut buf, &QueryUpdate::Insert(sample_query(5)));
        buf[0] = 0x77;
        assert_eq!(decode_update_exact(&buf), Err(WireError::BadTag(0x77)));
    }

    #[test]
    fn oversize_count_is_rejected_before_allocating() {
        // tag + id + subscriber + rect, then a poisoned clause count
        let mut buf = Vec::new();
        buf.push(TAG_INSERT);
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        encode_rect(&mut buf, &Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        put_u32(&mut buf, u32::MAX);
        assert_eq!(
            decode_update_exact(&buf),
            Err(WireError::Oversize(u32::MAX))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_update(&mut buf, &QueryUpdate::Delete(sample_query(9)));
        buf.push(0);
        assert_eq!(decode_update_exact(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn encoding_is_deterministic() {
        let update = QueryUpdate::Insert(sample_query(123));
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_update(&mut a, &update);
        encode_update(&mut b, &update);
        assert_eq!(a, b);
    }
}
