//! Spatio-Textual Subscription (STS) queries.

use crate::object::SpatioTextualObject;
use ps2stream_geo::Rect;
use ps2stream_text::BooleanExpr;
use serde::{Deserialize, Serialize};

/// Identifier of an STS query, unique within one system instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u64);

impl QueryId {
    /// The raw id value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Identifier of the subscriber who registered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubscriberId(pub u64);

/// A Spatio-Textual Subscription query `q = <K, R>` (Section III-A):
/// a boolean keyword expression plus a rectangular region of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StsQuery {
    /// Unique query id.
    pub id: QueryId,
    /// Subscriber that registered the query.
    pub subscriber: SubscriberId,
    /// Boolean keyword expression `q.K`.
    pub keywords: BooleanExpr,
    /// Spatial region of interest `q.R`.
    pub region: Rect,
}

impl StsQuery {
    /// Creates a new STS query.
    pub fn new(id: QueryId, subscriber: SubscriberId, keywords: BooleanExpr, region: Rect) -> Self {
        Self {
            id,
            subscriber,
            keywords,
            region,
        }
    }

    /// Returns true if the object is a result of this query: the object
    /// location lies inside `q.R` and the object text satisfies `q.K`
    /// (Section III-A, matching semantics).
    pub fn matches(&self, object: &SpatioTextualObject) -> bool {
        self.region.contains_point(&object.location) && self.keywords.matches_sorted(&object.terms)
    }

    /// Approximate heap footprint in bytes. This is the per-query size `S_g`
    /// contribution used by the Minimum Cost Migration problem.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.keywords.memory_usage()
    }
}

/// An update request on the subscription side of the system: users submit new
/// subscriptions or drop existing ones (Section III-B). Deletion requests
/// carry the complete query description — Section IV-C relies on this so the
/// dispatcher can route the deletion exactly like the original insertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryUpdate {
    /// Register a new STS query.
    Insert(StsQuery),
    /// Drop an existing STS query (full query description included).
    Delete(StsQuery),
}

impl QueryUpdate {
    /// The query id affected by the update.
    pub fn query_id(&self) -> QueryId {
        match self {
            QueryUpdate::Insert(q) | QueryUpdate::Delete(q) => q.id,
        }
    }

    /// The full query description carried by the update.
    pub fn query(&self) -> &StsQuery {
        match self {
            QueryUpdate::Insert(q) | QueryUpdate::Delete(q) => q,
        }
    }

    /// Returns true for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, QueryUpdate::Insert(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use ps2stream_geo::Point;
    use ps2stream_text::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn obj(terms: Vec<u32>, x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(0),
            terms.into_iter().map(TermId).collect(),
            Point::new(x, y),
        )
    }

    #[test]
    fn matches_requires_both_space_and_text() {
        let q = StsQuery::new(
            QueryId(1),
            SubscriberId(1),
            BooleanExpr::and_of([t(1), t(2)]),
            Rect::from_coords(0.0, 0.0, 10.0, 10.0),
        );
        assert!(q.matches(&obj(vec![1, 2, 3], 5.0, 5.0)));
        // text satisfied, outside region
        assert!(!q.matches(&obj(vec![1, 2], 15.0, 5.0)));
        // inside region, text unsatisfied
        assert!(!q.matches(&obj(vec![1], 5.0, 5.0)));
    }

    #[test]
    fn or_query_matching() {
        let q = StsQuery::new(
            QueryId(2),
            SubscriberId(1),
            BooleanExpr::or_of([t(7), t(8)]),
            Rect::from_coords(-1.0, -1.0, 1.0, 1.0),
        );
        assert!(q.matches(&obj(vec![8], 0.0, 0.0)));
        assert!(q.matches(&obj(vec![7, 9], 0.5, -0.5)));
        assert!(!q.matches(&obj(vec![9], 0.0, 0.0)));
    }

    #[test]
    fn boundary_point_matches() {
        let q = StsQuery::new(
            QueryId(3),
            SubscriberId(2),
            BooleanExpr::single(t(1)),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        );
        assert!(q.matches(&obj(vec![1], 1.0, 1.0)));
        assert!(q.matches(&obj(vec![1], 0.0, 0.0)));
    }

    #[test]
    fn query_update_accessors() {
        let q = StsQuery::new(
            QueryId(5),
            SubscriberId(1),
            BooleanExpr::single(t(1)),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        );
        let mut q9 = q.clone();
        q9.id = QueryId(9);
        let ins = QueryUpdate::Insert(q);
        let del = QueryUpdate::Delete(q9);
        assert_eq!(ins.query_id(), QueryId(5));
        assert!(ins.is_insert());
        assert_eq!(ins.query().id, QueryId(5));
        assert_eq!(del.query_id(), QueryId(9));
        assert!(!del.is_insert());
    }

    #[test]
    fn memory_usage_positive() {
        let q = StsQuery::new(
            QueryId(1),
            SubscriberId(1),
            BooleanExpr::and_of([t(1), t(2), t(3)]),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        );
        assert!(q.memory_usage() >= std::mem::size_of::<StsQuery>());
    }
}
