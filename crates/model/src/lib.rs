//! Shared domain model for PS2Stream.
//!
//! Defines the spatio-textual object, the STS (Spatio-Textual Subscription)
//! query, query update requests, stream records and match results used by
//! every other crate of the reproduction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod object;
pub mod query;
pub mod record;
pub mod wire;

pub use object::{ObjectId, SpatioTextualObject};
pub use query::{QueryId, QueryUpdate, StsQuery, SubscriberId};
pub use record::{DispatcherId, MatchResult, StreamRecord, WorkerId};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_text::{BooleanExpr, TermId};

    fn arb_terms() -> impl Strategy<Value = Vec<TermId>> {
        proptest::collection::vec((0u32..40).prop_map(TermId), 0..15)
    }

    fn arb_expr() -> impl Strategy<Value = BooleanExpr> {
        proptest::collection::vec(
            proptest::collection::vec((0u32..40).prop_map(TermId), 1..3),
            1..3,
        )
        .prop_map(BooleanExpr::from_dnf)
    }

    proptest! {
        #[test]
        fn query_matches_iff_region_and_expr(
            terms in arb_terms(),
            expr in arb_expr(),
            ox in -10.0f64..10.0,
            oy in -10.0f64..10.0,
            qx in -10.0f64..10.0,
            qy in -10.0f64..10.0,
            side in 0.1f64..10.0,
        ) {
            let object = SpatioTextualObject::new(ObjectId(1), terms, Point::new(ox, oy));
            let region = Rect::square(Point::new(qx, qy), side);
            let query = StsQuery::new(QueryId(1), SubscriberId(1), expr.clone(), region);
            let expected =
                region.contains_point(&object.location) && expr.matches_sorted(&object.terms);
            prop_assert_eq!(query.matches(&object), expected);
        }
    }
}
