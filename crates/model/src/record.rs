//! Stream records and match results.
//!
//! The input to PS2Stream is a single logical stream interleaving
//! spatio-textual objects with STS query insertions/deletions. Workers emit
//! [`MatchResult`]s which the mergers deduplicate and deliver to subscribers.

use crate::object::{ObjectId, SpatioTextualObject};
use crate::query::{QueryId, QueryUpdate, SubscriberId};
use serde::{Deserialize, Serialize};

/// Identifier of a worker in the cluster (dense, `0 .. num_workers`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The worker id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a dispatcher in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DispatcherId(pub u32);

/// One tuple of the input stream: either a spatio-textual object to match or
/// an update (insert/delete) of an STS query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamRecord {
    /// A spatio-textual object to be matched against registered queries.
    Object(SpatioTextualObject),
    /// An STS query insertion or deletion request.
    Update(QueryUpdate),
}

impl StreamRecord {
    /// Returns true if the record is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, StreamRecord::Object(_))
    }

    /// Returns true if the record is a query insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, StreamRecord::Update(QueryUpdate::Insert(_)))
    }

    /// Returns true if the record is a query deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, StreamRecord::Update(QueryUpdate::Delete(_)))
    }
}

/// A single match produced by a worker: object `object_id` satisfies query
/// `query_id` registered by `subscriber`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatchResult {
    /// The matching query.
    pub query_id: QueryId,
    /// The subscriber owning the query.
    pub subscriber: SubscriberId,
    /// The matched object.
    pub object_id: ObjectId,
}

impl MatchResult {
    /// Creates a match result.
    pub fn new(query_id: QueryId, subscriber: SubscriberId, object_id: ObjectId) -> Self {
        Self {
            query_id,
            subscriber,
            object_id,
        }
    }

    /// The deduplication key used by mergers: the same (query, object) pair
    /// may be produced by multiple workers when a query is replicated.
    pub fn dedup_key(&self) -> (QueryId, ObjectId) {
        (self.query_id, self.object_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StsQuery;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_text::{BooleanExpr, TermId};

    #[test]
    fn record_kind_predicates() {
        let obj = StreamRecord::Object(SpatioTextualObject::new(
            ObjectId(1),
            vec![TermId(1)],
            Point::origin(),
        ));
        let q = StsQuery::new(
            QueryId(1),
            SubscriberId(1),
            BooleanExpr::single(TermId(1)),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        );
        let ins = StreamRecord::Update(QueryUpdate::Insert(q.clone()));
        let del = StreamRecord::Update(QueryUpdate::Delete(q));
        assert!(obj.is_object() && !obj.is_insert() && !obj.is_delete());
        assert!(!ins.is_object() && ins.is_insert() && !ins.is_delete());
        assert!(!del.is_object() && !del.is_insert() && del.is_delete());
    }

    #[test]
    fn match_result_dedup_key_ignores_subscriber() {
        let a = MatchResult::new(QueryId(1), SubscriberId(1), ObjectId(2));
        let b = MatchResult::new(QueryId(1), SubscriberId(9), ObjectId(2));
        assert_eq!(a.dedup_key(), b.dedup_key());
        let c = MatchResult::new(QueryId(2), SubscriberId(1), ObjectId(2));
        assert_ne!(a.dedup_key(), c.dedup_key());
    }

    #[test]
    fn worker_id_index() {
        assert_eq!(WorkerId(3).index(), 3);
    }
}
