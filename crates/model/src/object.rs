//! Spatio-textual objects.

use ps2stream_geo::Point;
use ps2stream_text::{TermId, Tokenizer};
use serde::{Deserialize, Serialize};

/// Identifier of a spatio-textual object, unique within one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw id value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A spatio-textual object `o = <text, loc>` (Section III-A).
///
/// The textual content is stored pre-tokenized as a sorted, deduplicated list
/// of interned [`TermId`]s, which is the representation every index operates
/// on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatioTextualObject {
    /// Unique object id.
    pub id: ObjectId,
    /// Sorted, deduplicated term ids of the object text.
    pub terms: Vec<TermId>,
    /// Object location.
    pub location: Point,
    /// Event timestamp in microseconds (used for latency accounting and for
    /// the 60-day replay of the migration experiments).
    pub timestamp_us: u64,
}

impl SpatioTextualObject {
    /// Creates an object from already-tokenized terms. The term list is
    /// sorted and deduplicated.
    pub fn new(id: ObjectId, mut terms: Vec<TermId>, location: Point) -> Self {
        terms.sort_unstable();
        terms.dedup();
        Self {
            id,
            terms,
            location,
            timestamp_us: 0,
        }
    }

    /// Creates an object by tokenizing raw text with the given tokenizer.
    pub fn from_text(id: ObjectId, text: &str, location: Point, tokenizer: &Tokenizer) -> Self {
        Self::new(id, tokenizer.tokenize(text), location)
    }

    /// Sets the event timestamp (microseconds).
    pub fn with_timestamp(mut self, timestamp_us: u64) -> Self {
        self.timestamp_us = timestamp_us;
        self
    }

    /// Returns true if the object text contains the term.
    #[inline]
    pub fn contains_term(&self, term: TermId) -> bool {
        self.terms.binary_search(&term).is_ok()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.terms.len() * std::mem::size_of::<TermId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_text::Vocabulary;

    #[test]
    fn new_sorts_and_dedups_terms() {
        let o = SpatioTextualObject::new(
            ObjectId(1),
            vec![TermId(5), TermId(1), TermId(5)],
            Point::new(1.0, 2.0),
        );
        assert_eq!(o.terms, vec![TermId(1), TermId(5)]);
        assert_eq!(o.id.value(), 1);
    }

    #[test]
    fn from_text_tokenizes() {
        let tok = Tokenizer::new(Vocabulary::new());
        let o = SpatioTextualObject::from_text(
            ObjectId(7),
            "Kobe has retired",
            Point::new(-118.0, 34.0),
            &tok,
        );
        assert_eq!(o.terms.len(), 2);
        assert!(o.contains_term(tok.vocab().get("kobe").unwrap()));
        assert!(o.contains_term(tok.vocab().get("retired").unwrap()));
        assert!(!o.contains_term(TermId(9999)));
    }

    #[test]
    fn timestamp_builder() {
        let o =
            SpatioTextualObject::new(ObjectId(1), vec![], Point::origin()).with_timestamp(123_456);
        assert_eq!(o.timestamp_us, 123_456);
    }

    #[test]
    fn memory_usage_scales_with_terms() {
        let small = SpatioTextualObject::new(ObjectId(1), vec![TermId(1)], Point::origin());
        let large =
            SpatioTextualObject::new(ObjectId(2), (0..100).map(TermId).collect(), Point::origin());
        assert!(large.memory_usage() > small.memory_usage());
    }
}
