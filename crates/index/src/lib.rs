//! Worker-side indexing structures for PS2Stream.
//!
//! The central structure is [`Gi2Index`], the Grid-Inverted-Index each worker
//! maintains over its registered STS queries (Section IV-D of the paper):
//! a uniform grid whose cells each hold an inverted index keyed by the
//! queries' least frequent keywords, with lazy deletion and per-cell load
//! statistics that feed the dynamic load adjustment algorithms.
//!
//! # Example
//!
//! ```
//! use ps2stream_geo::{Point, Rect};
//! use ps2stream_index::{Gi2Config, Gi2Index};
//! use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
//! use ps2stream_text::{BooleanExpr, TermId};
//!
//! let mut index = Gi2Index::new(Gi2Config::new(Rect::from_coords(0.0, 0.0, 8.0, 8.0)));
//! index.insert(StsQuery::new(
//!     QueryId(1),
//!     SubscriberId(1),
//!     BooleanExpr::and_of([TermId(3)]),
//!     Rect::from_coords(0.0, 0.0, 4.0, 4.0),
//! ));
//! let matches = index.match_object(&SpatioTextualObject::new(
//!     ObjectId(9),
//!     vec![TermId(3)],
//!     Point::new(1.0, 1.0),
//! ));
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].query_id, QueryId(1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod gi2;
pub mod scratch;
pub mod slab;
pub mod snapshot;

pub use cell::{CellIndex, CellTermStat};
pub use gi2::{CellLoadStat, Gi2Config, Gi2Index};
pub use scratch::MatchScratch;
pub use slab::SlotId;
pub use snapshot::{decode_snapshot, SnapshotParts};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId};

    #[derive(Debug, Clone)]
    struct GenQuery {
        id: u64,
        clauses: Vec<Vec<u32>>,
        cx: f64,
        cy: f64,
        side: f64,
    }

    #[derive(Debug, Clone)]
    struct GenObject {
        id: u64,
        terms: Vec<u32>,
        x: f64,
        y: f64,
    }

    fn arb_query(id: u64) -> impl Strategy<Value = GenQuery> {
        (
            proptest::collection::vec(proptest::collection::vec(0u32..25, 1..3), 1..3),
            0.0f64..64.0,
            0.0f64..64.0,
            0.5f64..30.0,
        )
            .prop_map(move |(clauses, cx, cy, side)| GenQuery {
                id,
                clauses,
                cx,
                cy,
                side,
            })
    }

    fn arb_object(id: u64) -> impl Strategy<Value = GenObject> {
        (
            proptest::collection::vec(0u32..25, 0..8),
            0.0f64..64.0,
            0.0f64..64.0,
        )
            .prop_map(move |(terms, x, y)| GenObject { id, terms, x, y })
    }

    fn build_query(g: &GenQuery) -> StsQuery {
        StsQuery::new(
            QueryId(g.id),
            SubscriberId(g.id),
            BooleanExpr::from_dnf(
                g.clauses
                    .iter()
                    .map(|c| c.iter().map(|t| TermId(*t)).collect::<Vec<_>>()),
            ),
            Rect::square(Point::new(g.cx, g.cy), g.side),
        )
    }

    fn build_object(g: &GenObject) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(g.id),
            g.terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(g.x, g.y),
        )
    }

    /// One record of an [`Op::Interleaved`] worker batch: objects mixed with
    /// query updates in arrival order.
    #[derive(Debug, Clone)]
    enum BatchItem {
        /// An object record; accumulates into the current run.
        Obj(GenObject),
        /// A query insertion; splits (flushes) the current run.
        Ins(GenQuery),
        /// A query deletion; splits (flushes) the current run.
        Del(u64),
    }

    fn arb_batch_item() -> impl Strategy<Value = BatchItem> {
        prop_oneof![
            4 => (0u64..1_000).prop_flat_map(arb_object).prop_map(BatchItem::Obj),
            2 => (0u64..30).prop_flat_map(arb_query).prop_map(BatchItem::Ins),
            1 => (0u64..30).prop_map(BatchItem::Del),
        ]
    }

    /// One step of the randomized operation-sequence workload of
    /// `gi2_ops_sequence_matches_brute_force`.
    #[derive(Debug, Clone)]
    enum Op {
        /// Register (or replace) a query; routed to index A.
        Insert(GenQuery),
        /// Drop a query id from both indexes.
        Delete(u64),
        /// Match a small batch of objects against both indexes.
        Match(Vec<GenObject>),
        /// A worker input batch interleaving objects with query updates:
        /// consecutive objects form a run matched through the batched
        /// kernel, and every update flushes the run first (the worker's
        /// run-splitting logic in `Worker::handle_records`).
        Interleaved(Vec<BatchItem>),
        /// Migrate one grid cell between the indexes (direction from parity).
        Migrate(u32, u32),
        /// Replicate a cell's queries containing a term into the peer index
        /// (the text-split hand-off; the merger would deduplicate).
        Replicate(u32, u32, u32),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..30).prop_flat_map(arb_query).prop_map(Op::Insert),
            2 => (0u64..30).prop_map(Op::Delete),
            3 => proptest::collection::vec((0u64..1_000).prop_flat_map(arb_object), 1..6)
                .prop_map(Op::Match),
            2 => proptest::collection::vec(arb_batch_item(), 1..12)
                .prop_map(Op::Interleaved),
            1 => (0u32..16, 0u32..16).prop_map(|(c, r)| Op::Migrate(c, r)),
            1 => (0u32..16, 0u32..16, 0u32..25).prop_map(|(c, r, t)| Op::Replicate(c, r, t)),
        ]
    }

    /// Matches `objects` through the batched kernel on `a` and the
    /// scratch-threaded singles on `b`, and pins the combined, deduplicated
    /// result to a brute-force scan of the model.
    fn check_batch(
        a: &mut Gi2Index,
        b: &mut Gi2Index,
        model: &std::collections::BTreeMap<u64, StsQuery>,
        scratch: &mut MatchScratch,
        objects: &[SpatioTextualObject],
    ) -> Result<(), TestCaseError> {
        let mut got: Vec<(u64, QueryId)> = Vec::new();
        a.match_batch(objects.iter(), scratch, |_, o, r| {
            got.extend(r.iter().map(|m| (o.id.0, m.query_id)));
        });
        for o in objects {
            let r = b.match_object_into(o, scratch);
            got.extend(r.iter().map(|m| (o.id.0, m.query_id)));
        }
        got.sort_unstable();
        got.dedup(); // replicas match on both sides (merger dedups)
        let mut expected: Vec<(u64, QueryId)> = Vec::new();
        for o in objects {
            expected.extend(
                model
                    .values()
                    .filter(|q| q.matches(o))
                    .map(|q| (o.id.0, q.id)),
            );
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// GI² must return exactly the same matches as a brute-force scan
        /// over all registered queries, for any workload.
        #[test]
        fn gi2_matches_equal_brute_force(
            queries in proptest::collection::vec((0u64..1000).prop_flat_map(arb_query), 0..40),
            objects in proptest::collection::vec((0u64..1000).prop_flat_map(arb_object), 0..20),
        ) {
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut idx = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut reference: Vec<StsQuery> = Vec::new();
            for (i, gq) in queries.iter().enumerate() {
                let mut q = build_query(gq);
                q.id = QueryId(i as u64); // ensure unique ids
                reference.push(q.clone());
                idx.insert(q);
            }
            for go in &objects {
                let o = build_object(go);
                let mut got: Vec<QueryId> =
                    idx.match_object(&o).iter().map(|m| m.query_id).collect();
                got.sort_unstable();
                got.dedup();
                let mut expected: Vec<QueryId> = reference
                    .iter()
                    .filter(|q| q.matches(&o))
                    .map(|q| q.id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }

        /// After deleting a random subset of queries, GI² must behave exactly
        /// like a brute-force scan over the remaining queries.
        #[test]
        fn gi2_with_deletions_matches_brute_force(
            queries in proptest::collection::vec((0u64..1000).prop_flat_map(arb_query), 1..30),
            objects in proptest::collection::vec((0u64..1000).prop_flat_map(arb_object), 0..15),
            delete_mask in proptest::collection::vec(proptest::bool::ANY, 30),
        ) {
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut idx = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut live: Vec<StsQuery> = Vec::new();
            for (i, gq) in queries.iter().enumerate() {
                let mut q = build_query(gq);
                q.id = QueryId(i as u64);
                idx.insert(q.clone());
                if *delete_mask.get(i).unwrap_or(&false) {
                    idx.delete(&q);
                } else {
                    live.push(q);
                }
            }
            for go in &objects {
                let o = build_object(go);
                let mut got: Vec<QueryId> =
                    idx.match_object(&o).iter().map(|m| m.query_id).collect();
                got.sort_unstable();
                let mut expected: Vec<QueryId> =
                    live.iter().filter(|q| q.matches(&o)).map(|q| q.id).collect();
                expected.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }

        /// The full kernel (slab slots + signature prefilter + epoch dedup +
        /// batched matching) must agree exactly with a brute-force scan over
        /// the live query set, under an arbitrary interleaving of inserts,
        /// deletes, cell migrations and replications **mid-stream** —
        /// including updates arriving *inside* a worker input batch, which
        /// exercise the run-splitting flush of `Worker::handle_records`.
        #[test]
        fn gi2_ops_sequence_matches_brute_force(
            ops in proptest::collection::vec(arb_op(), 1..40),
        ) {
            use ps2stream_geo::CellId;
            use std::collections::BTreeMap;
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut a = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut b = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut model: BTreeMap<u64, StsQuery> = BTreeMap::new();
            let mut scratch = MatchScratch::new();
            let mut next_object = 0u64;
            for op in ops {
                match op {
                    Op::Insert(gq) => {
                        let q = build_query(&gq);
                        // updates are routed as delete + insert, so a replaced
                        // query cannot linger in the peer index
                        a.delete_by_id(q.id);
                        b.delete_by_id(q.id);
                        model.insert(q.id.0, q.clone());
                        a.insert(q);
                    }
                    Op::Delete(id) => {
                        a.delete_by_id(QueryId(id));
                        b.delete_by_id(QueryId(id));
                        model.remove(&id);
                    }
                    Op::Match(gen_objects) => {
                        let objects: Vec<SpatioTextualObject> = gen_objects
                            .iter()
                            .map(|g| {
                                let mut o = build_object(g);
                                o.id = ObjectId(next_object);
                                next_object += 1;
                                o
                            })
                            .collect();
                        // batched API on A, scratch-threaded singles on B:
                        // both entry points stay pinned to brute force
                        check_batch(&mut a, &mut b, &model, &mut scratch, &objects)?;
                    }
                    Op::Interleaved(items) => {
                        // mirrors `Worker::handle_records`: consecutive
                        // objects accumulate into a run matched through the
                        // batched kernel; an insert/delete flushes the run
                        // first, so the update cannot affect objects that
                        // arrived before it in the same batch
                        let mut run: Vec<SpatioTextualObject> = Vec::new();
                        for item in items {
                            match item {
                                BatchItem::Obj(g) => {
                                    let mut o = build_object(&g);
                                    o.id = ObjectId(next_object);
                                    next_object += 1;
                                    run.push(o);
                                }
                                BatchItem::Ins(gq) => {
                                    check_batch(&mut a, &mut b, &model, &mut scratch, &run)?;
                                    run.clear();
                                    let q = build_query(&gq);
                                    a.delete_by_id(q.id);
                                    b.delete_by_id(q.id);
                                    model.insert(q.id.0, q.clone());
                                    a.insert(q);
                                }
                                BatchItem::Del(id) => {
                                    check_batch(&mut a, &mut b, &model, &mut scratch, &run)?;
                                    run.clear();
                                    a.delete_by_id(QueryId(id));
                                    b.delete_by_id(QueryId(id));
                                    model.remove(&id);
                                }
                            }
                        }
                        check_batch(&mut a, &mut b, &model, &mut scratch, &run)?;
                    }
                    Op::Migrate(c, r) => {
                        let cell = CellId::new(c, r);
                        if (c + r) % 2 == 0 {
                            for q in a.extract_cell(cell) {
                                b.insert(q);
                            }
                        } else {
                            for q in b.extract_cell(cell) {
                                a.insert(q);
                            }
                        }
                    }
                    Op::Replicate(c, r, t) => {
                        let cell = CellId::new(c, r);
                        for q in
                            a.replicate_cell_where(cell, |q| q.keywords.contains_term(TermId(t)))
                        {
                            b.insert(q);
                        }
                    }
                }
            }
            // end state: the union of live queries equals the model
            let mut live: Vec<u64> = a.queries().chain(b.queries()).map(|q| q.id.0).collect();
            live.sort_unstable();
            live.dedup();
            let expected_ids: Vec<u64> = model.keys().copied().collect();
            prop_assert_eq!(live, expected_ids);
        }

        /// Migrating an arbitrary cell from one index to another never loses
        /// or duplicates matches when results are combined and deduplicated.
        #[test]
        fn gi2_cell_migration_preserves_global_matching(
            queries in proptest::collection::vec((0u64..1000).prop_flat_map(arb_query), 1..25),
            objects in proptest::collection::vec((0u64..1000).prop_flat_map(arb_object), 1..15),
            cell_col in 0u32..16,
            cell_row in 0u32..16,
        ) {
            use ps2stream_geo::CellId;
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut a = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut b = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut reference: Vec<StsQuery> = Vec::new();
            for (i, gq) in queries.iter().enumerate() {
                let mut q = build_query(gq);
                q.id = QueryId(i as u64);
                reference.push(q.clone());
                a.insert(q);
            }
            for q in a.extract_cell(CellId::new(cell_col, cell_row)) {
                b.insert(q);
            }
            for go in &objects {
                let o = build_object(go);
                let mut got: Vec<QueryId> = a
                    .match_object(&o)
                    .iter()
                    .chain(b.match_object(&o).iter())
                    .map(|m| m.query_id)
                    .collect();
                got.sort_unstable();
                got.dedup();
                let mut expected: Vec<QueryId> = reference
                    .iter()
                    .filter(|q| q.matches(&o))
                    .map(|q| q.id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }
    }
}
