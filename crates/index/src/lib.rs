//! Worker-side indexing structures for PS2Stream.
//!
//! The central structure is [`Gi2Index`], the Grid-Inverted-Index each worker
//! maintains over its registered STS queries (Section IV-D of the paper):
//! a uniform grid whose cells each hold an inverted index keyed by the
//! queries' least frequent keywords, with lazy deletion and per-cell load
//! statistics that feed the dynamic load adjustment algorithms.
//!
//! # Example
//!
//! ```
//! use ps2stream_geo::{Point, Rect};
//! use ps2stream_index::{Gi2Config, Gi2Index};
//! use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
//! use ps2stream_text::{BooleanExpr, TermId};
//!
//! let mut index = Gi2Index::new(Gi2Config::new(Rect::from_coords(0.0, 0.0, 8.0, 8.0)));
//! index.insert(StsQuery::new(
//!     QueryId(1),
//!     SubscriberId(1),
//!     BooleanExpr::and_of([TermId(3)]),
//!     Rect::from_coords(0.0, 0.0, 4.0, 4.0),
//! ));
//! let matches = index.match_object(&SpatioTextualObject::new(
//!     ObjectId(9),
//!     vec![TermId(3)],
//!     Point::new(1.0, 1.0),
//! ));
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].query_id, QueryId(1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod gi2;

pub use cell::{CellIndex, CellTermStat};
pub use gi2::{CellLoadStat, Gi2Config, Gi2Index};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, StsQuery, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId};

    #[derive(Debug, Clone)]
    struct GenQuery {
        id: u64,
        clauses: Vec<Vec<u32>>,
        cx: f64,
        cy: f64,
        side: f64,
    }

    #[derive(Debug, Clone)]
    struct GenObject {
        id: u64,
        terms: Vec<u32>,
        x: f64,
        y: f64,
    }

    fn arb_query(id: u64) -> impl Strategy<Value = GenQuery> {
        (
            proptest::collection::vec(proptest::collection::vec(0u32..25, 1..3), 1..3),
            0.0f64..64.0,
            0.0f64..64.0,
            0.5f64..30.0,
        )
            .prop_map(move |(clauses, cx, cy, side)| GenQuery {
                id,
                clauses,
                cx,
                cy,
                side,
            })
    }

    fn arb_object(id: u64) -> impl Strategy<Value = GenObject> {
        (
            proptest::collection::vec(0u32..25, 0..8),
            0.0f64..64.0,
            0.0f64..64.0,
        )
            .prop_map(move |(terms, x, y)| GenObject { id, terms, x, y })
    }

    fn build_query(g: &GenQuery) -> StsQuery {
        StsQuery::new(
            QueryId(g.id),
            SubscriberId(g.id),
            BooleanExpr::from_dnf(
                g.clauses
                    .iter()
                    .map(|c| c.iter().map(|t| TermId(*t)).collect::<Vec<_>>()),
            ),
            Rect::square(Point::new(g.cx, g.cy), g.side),
        )
    }

    fn build_object(g: &GenObject) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(g.id),
            g.terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(g.x, g.y),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// GI² must return exactly the same matches as a brute-force scan
        /// over all registered queries, for any workload.
        #[test]
        fn gi2_matches_equal_brute_force(
            queries in proptest::collection::vec((0u64..1000).prop_flat_map(arb_query), 0..40),
            objects in proptest::collection::vec((0u64..1000).prop_flat_map(arb_object), 0..20),
        ) {
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut idx = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut reference: Vec<StsQuery> = Vec::new();
            for (i, gq) in queries.iter().enumerate() {
                let mut q = build_query(gq);
                q.id = QueryId(i as u64); // ensure unique ids
                reference.push(q.clone());
                idx.insert(q);
            }
            for go in &objects {
                let o = build_object(go);
                let mut got: Vec<QueryId> =
                    idx.match_object(&o).iter().map(|m| m.query_id).collect();
                got.sort_unstable();
                got.dedup();
                let mut expected: Vec<QueryId> = reference
                    .iter()
                    .filter(|q| q.matches(&o))
                    .map(|q| q.id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }

        /// After deleting a random subset of queries, GI² must behave exactly
        /// like a brute-force scan over the remaining queries.
        #[test]
        fn gi2_with_deletions_matches_brute_force(
            queries in proptest::collection::vec((0u64..1000).prop_flat_map(arb_query), 1..30),
            objects in proptest::collection::vec((0u64..1000).prop_flat_map(arb_object), 0..15),
            delete_mask in proptest::collection::vec(proptest::bool::ANY, 30),
        ) {
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut idx = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut live: Vec<StsQuery> = Vec::new();
            for (i, gq) in queries.iter().enumerate() {
                let mut q = build_query(gq);
                q.id = QueryId(i as u64);
                idx.insert(q.clone());
                if *delete_mask.get(i).unwrap_or(&false) {
                    idx.delete(&q);
                } else {
                    live.push(q);
                }
            }
            for go in &objects {
                let o = build_object(go);
                let mut got: Vec<QueryId> =
                    idx.match_object(&o).iter().map(|m| m.query_id).collect();
                got.sort_unstable();
                let mut expected: Vec<QueryId> =
                    live.iter().filter(|q| q.matches(&o)).map(|q| q.id).collect();
                expected.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }

        /// Migrating an arbitrary cell from one index to another never loses
        /// or duplicates matches when results are combined and deduplicated.
        #[test]
        fn gi2_cell_migration_preserves_global_matching(
            queries in proptest::collection::vec((0u64..1000).prop_flat_map(arb_query), 1..25),
            objects in proptest::collection::vec((0u64..1000).prop_flat_map(arb_object), 1..15),
            cell_col in 0u32..16,
            cell_row in 0u32..16,
        ) {
            use ps2stream_geo::CellId;
            let bounds = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
            let mut a = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut b = Gi2Index::new(Gi2Config::new(bounds).with_granularity_exp(4));
            let mut reference: Vec<StsQuery> = Vec::new();
            for (i, gq) in queries.iter().enumerate() {
                let mut q = build_query(gq);
                q.id = QueryId(i as u64);
                reference.push(q.clone());
                a.insert(q);
            }
            for q in a.extract_cell(CellId::new(cell_col, cell_row)) {
                b.insert(q);
            }
            for go in &objects {
                let o = build_object(go);
                let mut got: Vec<QueryId> = a
                    .match_object(&o)
                    .iter()
                    .chain(b.match_object(&o).iter())
                    .map(|m| m.query_id)
                    .collect();
                got.sort_unstable();
                got.dedup();
                let mut expected: Vec<QueryId> = reference
                    .iter()
                    .filter(|q| q.matches(&o))
                    .map(|q| q.id)
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }
    }
}
