//! Generational slab storage for the queries of one GI² index.
//!
//! The matching hot loop of [`crate::Gi2Index`] verifies candidates by
//! **array index** instead of a `HashMap<QueryId, _>` probe: every stored
//! query lives in a slot of a `QuerySlab` (`Vec<Slot>` plus an intrusive
//! free list), posting lists carry dense `u32` [`SlotId`]s, and two parallel
//! side arrays keep the per-slot data the hot loop touches most — a
//! liveness byte and the query's 64-bit term signature — densely packed.
//!
//! Slot lifecycle (the invariant that makes bare slot ids in posting lists
//! safe):
//!
//! * a slot is **live** while its query is registered;
//! * deleting a query turns its slot into a **tombstone** carrying the
//!   number of posting entries still referencing it;
//! * the slot is **freed** (and its generation bumped) only when that count
//!   reaches zero — i.e. only when no posting list references it any more.
//!
//! A freed slot can therefore be reused without any posting resurrecting the
//! old query: stale references simply cannot exist. The generation counter
//! is kept as an explicit witness of reuse (and is asserted on in tests).

use ps2stream_geo::CellId;
use ps2stream_model::{QueryId, StsQuery};
use ps2stream_text::TermId;
use std::collections::HashMap;

/// Dense identifier of a slot in one worker's `QuerySlab`. Posting lists
/// store these directly; they are only meaningful within the owning index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

impl SlotId {
    /// The slot as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A live query and the bookkeeping needed to unpost it.
#[derive(Debug, Clone)]
pub(crate) struct StoredQuery {
    /// The query itself.
    pub query: StsQuery,
    /// Approximate in-memory size (`S_g` accounting).
    pub bytes: usize,
    /// Cells of this index in which the query is posted.
    pub cells: Vec<CellId>,
    /// Terms the query is posted under (least frequent keyword of each
    /// conjunction at insertion time).
    pub posting_terms: Vec<TermId>,
}

/// One slot of the slab.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// Unused; `next` chains the free list (`u32::MAX` terminates it).
    Free { next: u32 },
    /// A registered query.
    Live(StoredQuery),
    /// A lazily deleted query: `pending` posting entries still reference the
    /// slot and are purged as their lists are traversed.
    Tombstoned {
        /// Posting entries not yet purged.
        pending: u32,
        /// Cells the deleted generation was posted in.
        cells: Vec<CellId>,
        /// Terms the deleted generation was posted under.
        posting_terms: Vec<TermId>,
        /// The deleted query's id (still present in the id map so a
        /// re-insert can purge the stale postings eagerly).
        id: QueryId,
    },
}

const FREE_END: u32 = u32::MAX;

/// The generational slab of one GI² index.
#[derive(Debug, Clone, Default)]
pub(crate) struct QuerySlab {
    slots: Vec<Slot>,
    /// Parallel array: `true` iff the slot is live (hot-loop liveness check
    /// without touching the fat `Slot` enum).
    live: Vec<bool>,
    /// Parallel array: the live query's boolean-expression signature
    /// ([`ps2stream_text::BooleanExpr::signature`]); unspecified for
    /// non-live slots.
    sigs: Vec<u64>,
    /// Parallel array: bumped every time a slot is freed; witnesses reuse.
    generations: Vec<u32>,
    /// Head of the free list (`FREE_END` when empty).
    free_head: u32,
    /// Id → slot for live **and** tombstoned queries.
    id_map: HashMap<QueryId, SlotId>,
    num_live: usize,
    num_tombstoned: usize,
}

impl QuerySlab {
    pub(crate) fn new() -> Self {
        Self {
            free_head: FREE_END,
            ..Self::default()
        }
    }

    /// Number of live queries.
    #[inline]
    pub(crate) fn num_live(&self) -> usize {
        self.num_live
    }

    /// Number of tombstoned (lazily deleted, not yet fully purged) queries.
    #[inline]
    pub(crate) fn num_tombstoned(&self) -> usize {
        self.num_tombstoned
    }

    /// Total number of slots ever allocated (live + tombstoned + free); the
    /// bound for per-slot scratch arrays.
    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot currently mapped to a query id (live or tombstoned).
    #[inline]
    pub(crate) fn find(&self, id: QueryId) -> Option<SlotId> {
        self.id_map.get(&id).copied()
    }

    #[inline]
    pub(crate) fn is_live(&self, slot: SlotId) -> bool {
        self.live[slot.index()]
    }

    /// The live-flag array (hot loop).
    #[inline]
    pub(crate) fn live_flags(&self) -> &[bool] {
        &self.live
    }

    /// The signature array (hot loop).
    #[inline]
    pub(crate) fn signatures(&self) -> &[u64] {
        &self.sigs
    }

    /// The raw slots (hot loop — candidate verification by array index).
    #[inline]
    pub(crate) fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// The generation of a slot (bumped on every free; test witness).
    #[inline]
    pub(crate) fn generation(&self, slot: SlotId) -> u32 {
        self.generations[slot.index()]
    }

    pub(crate) fn get_live(&self, slot: SlotId) -> Option<&StoredQuery> {
        match &self.slots[slot.index()] {
            Slot::Live(sq) => Some(sq),
            _ => None,
        }
    }

    pub(crate) fn get_live_mut(&mut self, slot: SlotId) -> Option<&mut StoredQuery> {
        match &mut self.slots[slot.index()] {
            Slot::Live(sq) => Some(sq),
            _ => None,
        }
    }

    /// Inserts a live query, reusing a free slot when one exists.
    pub(crate) fn insert(&mut self, stored: StoredQuery, sig: u64) -> SlotId {
        let id = stored.query.id;
        debug_assert!(
            !self.id_map.contains_key(&id),
            "insert over a mapped id must purge the old generation first"
        );
        let slot = if self.free_head != FREE_END {
            let idx = self.free_head as usize;
            let Slot::Free { next } = self.slots[idx] else {
                unreachable!("free list points at a non-free slot");
            };
            self.free_head = next;
            self.slots[idx] = Slot::Live(stored);
            SlotId(idx as u32)
        } else {
            self.slots.push(Slot::Live(stored));
            self.live.push(false);
            self.sigs.push(0);
            self.generations.push(0);
            SlotId((self.slots.len() - 1) as u32)
        };
        self.live[slot.index()] = true;
        self.sigs[slot.index()] = sig;
        self.id_map.insert(id, slot);
        self.num_live += 1;
        slot
    }

    /// Turns a live slot into a tombstone with `pending` postings to purge.
    pub(crate) fn tombstone(&mut self, slot: SlotId, pending: u32) {
        let idx = slot.index();
        let Slot::Live(sq) = std::mem::replace(&mut self.slots[idx], Slot::Free { next: FREE_END })
        else {
            panic!("tombstone of a non-live slot");
        };
        self.slots[idx] = Slot::Tombstoned {
            pending,
            cells: sq.cells,
            posting_terms: sq.posting_terms,
            id: sq.query.id,
        };
        self.live[idx] = false;
        self.num_live -= 1;
        self.num_tombstoned += 1;
    }

    /// Settles one purged posting of a tombstoned slot; frees the slot when
    /// its pending count reaches zero. No-op for already-freed slots (a slot
    /// purged from several lists in one sweep settles once per entry and may
    /// hit zero before the sweep's last entry).
    pub(crate) fn settle_one(&mut self, slot: SlotId) {
        let idx = slot.index();
        if let Slot::Tombstoned { pending, id, .. } = &mut self.slots[idx] {
            *pending = pending.saturating_sub(1);
            if *pending == 0 {
                let id = *id;
                self.id_map.remove(&id);
                self.num_tombstoned -= 1;
                self.release(slot);
            }
        }
    }

    /// Frees a live slot (eager unpost paths: replacement, extraction of a
    /// query's last cell). The caller must already have removed every
    /// posting referencing the slot.
    pub(crate) fn free_live(&mut self, slot: SlotId) -> StoredQuery {
        let idx = slot.index();
        let Slot::Live(sq) = std::mem::replace(&mut self.slots[idx], Slot::Free { next: FREE_END })
        else {
            panic!("free_live of a non-live slot");
        };
        self.live[idx] = false;
        self.num_live -= 1;
        self.id_map.remove(&sq.query.id);
        self.release(slot);
        sq
    }

    /// Discards a tombstone whose stale postings were purged eagerly
    /// (re-insert of a tombstoned id), returning its cells/terms.
    pub(crate) fn free_tombstone(&mut self, slot: SlotId) -> (Vec<CellId>, Vec<TermId>) {
        let idx = slot.index();
        let Slot::Tombstoned {
            cells,
            posting_terms,
            id,
            ..
        } = std::mem::replace(&mut self.slots[idx], Slot::Free { next: FREE_END })
        else {
            panic!("free_tombstone of a non-tombstoned slot");
        };
        self.id_map.remove(&id);
        self.num_tombstoned -= 1;
        self.release(slot);
        (cells, posting_terms)
    }

    fn release(&mut self, slot: SlotId) {
        let idx = slot.index();
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        self.slots[idx] = Slot::Free {
            next: self.free_head,
        };
        self.live[idx] = false;
        self.free_head = slot.0;
    }

    /// Iterates over the live queries.
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = &StoredQuery> + '_ {
        self.slots.iter().filter_map(|s| match s {
            Slot::Live(sq) => Some(sq),
            _ => None,
        })
    }

    /// Approximate memory footprint in bytes.
    pub(crate) fn memory_usage(&self) -> usize {
        let slots: usize = self
            .slots
            .iter()
            .map(|s| {
                std::mem::size_of::<Slot>()
                    + match s {
                        Slot::Free { .. } => 0,
                        Slot::Live(sq) => {
                            sq.bytes
                                + sq.cells.len() * std::mem::size_of::<CellId>()
                                + sq.posting_terms.len() * std::mem::size_of::<TermId>()
                        }
                        Slot::Tombstoned {
                            cells,
                            posting_terms,
                            ..
                        } => {
                            cells.len() * std::mem::size_of::<CellId>()
                                + posting_terms.len() * std::mem::size_of::<TermId>()
                        }
                    }
            })
            .sum();
        slots
            + self.live.len()
            + self.sigs.len() * std::mem::size_of::<u64>()
            + self.generations.len() * std::mem::size_of::<u32>()
            + self.id_map.len() * (std::mem::size_of::<(QueryId, SlotId)>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Rect;
    use ps2stream_model::SubscriberId;
    use ps2stream_text::BooleanExpr;

    fn stored(id: u64) -> StoredQuery {
        let query = StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::single(TermId(1)),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        );
        let bytes = query.memory_usage();
        StoredQuery {
            query,
            bytes,
            cells: vec![CellId::new(0, 0)],
            posting_terms: vec![TermId(1)],
        }
    }

    #[test]
    fn insert_find_free_roundtrip() {
        let mut slab = QuerySlab::new();
        let a = slab.insert(stored(1), 7);
        let b = slab.insert(stored(2), 9);
        assert_ne!(a, b);
        assert_eq!(slab.num_live(), 2);
        assert_eq!(slab.find(QueryId(1)), Some(a));
        assert!(slab.is_live(a));
        assert_eq!(slab.signatures()[a.index()], 7);
        let gen_before = slab.generation(a);
        let sq = slab.free_live(a);
        assert_eq!(sq.query.id, QueryId(1));
        assert_eq!(slab.num_live(), 1);
        assert_eq!(slab.find(QueryId(1)), None);
        // the freed slot is reused, with a bumped generation
        let c = slab.insert(stored(3), 0);
        assert_eq!(c, a);
        assert_eq!(slab.generation(c), gen_before + 1);
        assert_eq!(slab.capacity(), 2);
    }

    #[test]
    fn tombstone_settles_then_frees() {
        let mut slab = QuerySlab::new();
        let a = slab.insert(stored(1), 0);
        slab.tombstone(a, 2);
        assert_eq!(slab.num_live(), 0);
        assert_eq!(slab.num_tombstoned(), 1);
        assert!(!slab.is_live(a));
        // the id stays mapped while the tombstone is pending
        assert_eq!(slab.find(QueryId(1)), Some(a));
        slab.settle_one(a);
        assert_eq!(slab.num_tombstoned(), 1);
        slab.settle_one(a);
        assert_eq!(slab.num_tombstoned(), 0);
        assert_eq!(slab.find(QueryId(1)), None);
        // further settles of the freed slot are no-ops
        slab.settle_one(a);
        assert_eq!(slab.capacity(), 1);
    }

    #[test]
    fn free_tombstone_returns_posting_locations() {
        let mut slab = QuerySlab::new();
        let a = slab.insert(stored(1), 0);
        slab.tombstone(a, 1);
        let (cells, terms) = slab.free_tombstone(a);
        assert_eq!(cells, vec![CellId::new(0, 0)]);
        assert_eq!(terms, vec![TermId(1)]);
        assert_eq!(slab.num_tombstoned(), 0);
        assert_eq!(slab.find(QueryId(1)), None);
    }
}
