//! Reusable scratch state of the GI² matching kernel.
//!
//! The original `match_object` allocated a fresh `HashSet` (candidate
//! deduplication) and two `Vec`s (results, purged postings) per object.
//! [`MatchScratch`] replaces all three with buffers that live across
//! objects — the worker owns one and threads it through
//! [`crate::Gi2Index::match_object_into`] / [`crate::Gi2Index::match_batch`],
//! making steady-state matching allocation-free:
//!
//! * deduplication is an **epoch-stamped visit array** indexed by slot id —
//!   "seen this object" is `visited[slot] == epoch`, and clearing between
//!   objects is a single `epoch += 1`;
//! * the results and purged-slot buffers are recycled (`clear()` keeps
//!   capacity).

use crate::slab::SlotId;
use ps2stream_model::MatchResult;

/// Reusable per-worker scratch for the matching hot loop. One instance may
/// serve any number of [`crate::Gi2Index`]es (the visit array grows to the
/// largest slab it has seen).
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Current object's epoch; `visited[slot] == epoch` ⇔ candidate already
    /// checked for this object.
    epoch: u64,
    /// Last epoch each slot was visited in. Sized to the slab capacity on
    /// [`MatchScratch::begin_object`]. A `u64` epoch never wraps in
    /// practice, so stale stamps can never alias a current epoch.
    visited: Vec<u64>,
    /// Match results of the current object (recycled).
    pub(crate) results: Vec<MatchResult>,
    /// Slots whose tombstoned postings were physically removed and await
    /// lazy-deletion settlement (recycled; in batch mode settled once per
    /// batch).
    pub(crate) purged: Vec<SlotId>,
    /// Distinct-slot buffer for the extraction/replication cold paths
    /// (recycled).
    pub(crate) slots: Vec<SlotId>,
}

impl MatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The match results of the most recent object.
    pub fn results(&self) -> &[MatchResult] {
        &self.results
    }

    /// Sizes the visit array for a slab of `slots` slots. Called once per
    /// batch by the batched path (the slab cannot grow mid-batch, so the
    /// per-object work reduces to the epoch bump of
    /// [`MatchScratch::next_epoch`]).
    #[inline]
    pub(crate) fn begin_batch(&mut self, slots: usize) {
        if self.visited.len() < slots {
            self.visited.resize(slots, 0);
        }
    }

    /// Starts a new object's dedup scope: stale visit stamps stop matching
    /// the current epoch.
    #[inline]
    pub(crate) fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Starts a new object: bumps the dedup epoch and sizes the visit array
    /// for a slab of `slots` slots.
    #[inline]
    pub(crate) fn begin_object(&mut self, slots: usize) {
        self.begin_batch(slots);
        self.next_epoch();
    }

    /// Marks a slot as visited for the current object; returns `true` on the
    /// first visit.
    #[inline]
    pub(crate) fn first_visit(&mut self, slot: SlotId) -> bool {
        let stamp = &mut self.visited[slot.index()];
        if *stamp == self.epoch {
            false
        } else {
            *stamp = self.epoch;
            true
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.visited.capacity() * std::mem::size_of::<u64>()
            + self.results.capacity() * std::mem::size_of::<MatchResult>()
            + (self.purged.capacity() + self.slots.capacity()) * std::mem::size_of::<SlotId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_dedup_resets_between_objects() {
        let mut s = MatchScratch::new();
        s.begin_object(4);
        assert!(s.first_visit(SlotId(2)));
        assert!(!s.first_visit(SlotId(2)));
        assert!(s.first_visit(SlotId(3)));
        s.begin_object(4);
        assert!(s.first_visit(SlotId(2)), "a new epoch forgets old visits");
        // growing the slab grows the visit array
        s.begin_object(16);
        assert!(s.first_visit(SlotId(15)));
        assert!(!s.first_visit(SlotId(15)));
    }
}
