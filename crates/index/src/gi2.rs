//! GI² — the Grid-Inverted-Index maintained by every worker.
//!
//! Following Section IV-D of the paper, every worker organizes its STS
//! queries in a uniform grid; inside each cell overlapped by a query's
//! region, the query is appended to the inverted list of its least frequent
//! keyword (one per conjunction of the DNF, which generalizes the paper's
//! AND-only / OR rule). Deletions are lazy: deleted query ids are recorded in
//! a tombstone table and physically removed from posting lists while they are
//! traversed during object matching.

use crate::cell::{CellIndex, CellTermStat};
use ps2stream_geo::{CellId, Rect, UniformGrid};
use ps2stream_model::{MatchResult, QueryId, SpatioTextualObject, StsQuery};
use ps2stream_text::{TermId, TermStats};
use std::collections::{HashMap, HashSet};

/// Configuration of a GI² index.
#[derive(Debug, Clone)]
pub struct Gi2Config {
    /// Bounding rectangle of the indexed space.
    pub bounds: Rect,
    /// The grid has `2^granularity_exp × 2^granularity_exp` cells.
    /// The paper's evaluation uses 6 (a 64×64 grid).
    pub granularity_exp: u32,
}

impl Gi2Config {
    /// Creates a configuration with the paper's default granularity (2⁶×2⁶).
    pub fn new(bounds: Rect) -> Self {
        Self {
            bounds,
            granularity_exp: 6,
        }
    }

    /// Overrides the grid granularity exponent.
    pub fn with_granularity_exp(mut self, exp: u32) -> Self {
        self.granularity_exp = exp;
        self
    }
}

#[derive(Debug, Clone)]
struct StoredQuery {
    query: StsQuery,
    bytes: usize,
    /// Cells of this index in which the query is posted.
    cells: Vec<CellId>,
    /// Terms the query is posted under (least frequent keyword of each
    /// conjunction at insertion time).
    posting_terms: Vec<TermId>,
}

/// Per-cell load statistics exposed for dynamic load adjustment
/// (Definition 3: `L_g = n_o * n_q`; `S_g` = total query bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLoadStat {
    /// The cell.
    pub cell: CellId,
    /// Number of objects that fell into the cell during the current period.
    pub objects: u64,
    /// Number of queries currently stored in the cell.
    pub queries: usize,
    /// Total approximate size of the stored queries in bytes.
    pub bytes: usize,
}

impl CellLoadStat {
    /// The load of the cell per Definition 3: `n_o * n_q`.
    pub fn load(&self) -> f64 {
        self.objects as f64 * self.queries as f64
    }
}

/// Lazy-deletion record of one deleted query: how many postings are still to
/// purge, and where they were posted — so a re-insert of the same id can
/// purge the leftovers eagerly instead of resurrecting them.
#[derive(Debug, Clone)]
struct Tombstone {
    /// Posting entries not yet purged.
    pending: usize,
    /// Cells the deleted generation was posted in.
    cells: Vec<CellId>,
    /// Terms the deleted generation was posted under.
    posting_terms: Vec<TermId>,
}

/// The Grid-Inverted-Index of one worker.
#[derive(Debug, Clone)]
pub struct Gi2Index {
    grid: UniformGrid,
    cells: Vec<CellIndex>,
    queries: HashMap<QueryId, StoredQuery>,
    /// Lazy-deletion table: ids whose postings have not all been purged yet.
    tombstones: HashMap<QueryId, Tombstone>,
    /// Term statistics used to pick the least frequent keyword at insertion.
    stats: TermStats,
    /// Counters for the matching work performed (used by the load model).
    matches_checked: u64,
    objects_processed: u64,
}

impl Gi2Index {
    /// Creates an empty index.
    pub fn new(config: Gi2Config) -> Self {
        let grid = UniformGrid::with_power_of_two(config.bounds, config.granularity_exp);
        let cells = vec![CellIndex::new(); grid.num_cells()];
        Self {
            grid,
            cells,
            queries: HashMap::new(),
            tombstones: HashMap::new(),
            stats: TermStats::new(),
            matches_checked: 0,
            objects_processed: 0,
        }
    }

    /// Seeds the term statistics used for least-frequent-keyword selection
    /// (e.g. from a corpus sample distributed by the dispatchers).
    pub fn set_term_stats(&mut self, stats: TermStats) {
        self.stats = stats;
    }

    /// The grid geometry of the index.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Number of live (non-deleted) queries stored in the index.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Returns true if a query id is currently stored (and not deleted).
    pub fn contains_query(&self, id: QueryId) -> bool {
        self.queries.contains_key(&id)
    }

    /// Total number of candidate query evaluations performed so far.
    pub fn matches_checked(&self) -> u64 {
        self.matches_checked
    }

    /// Total number of objects processed so far.
    pub fn objects_processed(&self) -> u64 {
        self.objects_processed
    }

    /// Inserts an STS query (Section IV-D posting rule). Re-inserting an
    /// existing id replaces the previous version.
    pub fn insert(&mut self, query: StsQuery) {
        if let Some(old) = self.queries.remove(&query.id) {
            // Replacing a live id: purge the old postings eagerly. Lazy
            // tombstoning would be undone the moment the id becomes live
            // again below, orphaning the old generation's postings forever.
            for &cell in &old.cells {
                let idx = self.grid.cell_index(cell);
                for &t in &old.posting_terms {
                    self.cells[idx].purge_postings(t, |q| q == query.id);
                }
                self.cells[idx].note_removed(old.bytes);
            }
        }
        // A previously tombstoned id that is re-inserted must stop being
        // treated as deleted — and its not-yet-purged postings must go now,
        // for the same reason as above.
        if let Some(tombstone) = self.tombstones.remove(&query.id) {
            for &cell in &tombstone.cells {
                let idx = self.grid.cell_index(cell);
                for &t in &tombstone.posting_terms {
                    self.cells[idx].purge_postings(t, |q| q == query.id);
                }
            }
        }
        let posting_terms = query
            .keywords
            .representative_terms(|t| self.stats.frequency(t));
        let cells = self.grid.cells_overlapping(&query.region);
        let bytes = query.memory_usage();
        for &cell in &cells {
            let idx = self.grid.cell_index(cell);
            self.cells[idx].post(query.id, &posting_terms, bytes);
        }
        self.queries.insert(
            query.id,
            StoredQuery {
                query,
                bytes,
                cells,
                posting_terms,
            },
        );
    }

    /// Deletes a query given the full query description (the deletion request
    /// carries the complete query, Section IV-C). Uses lazy deletion: posting
    /// entries are purged during subsequent matching.
    pub fn delete(&mut self, query: &StsQuery) -> bool {
        self.delete_by_id(query.id)
    }

    /// Deletes a query by id. Returns false if the id was not stored.
    pub fn delete_by_id(&mut self, id: QueryId) -> bool {
        let Some(stored) = self.queries.remove(&id) else {
            return false;
        };
        let mut pending = 0usize;
        for &cell in &stored.cells {
            let idx = self.grid.cell_index(cell);
            self.cells[idx].note_removed(stored.bytes);
            pending += stored.posting_terms.len();
        }
        if pending > 0 {
            self.tombstones.insert(
                id,
                Tombstone {
                    pending,
                    cells: stored.cells,
                    posting_terms: stored.posting_terms,
                },
            );
        }
        true
    }

    /// Matches a spatio-textual object against the indexed queries, returning
    /// one [`MatchResult`] per satisfied query (deduplicated). Posting lists
    /// traversed along the way are purged of tombstoned entries.
    pub fn match_object(&mut self, object: &SpatioTextualObject) -> Vec<MatchResult> {
        self.objects_processed += 1;
        self.stats.observe(&object.terms);
        let Some(cell) = self.grid.cell_of(&object.location) else {
            return Vec::new();
        };
        let idx = self.grid.cell_index(cell);
        let cell_index = &mut self.cells[idx];
        cell_index.record_object();

        let mut results = Vec::new();
        let mut seen: HashSet<QueryId> = HashSet::new();
        let mut purged: Vec<QueryId> = Vec::new();
        for &term in &object.terms {
            // Lazy deletion: drop tombstoned entries from the list we are
            // about to traverse.
            let removed = cell_index.purge_postings(term, |q| self.tombstones.contains_key(&q));
            purged.extend(removed);
            cell_index.record_object_term(term);
            let Some(list) = cell_index.postings(term) else {
                continue;
            };
            for &qid in list {
                if !seen.insert(qid) {
                    continue;
                }
                let Some(stored) = self.queries.get(&qid) else {
                    continue;
                };
                self.matches_checked += 1;
                if stored.query.matches(object) {
                    results.push(MatchResult::new(qid, stored.query.subscriber, object.id));
                }
            }
        }
        self.settle_tombstones(purged);
        results
    }

    /// Settles lazy-deletion bookkeeping after postings were physically
    /// purged: each purged entry decrements its query's pending count, and a
    /// count reaching zero retires the tombstone.
    fn settle_tombstones(&mut self, purged: Vec<QueryId>) {
        for qid in purged {
            if let Some(tombstone) = self.tombstones.get_mut(&qid) {
                tombstone.pending = tombstone.pending.saturating_sub(1);
                if tombstone.pending == 0 {
                    self.tombstones.remove(&qid);
                }
            }
        }
    }

    /// Number of query ids awaiting lazy-deletion settlement (exposed for
    /// tests and memory accounting diagnostics).
    pub fn pending_tombstones(&self) -> usize {
        self.tombstones.len()
    }

    /// Per-cell load statistics for every non-empty cell, used by the dynamic
    /// load adjustment algorithms.
    pub fn cell_loads(&self) -> Vec<CellLoadStat> {
        self.grid
            .all_cells()
            .filter_map(|cell| {
                let c = &self.cells[self.grid.cell_index(cell)];
                if c.num_queries() == 0 && c.objects_seen() == 0 {
                    return None;
                }
                Some(CellLoadStat {
                    cell,
                    objects: c.objects_seen(),
                    queries: c.num_queries(),
                    bytes: c.query_bytes(),
                })
            })
            .collect()
    }

    /// Per-term statistics of one cell (queries posted and recent object
    /// hits), consumed by the Phase-I text-split decision of the local load
    /// adjustment.
    pub fn cell_term_stats(&self, cell: CellId) -> Vec<CellTermStat> {
        self.cells[self.grid.cell_index(cell)].term_stats()
    }

    /// Resets the per-cell object counters (start of a new load period).
    pub fn reset_load_counters(&mut self) {
        for c in &mut self.cells {
            c.reset_object_counter();
        }
        self.matches_checked = 0;
        self.objects_processed = 0;
    }

    /// Extracts every live query posted in `cell` that satisfies `filter`,
    /// removing those postings from the cell. Queries that are still posted
    /// in other cells of this index remain stored; queries whose last cell
    /// was extracted are removed entirely. Returns clones of the extracted
    /// queries — this is the unit of migration of the dynamic load
    /// adjustment (queries are migrated cell by cell).
    pub fn extract_cell_where<F: Fn(&StsQuery) -> bool>(
        &mut self,
        cell: CellId,
        filter: F,
    ) -> Vec<StsQuery> {
        let idx = self.grid.cell_index(cell);
        // Tombstoned queries must not merely be *skipped*: their postings
        // would stay behind in the extracted cell with their pending counts
        // unsettled (the cell may never receive another object once it is
        // migrated away, so the lazy sweep of `match_object` never runs), and
        // a later `insert` of the same query id removes the tombstone and
        // resurrects the stale postings. Physically purge them now and settle
        // the pending counts, exactly like the matching sweep would.
        let cell_index = &mut self.cells[idx];
        let purged = cell_index.purge_all_postings(|q| self.tombstones.contains_key(&q));
        self.settle_tombstones(purged);
        let ids = self.cells[idx].all_queries();
        let mut extracted = Vec::new();
        for qid in ids {
            let Some(stored) = self.queries.get(&qid) else {
                continue;
            };
            if !filter(&stored.query) {
                continue;
            }
            extracted.push(stored.query.clone());
            // Remove this cell's postings for the query.
            let terms = stored.posting_terms.clone();
            let bytes = stored.bytes;
            for t in terms {
                self.cells[idx].purge_postings(t, |q| q == qid);
            }
            self.cells[idx].note_removed(bytes);
            let stored = self
                .queries
                .get_mut(&qid)
                .expect("query present: checked above");
            stored.cells.retain(|c| *c != cell);
            if stored.cells.is_empty() {
                self.queries.remove(&qid);
            }
        }
        extracted
    }

    /// Extracts every live query posted in `cell` (see
    /// [`Gi2Index::extract_cell_where`]).
    pub fn extract_cell(&mut self, cell: CellId) -> Vec<StsQuery> {
        self.extract_cell_where(cell, |_| true)
    }

    /// Clones every live query posted in `cell` that satisfies `filter`,
    /// leaving the cell untouched — the unit of **text-split** migration.
    /// A term split moves only some of a cell's terms to another worker;
    /// a query whose representative terms straddle the moved and remaining
    /// groups must exist on *both* workers or objects routed by the
    /// not-moved terms stop matching it (the merger deduplicates the
    /// replicas' results). Queries are returned in id order.
    pub fn replicate_cell_where<F: Fn(&StsQuery) -> bool>(
        &self,
        cell: CellId,
        filter: F,
    ) -> Vec<StsQuery> {
        let idx = self.grid.cell_index(cell);
        self.cells[idx]
            .all_queries()
            .into_iter()
            .filter_map(|qid| {
                let stored = self.queries.get(&qid)?;
                filter(&stored.query).then(|| stored.query.clone())
            })
            .collect()
    }

    /// Approximate memory footprint of the index in bytes (posting lists,
    /// stored queries, tombstones and term statistics).
    pub fn memory_usage(&self) -> usize {
        let cells: usize = self.cells.iter().map(CellIndex::memory_usage).sum();
        let queries: usize = self
            .queries
            .values()
            .map(|s| {
                s.bytes
                    + s.cells.len() * std::mem::size_of::<CellId>()
                    + s.posting_terms.len() * std::mem::size_of::<TermId>()
                    + 32
            })
            .sum();
        let tombstones: usize = self
            .tombstones
            .values()
            .map(|t| {
                std::mem::size_of::<Tombstone>()
                    + t.cells.len() * std::mem::size_of::<CellId>()
                    + t.posting_terms.len() * std::mem::size_of::<TermId>()
                    + 24
            })
            .sum();
        cells + queries + tombstones + self.stats.memory_usage() + std::mem::size_of::<Self>()
    }

    /// Iterates over all live queries (used by tests and the global
    /// repartitioning handover).
    pub fn queries(&self) -> impl Iterator<Item = &StsQuery> + '_ {
        self.queries.values().map(|s| &s.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Point;
    use ps2stream_model::{ObjectId, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn config() -> Gi2Config {
        Gi2Config::new(Rect::from_coords(0.0, 0.0, 64.0, 64.0)).with_granularity_exp(4)
    }

    fn query(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    fn or_query(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::or_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    fn object(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    #[test]
    fn insert_and_match_and_query() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1, 2], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        idx.insert(query(2, &[3], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        assert_eq!(idx.num_queries(), 2);

        let results = idx.match_object(&object(100, &[1, 2, 9], 5.0, 5.0));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].query_id, QueryId(1));
        assert_eq!(results[0].object_id, ObjectId(100));

        // missing one AND term -> no match
        let results = idx.match_object(&object(101, &[1, 9], 5.0, 5.0));
        assert!(results.is_empty());

        // outside the region -> no match
        let results = idx.match_object(&object(102, &[1, 2], 50.0, 50.0));
        assert!(results.is_empty());
    }

    #[test]
    fn or_query_matches_any_keyword() {
        let mut idx = Gi2Index::new(config());
        idx.insert(or_query(
            1,
            &[5, 6],
            Rect::from_coords(0.0, 0.0, 64.0, 64.0),
        ));
        assert_eq!(idx.match_object(&object(1, &[5], 1.0, 1.0)).len(), 1);
        assert_eq!(idx.match_object(&object(2, &[6], 60.0, 60.0)).len(), 1);
        assert_eq!(idx.match_object(&object(3, &[7], 1.0, 1.0)).len(), 0);
        // both keywords present must still produce exactly one result
        assert_eq!(idx.match_object(&object(4, &[5, 6], 1.0, 1.0)).len(), 1);
    }

    #[test]
    fn query_spanning_many_cells_matches_everywhere_once() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 64.0, 64.0)));
        for (i, (x, y)) in [(1.0, 1.0), (30.0, 30.0), (63.0, 63.0)].iter().enumerate() {
            let res = idx.match_object(&object(i as u64, &[1], *x, *y));
            assert_eq!(res.len(), 1, "location ({x},{y})");
        }
    }

    #[test]
    fn delete_stops_matching() {
        let mut idx = Gi2Index::new(config());
        let q = query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        idx.insert(q.clone());
        assert_eq!(idx.match_object(&object(1, &[1], 5.0, 5.0)).len(), 1);
        assert!(idx.delete(&q));
        assert_eq!(idx.num_queries(), 0);
        assert_eq!(idx.match_object(&object(2, &[1], 5.0, 5.0)).len(), 0);
        // deleting again is a no-op
        assert!(!idx.delete(&q));
    }

    #[test]
    fn lazy_deletion_purges_tombstones_during_matching() {
        let mut idx = Gi2Index::new(config());
        let q = query(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0));
        idx.insert(q.clone());
        idx.delete(&q);
        assert!(!idx.tombstones.is_empty());
        // traversing the posting list purges the tombstone
        let _ = idx.match_object(&object(1, &[1], 1.0, 1.0));
        assert!(idx.tombstones.is_empty());
    }

    #[test]
    fn reinsert_after_delete_matches_again() {
        let mut idx = Gi2Index::new(config());
        let q = query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        idx.insert(q.clone());
        idx.delete(&q);
        idx.insert(q);
        assert_eq!(idx.match_object(&object(1, &[1], 5.0, 5.0)).len(), 1);
    }

    #[test]
    fn reinsert_same_id_replaces_query() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        idx.insert(query(1, &[2], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        assert_eq!(idx.num_queries(), 1);
        assert_eq!(idx.match_object(&object(1, &[1], 5.0, 5.0)).len(), 0);
        assert_eq!(idx.match_object(&object(2, &[2], 5.0, 5.0)).len(), 1);
    }

    #[test]
    fn cell_loads_reflect_objects_and_queries() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0)));
        let _ = idx.match_object(&object(1, &[1], 1.0, 1.0));
        let _ = idx.match_object(&object(2, &[2], 1.0, 1.0));
        let loads = idx.cell_loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].objects, 2);
        assert_eq!(loads[0].queries, 1);
        assert!(loads[0].bytes > 0);
        assert!(loads[0].load() > 0.0);
        idx.reset_load_counters();
        assert_eq!(idx.cell_loads()[0].objects, 0);
    }

    #[test]
    fn extract_cell_moves_queries_out() {
        let mut idx = Gi2Index::new(config());
        // a query confined to one cell and one spanning the whole space
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        idx.insert(query(2, &[1], Rect::from_coords(0.0, 0.0, 64.0, 64.0)));
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let extracted = idx.extract_cell(cell);
        assert_eq!(extracted.len(), 2);
        // the confined query is gone entirely, the spanning one remains
        assert!(!idx.contains_query(QueryId(1)));
        assert!(idx.contains_query(QueryId(2)));
        // objects in that cell no longer match anything here
        assert_eq!(idx.match_object(&object(1, &[1], 1.0, 1.0)).len(), 0);
        // but the spanning query still matches elsewhere
        assert_eq!(idx.match_object(&object(2, &[1], 40.0, 40.0)).len(), 1);
    }

    #[test]
    fn extract_cell_where_filters() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        idx.insert(query(2, &[2], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let extracted = idx.extract_cell_where(cell, |q| q.keywords.contains_term(TermId(1)));
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].id, QueryId(1));
        assert!(idx.contains_query(QueryId(2)));
    }

    #[test]
    fn tombstoned_postings_do_not_survive_cell_extraction() {
        // Regression test for the tombstone-resurrection bug: a query that is
        // deleted with no matching traffic (its lazy sweep never runs), whose
        // cell is then migrated out, used to leave its postings in the cell
        // and its pending count in the tombstone table. Re-inserting the same
        // QueryId (with a different region and keywords) then removed the
        // tombstone and resurrected the stale postings.
        let mut idx = Gi2Index::new(config());
        // lives in exactly one cell, posted under term 1
        let q1 = query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5));
        idx.insert(q1.clone());
        idx.delete(&q1);
        assert_eq!(idx.pending_tombstones(), 1);

        // migrate the cell out with no object ever having traversed the list
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let extracted = idx.extract_cell(cell);
        assert!(extracted.is_empty(), "a deleted query must not migrate");
        // the pending count is settled, not leaked
        assert_eq!(idx.pending_tombstones(), 0);

        // re-insert the same id with a different region (elsewhere) and keywords
        let q1_new = query(1, &[2], Rect::from_coords(40.0, 40.0, 50.0, 50.0));
        idx.insert(q1_new);

        // an object in the old cell carrying the old keyword must not match —
        // and must not even reach a candidate check against a resurrected
        // stale posting
        let checked_before = idx.matches_checked();
        let results = idx.match_object(&object(7, &[1], 1.0, 1.0));
        assert!(results.is_empty(), "stale posting resurrected a match");
        assert_eq!(
            idx.matches_checked(),
            checked_before,
            "a stale posting of the old generation was traversed as a candidate"
        );

        // a second extraction of the old cell must not ship the new query
        let re_extracted = idx.extract_cell(cell);
        assert!(re_extracted.is_empty());
        assert!(idx.contains_query(QueryId(1)));
        // the re-inserted query still works where it actually lives
        assert_eq!(idx.match_object(&object(8, &[2], 45.0, 45.0)).len(), 1);
    }

    #[test]
    fn replacing_a_live_id_purges_the_old_generation_postings() {
        // Re-inserting a live id (the replacement path, also exercised by
        // cell migration when a spanning query is re-shipped to a worker that
        // already holds it) must physically remove the old postings: the old
        // generation was tombstoned-then-untombstoned before, orphaning its
        // postings forever.
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        // replace with a different region and keywords
        idx.insert(query(1, &[2], Rect::from_coords(40.0, 40.0, 50.0, 50.0)));
        assert_eq!(idx.num_queries(), 1);
        assert_eq!(idx.pending_tombstones(), 0);

        // nothing of the old generation is traversed in the old cell
        let checked_before = idx.matches_checked();
        assert!(idx.match_object(&object(1, &[1], 1.0, 1.0)).is_empty());
        assert_eq!(idx.matches_checked(), checked_before);

        // the old cell ships nothing when migrated out
        let old_cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(idx.extract_cell(old_cell).is_empty());
        assert!(idx.contains_query(QueryId(1)));

        // re-inserting the same content repeatedly must not grow the posting
        // lists (no duplicate entries in the shared cell)
        let q = query(2, &[3], Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        idx.insert(q.clone());
        let mem_once = idx.memory_usage();
        for _ in 0..10 {
            idx.insert(q.clone());
        }
        assert_eq!(idx.memory_usage(), mem_once);
        assert_eq!(idx.match_object(&object(2, &[3], 5.0, 5.0)).len(), 1);
    }

    #[test]
    fn reinserting_a_tombstoned_id_purges_the_stale_postings() {
        // delete (no matching traffic) then re-insert with a different
        // region: the tombstoned generation's postings must not linger as
        // live-looking entries once the tombstone is removed.
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        idx.delete(&query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        assert_eq!(idx.pending_tombstones(), 1);
        idx.insert(query(1, &[1], Rect::from_coords(40.0, 40.0, 50.0, 50.0)));
        assert_eq!(idx.pending_tombstones(), 0);
        // the old cell holds nothing any more
        let checked_before = idx.matches_checked();
        assert!(idx.match_object(&object(1, &[1], 1.0, 1.0)).is_empty());
        assert_eq!(idx.matches_checked(), checked_before);
        let old_cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(idx.extract_cell(old_cell).is_empty());
        // the new generation works where it lives
        assert_eq!(idx.match_object(&object(2, &[1], 45.0, 45.0)).len(), 1);
    }

    #[test]
    fn extraction_settles_tombstones_of_multi_cell_queries() {
        // A deleted query spanning two cells: extracting one cell settles only
        // that cell's share of the pending count; the other cell's share is
        // settled by the lazy sweep when an object arrives there.
        let mut idx = Gi2Index::new(config());
        // spans cells (0,0) and (1,0): x in [0.5, 6.5] crosses the 4.0 cell border
        let q = query(1, &[1], Rect::from_coords(0.5, 0.5, 6.5, 1.5));
        idx.insert(q.clone());
        idx.delete(&q);
        assert_eq!(idx.pending_tombstones(), 1);
        let left = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(idx.extract_cell(left).is_empty());
        // still pending: the right cell's posting is not purged yet
        assert_eq!(idx.pending_tombstones(), 1);
        let _ = idx.match_object(&object(1, &[1], 5.0, 1.0));
        assert_eq!(idx.pending_tombstones(), 0);
    }

    #[test]
    fn migration_roundtrip_preserves_matching() {
        let mut source = Gi2Index::new(config());
        let mut target = Gi2Index::new(config());
        source.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        let cell = source.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        for q in source.extract_cell(cell) {
            target.insert(q);
        }
        assert_eq!(source.match_object(&object(1, &[1], 1.0, 1.0)).len(), 0);
        assert_eq!(target.match_object(&object(1, &[1], 1.0, 1.0)).len(), 1);
    }

    #[test]
    fn memory_usage_grows_with_queries() {
        let mut idx = Gi2Index::new(config());
        let base = idx.memory_usage();
        for i in 0..100 {
            idx.insert(query(
                i,
                &[(i % 10) as u32],
                Rect::from_coords(0.0, 0.0, 20.0, 20.0),
            ));
        }
        assert!(idx.memory_usage() > base);
    }

    #[test]
    fn counters_track_work() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        let _ = idx.match_object(&object(1, &[1], 5.0, 5.0));
        assert_eq!(idx.objects_processed(), 1);
        assert_eq!(idx.matches_checked(), 1);
    }
}
