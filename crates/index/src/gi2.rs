//! GI² — the Grid-Inverted-Index maintained by every worker.
//!
//! Following Section IV-D of the paper, every worker organizes its STS
//! queries in a uniform grid; inside each cell overlapped by a query's
//! region, the query is appended to the inverted list of its least frequent
//! keyword (one per conjunction of the DNF, which generalizes the paper's
//! AND-only / OR rule). Deletions are lazy: deleted query ids become slab
//! tombstones and their posting entries are physically removed while the
//! lists are traversed during object matching.
//!
//! # The matching kernel
//!
//! The per-object hot loop is allocation-free in steady state:
//!
//! * queries live in a generational `QuerySlab` (see [`crate::slab`]); posting
//!   lists carry dense `u32` slot ids, so candidate **verification is an
//!   array index** (no `HashMap<QueryId, _>` probe per candidate);
//! * each stored query carries a 64-bit **term signature**
//!   ([`BooleanExpr::signature`](ps2stream_text::BooleanExpr::signature));
//!   most non-matching candidates are rejected by one `AND` against the
//!   object's signature before the full boolean/spatial check runs;
//! * per-object state (candidate dedup, result and purge buffers) lives in
//!   a reusable [`MatchScratch`] — dedup is an epoch-stamped visit array,
//!   cleared by bumping an epoch counter;
//! * tombstone purging is folded into the candidate traversal itself: dead
//!   entries are compacted out of the list in the same pass that scans it,
//!   so there is no separate retain sweep at all (and no sweep cost when
//!   nothing is tombstoned);
//! * [`Gi2Index::match_batch`] amortizes the lazy-deletion settlement and
//!   the work counters across a whole batch of objects; term-statistics
//!   observation stays inside the per-object loop (a separate up-front pass
//!   over the batch would walk every term slice twice and trash the cache
//!   before matching starts — the very regression that made the batch API
//!   slower than single-object matching).

use crate::cell::{CellIndex, CellTermStat};
use crate::scratch::MatchScratch;
use crate::slab::{QuerySlab, Slot, SlotId, StoredQuery};
use ps2stream_geo::{CellId, Rect, UniformGrid};
use ps2stream_model::{MatchResult, QueryId, SpatioTextualObject, StsQuery};
use ps2stream_text::{terms_signature, TermStats};

/// Configuration of a GI² index.
#[derive(Debug, Clone, PartialEq)]
pub struct Gi2Config {
    /// Bounding rectangle of the indexed space.
    pub bounds: Rect,
    /// The grid has `2^granularity_exp × 2^granularity_exp` cells.
    /// The paper's evaluation uses 6 (a 64×64 grid).
    pub granularity_exp: u32,
}

impl Gi2Config {
    /// Creates a configuration with the paper's default granularity (2⁶×2⁶).
    pub fn new(bounds: Rect) -> Self {
        Self {
            bounds,
            granularity_exp: 6,
        }
    }

    /// Overrides the grid granularity exponent.
    pub fn with_granularity_exp(mut self, exp: u32) -> Self {
        self.granularity_exp = exp;
        self
    }
}

/// Per-cell load statistics exposed for dynamic load adjustment
/// (Definition 3: `L_g = n_o * n_q`; `S_g` = total query bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLoadStat {
    /// The cell.
    pub cell: CellId,
    /// Number of objects that fell into the cell during the current period.
    pub objects: u64,
    /// Number of queries currently stored in the cell.
    pub queries: usize,
    /// Total approximate size of the stored queries in bytes.
    pub bytes: usize,
}

impl CellLoadStat {
    /// The load of the cell per Definition 3: `n_o * n_q`.
    pub fn load(&self) -> f64 {
        self.objects as f64 * self.queries as f64
    }
}

/// The Grid-Inverted-Index of one worker.
#[derive(Debug, Clone)]
pub struct Gi2Index {
    grid: UniformGrid,
    cells: Vec<CellIndex>,
    /// Slab of stored queries (live + tombstoned); posting lists reference
    /// its slots.
    slab: QuerySlab,
    /// Term statistics used to pick the least frequent keyword at insertion.
    stats: TermStats,
    /// Counters for the matching work performed (used by the load model).
    matches_checked: u64,
    objects_processed: u64,
    /// Candidates rejected by the 64-bit signature prefilter alone.
    signature_rejections: u64,
    /// Internal scratch backing the allocating [`Gi2Index::match_object`]
    /// compatibility wrapper (the batched paths thread an external one).
    scratch: MatchScratch,
}

impl Gi2Index {
    /// Creates an empty index.
    pub fn new(config: Gi2Config) -> Self {
        let grid = UniformGrid::with_power_of_two(config.bounds, config.granularity_exp);
        let cells = vec![CellIndex::new(); grid.num_cells()];
        Self {
            grid,
            cells,
            slab: QuerySlab::new(),
            stats: TermStats::new(),
            matches_checked: 0,
            objects_processed: 0,
            signature_rejections: 0,
            scratch: MatchScratch::new(),
        }
    }

    /// Seeds the term statistics used for least-frequent-keyword selection
    /// (e.g. from a corpus sample distributed by the dispatchers).
    pub fn set_term_stats(&mut self, stats: TermStats) {
        self.stats = stats;
    }

    /// The term statistics accumulated from every matched object (exposed so
    /// tests can pin the batched and unbatched observation paths identical).
    pub fn term_stats(&self) -> &TermStats {
        &self.stats
    }

    /// The grid geometry of the index.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Number of live (non-deleted) queries stored in the index.
    pub fn num_queries(&self) -> usize {
        self.slab.num_live()
    }

    /// Returns true if a query id is currently stored (and not deleted).
    pub fn contains_query(&self, id: QueryId) -> bool {
        self.slab.find(id).is_some_and(|s| self.slab.is_live(s))
    }

    /// Total number of candidate query evaluations performed so far (full
    /// boolean/spatial checks; signature-rejected candidates are not
    /// counted — see [`Gi2Index::signature_rejections`]).
    pub fn matches_checked(&self) -> u64 {
        self.matches_checked
    }

    /// Total number of objects processed so far.
    pub fn objects_processed(&self) -> u64 {
        self.objects_processed
    }

    /// Candidates rejected by the signature prefilter alone since the last
    /// counter reset (diagnostics for the prefilter's selectivity).
    pub fn signature_rejections(&self) -> u64 {
        self.signature_rejections
    }

    /// Number of slab slots ever allocated (live + tombstoned + free) —
    /// exposed for tests and memory diagnostics.
    pub fn slab_capacity(&self) -> usize {
        self.slab.capacity()
    }

    /// The slab slot currently backing a query id, with its reuse
    /// generation — exposed for tests and diagnostics.
    pub fn slot_of(&self, id: QueryId) -> Option<(u32, u32)> {
        self.slab.find(id).map(|s| (s.0, self.slab.generation(s)))
    }

    /// Inserts an STS query (Section IV-D posting rule). Re-inserting an
    /// existing id replaces the previous version.
    pub fn insert(&mut self, query: StsQuery) {
        if let Some(slot) = self.slab.find(query.id) {
            if self.slab.is_live(slot) {
                // Replacing a live id: purge the old postings eagerly. Lazy
                // tombstoning would be undone the moment the id becomes live
                // again below, orphaning the old generation's postings
                // forever.
                let old = self.slab.free_live(slot);
                for &cell in &old.cells {
                    let idx = self.grid.cell_index(cell);
                    for &t in &old.posting_terms {
                        self.cells[idx].unpost(t, slot);
                    }
                    self.cells[idx].note_removed(old.bytes);
                }
            } else {
                // A previously tombstoned id that is re-inserted must stop
                // being treated as deleted — and its not-yet-purged postings
                // must go now, for the same reason as above.
                let (cells, terms) = self.slab.free_tombstone(slot);
                for &cell in &cells {
                    let idx = self.grid.cell_index(cell);
                    for &t in &terms {
                        self.cells[idx].unpost(t, slot);
                    }
                }
            }
        }
        let posting_terms = query
            .keywords
            .representative_terms(|t| self.stats.frequency(t));
        let cells = self.grid.cells_overlapping(&query.region);
        let bytes = query.memory_usage();
        let sig = query.keywords.signature();
        let slot = self.slab.insert(
            StoredQuery {
                query,
                bytes,
                cells,
                posting_terms,
            },
            sig,
        );
        let Gi2Index {
            slab,
            cells: grid_cells,
            grid,
            ..
        } = self;
        let sq = slab.get_live(slot).expect("slot was just filled");
        for &cell in &sq.cells {
            let idx = grid.cell_index(cell);
            grid_cells[idx].post(slot, &sq.posting_terms, sq.bytes);
        }
    }

    /// Deletes a query given the full query description (the deletion request
    /// carries the complete query, Section IV-C). Uses lazy deletion: posting
    /// entries are purged during subsequent matching.
    pub fn delete(&mut self, query: &StsQuery) -> bool {
        self.delete_by_id(query.id)
    }

    /// Deletes a query by id. Returns false if the id was not stored.
    pub fn delete_by_id(&mut self, id: QueryId) -> bool {
        let Some(slot) = self.slab.find(id) else {
            return false;
        };
        if !self.slab.is_live(slot) {
            return false; // already deleted, tombstone still settling
        }
        let Gi2Index {
            slab, cells, grid, ..
        } = self;
        let sq = slab.get_live(slot).expect("checked live above");
        let pending = (sq.cells.len() * sq.posting_terms.len()) as u32;
        for &cell in &sq.cells {
            cells[grid.cell_index(cell)].note_removed(sq.bytes);
        }
        if pending == 0 {
            let _ = self.slab.free_live(slot);
        } else {
            self.slab.tombstone(slot, pending);
        }
        true
    }

    /// Matches a spatio-textual object against the indexed queries, returning
    /// one [`MatchResult`] per satisfied query (deduplicated). Posting lists
    /// traversed along the way are purged of tombstoned entries.
    ///
    /// Compatibility wrapper over [`Gi2Index::match_object_into`] that
    /// allocates the returned `Vec`; hot paths should thread a
    /// [`MatchScratch`] instead.
    pub fn match_object(&mut self, object: &SpatioTextualObject) -> Vec<MatchResult> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let results = self.match_object_into(object, &mut scratch).to_vec();
        self.scratch = scratch;
        results
    }

    /// Matches one object using caller-provided scratch state; the returned
    /// slice lives in the scratch and is valid until its next use. Steady
    /// state performs **no allocation**.
    pub fn match_object_into<'s>(
        &mut self,
        object: &SpatioTextualObject,
        scratch: &'s mut MatchScratch,
    ) -> &'s [MatchResult] {
        self.objects_processed += 1;
        self.stats.observe(&object.terms);
        scratch.results.clear();
        scratch.purged.clear();
        if let Some(cell) = self.grid.cell_of(&object.location) {
            let idx = self.grid.cell_index(cell);
            self.cells[idx].record_object();
            let osig = terms_signature(&object.terms);
            scratch.begin_object(self.slab.capacity());
            Self::match_in_cell(
                &mut self.cells,
                &self.slab,
                idx,
                object,
                osig,
                scratch,
                &mut self.matches_checked,
                &mut self.signature_rejections,
            );
            Self::settle(&mut self.slab, &mut scratch.purged);
        }
        &scratch.results
    }

    /// Matches a whole batch of objects, calling `sink(position, object,
    /// results)` once per object in order. Amortized across the batch:
    /// lazy-deletion settlement (once at the end — no query mutation can
    /// occur mid-batch) and the work counters.
    ///
    /// Term statistics are observed **inside** the per-object loop, not in a
    /// separate up-front pass: walking every object's term slice before
    /// matching even starts would evict the posting lists from cache and walk
    /// the batch twice. The observation order is identical to calling
    /// [`Gi2Index::match_object_into`] per object, so the resulting
    /// [`TermStats`] are bit-identical to the unbatched path (pinned by
    /// `match_batch_term_stats_equal_per_object_observe`).
    pub fn match_batch<'a, I, F>(&mut self, objects: I, scratch: &mut MatchScratch, mut sink: F)
    where
        I: Iterator<Item = &'a SpatioTextualObject>,
        F: FnMut(usize, &'a SpatioTextualObject, &[MatchResult]),
    {
        scratch.purged.clear();
        // The slab cannot grow mid-batch (matching takes no query updates),
        // so the visit array is sized once here and each object only bumps
        // the dedup epoch.
        scratch.begin_batch(self.slab.capacity());
        let mut processed = 0u64;
        for (i, object) in objects.enumerate() {
            processed += 1;
            self.stats.observe(&object.terms);
            scratch.results.clear();
            if let Some(cell) = self.grid.cell_of(&object.location) {
                let idx = self.grid.cell_index(cell);
                self.cells[idx].record_object();
                let osig = terms_signature(&object.terms);
                scratch.next_epoch();
                Self::match_in_cell(
                    &mut self.cells,
                    &self.slab,
                    idx,
                    object,
                    osig,
                    scratch,
                    &mut self.matches_checked,
                    &mut self.signature_rejections,
                );
            }
            sink(i, object, &scratch.results);
        }
        self.objects_processed += processed;
        Self::settle(&mut self.slab, &mut scratch.purged);
    }

    /// The single-pass candidate loop of one object in one cell: traverses
    /// the posting lists of the object's terms, compacting tombstoned
    /// entries out **in the same pass** (no separate retain sweep),
    /// prefiltering candidates by signature, deduplicating via the scratch
    /// epoch and running the full check only on survivors.
    ///
    /// The caller must have prepared the scratch for this object (visit
    /// array sized to the slab, dedup epoch bumped).
    #[allow(clippy::too_many_arguments)]
    fn match_in_cell(
        cells: &mut [CellIndex],
        slab: &QuerySlab,
        idx: usize,
        object: &SpatioTextualObject,
        osig: u64,
        scratch: &mut MatchScratch,
        matches_checked: &mut u64,
        signature_rejections: &mut u64,
    ) {
        let live = slab.live_flags();
        let sigs = slab.signatures();
        let slots = slab.slots();
        let cell_index = &mut cells[idx];
        for &term in &object.terms {
            let Some(list) = cell_index.traverse(term) else {
                continue;
            };
            let mut write = 0usize;
            let mut purged_any = false;
            for read in 0..list.len() {
                let s = list[read];
                let si = s.index();
                if !live[si] {
                    // Lazy deletion: the slot is tombstoned (freed slots
                    // cannot appear in posting lists) — drop the entry and
                    // queue the settlement.
                    debug_assert!(matches!(slots[si], Slot::Tombstoned { .. }));
                    scratch.purged.push(s);
                    purged_any = true;
                    continue;
                }
                if write != read {
                    list[write] = s;
                }
                write += 1;
                if sigs[si] & !osig != 0 {
                    // The object provably misses a required keyword.
                    *signature_rejections += 1;
                    continue;
                }
                if !scratch.first_visit(s) {
                    continue;
                }
                *matches_checked += 1;
                let Slot::Live(sq) = &slots[si] else {
                    unreachable!("live flag set for a non-live slot");
                };
                if sq.query.matches(object) {
                    scratch.results.push(MatchResult::new(
                        sq.query.id,
                        sq.query.subscriber,
                        object.id,
                    ));
                }
            }
            if purged_any {
                list.truncate(write);
                cell_index.remove_if_empty(term);
            }
            if write > 0 {
                // live postings survived: the term counts as hit (a term
                // whose entries were all tombstoned accrues no hits, same as
                // the pre-slab purge-then-record order)
                cell_index.note_object_hit(term);
            }
        }
    }

    /// Settles lazy-deletion bookkeeping after postings were physically
    /// purged: each purged entry decrements its slot's pending count, and a
    /// count reaching zero frees the slot.
    fn settle(slab: &mut QuerySlab, purged: &mut Vec<SlotId>) {
        for s in purged.drain(..) {
            slab.settle_one(s);
        }
    }

    /// Number of query ids awaiting lazy-deletion settlement (exposed for
    /// tests and memory accounting diagnostics).
    pub fn pending_tombstones(&self) -> usize {
        self.slab.num_tombstoned()
    }

    /// Per-cell load statistics for every non-empty cell, used by the dynamic
    /// load adjustment algorithms.
    pub fn cell_loads(&self) -> Vec<CellLoadStat> {
        self.grid
            .all_cells()
            .filter_map(|cell| {
                let c = &self.cells[self.grid.cell_index(cell)];
                if c.num_queries() == 0 && c.objects_seen() == 0 {
                    return None;
                }
                Some(CellLoadStat {
                    cell,
                    objects: c.objects_seen(),
                    queries: c.num_queries(),
                    bytes: c.query_bytes(),
                })
            })
            .collect()
    }

    /// Per-term statistics of one cell (queries posted and recent object
    /// hits), consumed by the Phase-I text-split decision of the local load
    /// adjustment.
    pub fn cell_term_stats(&self, cell: CellId) -> Vec<CellTermStat> {
        self.cells[self.grid.cell_index(cell)].term_stats()
    }

    /// Streams one cell's per-term statistics to `f` without building an
    /// intermediate collection (the controller-path variant of
    /// [`Gi2Index::cell_term_stats`]).
    pub fn cell_term_stats_with<F: FnMut(CellTermStat)>(&self, cell: CellId, f: F) {
        self.cells[self.grid.cell_index(cell)].for_each_term_stat(f);
    }

    /// Resets the per-cell object counters (start of a new load period).
    pub fn reset_load_counters(&mut self) {
        for c in &mut self.cells {
            c.reset_object_counter();
        }
        self.matches_checked = 0;
        self.objects_processed = 0;
        self.signature_rejections = 0;
    }

    /// Extracts every live query posted in `cell` that satisfies `filter`,
    /// removing those postings from the cell. Queries that are still posted
    /// in other cells of this index remain stored; queries whose last cell
    /// was extracted are removed entirely. Returns clones of the extracted
    /// queries in id order — this is the unit of migration of the dynamic
    /// load adjustment (queries are migrated cell by cell).
    pub fn extract_cell_where<F: Fn(&StsQuery) -> bool>(
        &mut self,
        cell: CellId,
        filter: F,
    ) -> Vec<StsQuery> {
        let idx = self.grid.cell_index(cell);
        // Tombstoned queries must not merely be *skipped*: their postings
        // would stay behind in the extracted cell with their pending counts
        // unsettled (the cell may never receive another object once it is
        // migrated away, so the lazy sweep of matching never runs), and a
        // later `insert` of the same query id removes the tombstone and
        // resurrects the stale postings. Physically purge them now and settle
        // the pending counts, exactly like the matching sweep would. When
        // nothing is tombstoned anywhere, the whole pass is skipped.
        if self.slab.num_tombstoned() > 0 {
            let mut purged = std::mem::take(&mut self.scratch.purged);
            purged.clear();
            {
                let Gi2Index { slab, cells, .. } = &mut *self;
                cells[idx].purge_all_postings_into(|s| !slab.is_live(s), &mut purged);
            }
            Self::settle(&mut self.slab, &mut purged);
            self.scratch.purged = purged;
        }
        let mut slots = std::mem::take(&mut self.scratch.slots);
        slots.clear();
        self.cells[idx].distinct_queries_into(&mut slots);
        let mut extracted = Vec::new();
        for &slot in &slots {
            let Some(sq) = self.slab.get_live(slot) else {
                continue;
            };
            if !filter(&sq.query) {
                continue;
            }
            extracted.push(sq.query.clone());
            // Remove this cell's postings for the query.
            let bytes = sq.bytes;
            let terms = sq.posting_terms.clone();
            for &t in &terms {
                self.cells[idx].unpost(t, slot);
            }
            self.cells[idx].note_removed(bytes);
            let sq = self
                .slab
                .get_live_mut(slot)
                .expect("query present: checked above");
            sq.cells.retain(|c| *c != cell);
            if sq.cells.is_empty() {
                let _ = self.slab.free_live(slot);
            }
        }
        slots.clear();
        self.scratch.slots = slots;
        extracted.sort_by_key(|q| q.id);
        extracted
    }

    /// Extracts every live query posted in `cell` (see
    /// [`Gi2Index::extract_cell_where`]).
    pub fn extract_cell(&mut self, cell: CellId) -> Vec<StsQuery> {
        self.extract_cell_where(cell, |_| true)
    }

    /// Clones every live query posted in `cell` that satisfies `filter`,
    /// leaving the cell untouched — the unit of **text-split** migration.
    /// A term split moves only some of a cell's terms to another worker;
    /// a query whose representative terms straddle the moved and remaining
    /// groups must exist on *both* workers or objects routed by the
    /// not-moved terms stop matching it (the merger deduplicates the
    /// replicas' results). Queries are returned in id order.
    pub fn replicate_cell_where<F: Fn(&StsQuery) -> bool>(
        &self,
        cell: CellId,
        filter: F,
    ) -> Vec<StsQuery> {
        let idx = self.grid.cell_index(cell);
        let mut slots = Vec::new();
        self.cells[idx].distinct_queries_into(&mut slots);
        let mut out: Vec<StsQuery> = slots
            .into_iter()
            .filter_map(|slot| {
                let sq = self.slab.get_live(slot)?;
                filter(&sq.query).then(|| sq.query.clone())
            })
            .collect();
        out.sort_by_key(|q| q.id);
        out
    }

    /// Approximate memory footprint of the index in bytes (posting lists,
    /// the query slab, tombstones and term statistics).
    pub fn memory_usage(&self) -> usize {
        let cells: usize = self.cells.iter().map(CellIndex::memory_usage).sum();
        cells + self.slab.memory_usage() + self.stats.memory_usage() + std::mem::size_of::<Self>()
    }

    /// Iterates over all live queries (used by tests and the global
    /// repartitioning handover).
    pub fn queries(&self) -> impl Iterator<Item = &StsQuery> + '_ {
        self.slab.iter_live().map(|sq| &sq.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::Point;
    use ps2stream_model::{ObjectId, SubscriberId};
    use ps2stream_text::BooleanExpr;

    fn config() -> Gi2Config {
        Gi2Config::new(Rect::from_coords(0.0, 0.0, 64.0, 64.0)).with_granularity_exp(4)
    }

    fn query(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::and_of(terms.iter().map(|t| ps2stream_text::TermId(*t))),
            region,
        )
    }

    fn or_query(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id),
            BooleanExpr::or_of(terms.iter().map(|t| ps2stream_text::TermId(*t))),
            region,
        )
    }

    fn object(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| ps2stream_text::TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    #[test]
    fn insert_and_match_and_query() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1, 2], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        idx.insert(query(2, &[3], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        assert_eq!(idx.num_queries(), 2);

        let results = idx.match_object(&object(100, &[1, 2, 9], 5.0, 5.0));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].query_id, QueryId(1));
        assert_eq!(results[0].object_id, ObjectId(100));

        // missing one AND term -> no match
        let results = idx.match_object(&object(101, &[1, 9], 5.0, 5.0));
        assert!(results.is_empty());

        // outside the region -> no match
        let results = idx.match_object(&object(102, &[1, 2], 50.0, 50.0));
        assert!(results.is_empty());
    }

    #[test]
    fn match_object_into_reuses_scratch() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        let mut scratch = MatchScratch::new();
        let r = idx.match_object_into(&object(1, &[1], 5.0, 5.0), &mut scratch);
        assert_eq!(r.len(), 1);
        let r = idx.match_object_into(&object(2, &[2], 5.0, 5.0), &mut scratch);
        assert!(r.is_empty());
        let r = idx.match_object_into(&object(3, &[1], 5.0, 5.0), &mut scratch);
        assert_eq!(r.len(), 1);
        assert_eq!(scratch.results().len(), 1);
    }

    #[test]
    fn match_batch_equals_sequential_matching() {
        let mut a = Gi2Index::new(config());
        let mut b = Gi2Index::new(config());
        for i in 0..20u64 {
            let q = query(
                i,
                &[(i % 5) as u32],
                Rect::from_coords(0.0, 0.0, 30.0, 30.0),
            );
            a.insert(q.clone());
            b.insert(q);
        }
        // delete a few so the batch also sweeps tombstones
        for i in [3u64, 7, 11] {
            a.delete_by_id(QueryId(i));
            b.delete_by_id(QueryId(i));
        }
        let objects: Vec<SpatioTextualObject> = (0..40u64)
            .map(|i| object(i, &[(i % 6) as u32], (i % 32) as f64, ((i * 7) % 32) as f64))
            .collect();
        let mut scratch = MatchScratch::new();
        let mut batched: Vec<Vec<QueryId>> = Vec::new();
        b.match_batch(objects.iter(), &mut scratch, |i, _, r| {
            assert_eq!(i, batched.len());
            batched.push(r.iter().map(|m| m.query_id).collect());
        });
        for (i, o) in objects.iter().enumerate() {
            let mut expected: Vec<QueryId> = a.match_object(o).iter().map(|m| m.query_id).collect();
            expected.sort_unstable();
            let mut got = batched[i].clone();
            got.sort_unstable();
            assert_eq!(got, expected, "object {i}");
        }
        assert_eq!(a.objects_processed(), b.objects_processed());
        assert_eq!(a.pending_tombstones(), b.pending_tombstones());
    }

    #[test]
    fn match_batch_term_stats_equal_per_object_observe() {
        // The batched path must leave TermStats bit-identical to observing
        // every object one by one (the single-pass design folds observation
        // into the match loop — this pins that no object is observed twice,
        // skipped, or observed out of order).
        let mut batched = Gi2Index::new(config());
        let mut singles = Gi2Index::new(config());
        for i in 0..10u64 {
            let q = query(i, &[(i % 4) as u32], Rect::from_coords(0.0, 0.0, 8.0, 8.0));
            batched.insert(q.clone());
            singles.insert(q);
        }
        let objects: Vec<SpatioTextualObject> = (0..30u64)
            .map(|i| {
                object(
                    i,
                    &[(i % 7) as u32, 20 + (i % 3) as u32],
                    (i % 16) as f64,
                    ((i * 5) % 16) as f64,
                )
            })
            .collect();
        let mut scratch = MatchScratch::new();
        for chunk in objects.chunks(8) {
            batched.match_batch(chunk.iter(), &mut scratch, |_, _, _| {});
        }
        for o in &objects {
            let _ = singles.match_object_into(o, &mut scratch);
        }
        assert_eq!(batched.term_stats(), singles.term_stats());
        assert_eq!(batched.term_stats().num_docs(), objects.len() as u64);

        // an empty batch observes nothing and changes nothing
        let before = batched.term_stats().clone();
        batched.match_batch([].iter(), &mut scratch, |_, _, _| unreachable!());
        assert_eq!(batched.term_stats(), &before);
        assert_eq!(batched.objects_processed(), singles.objects_processed());
    }

    #[test]
    fn match_batch_observes_objects_in_all_tombstoned_cells() {
        // A cell whose posting entries are all tombstoned still has its
        // objects observed (and its tombstones settled) by the batched path,
        // exactly like the per-object path.
        let mut batched = Gi2Index::new(config());
        let mut singles = Gi2Index::new(config());
        for idx in [&mut batched, &mut singles] {
            for i in 0..4u64 {
                idx.insert(query(i, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
            }
            for i in 0..4u64 {
                idx.delete_by_id(QueryId(i));
            }
            assert_eq!(idx.pending_tombstones(), 4);
        }
        let objects: Vec<SpatioTextualObject> =
            (0..6u64).map(|i| object(i, &[1, 2], 1.0, 1.0)).collect();
        let mut scratch = MatchScratch::new();
        batched.match_batch(objects.iter(), &mut scratch, |_, _, r| {
            assert!(r.is_empty(), "tombstoned query must not match");
        });
        for o in &objects {
            assert!(singles.match_object_into(o, &mut scratch).is_empty());
        }
        assert_eq!(batched.term_stats(), singles.term_stats());
        assert_eq!(batched.term_stats().num_docs(), objects.len() as u64);
        assert_eq!(batched.pending_tombstones(), 0);
        assert_eq!(singles.pending_tombstones(), 0);
    }

    #[test]
    fn or_query_matches_any_keyword() {
        let mut idx = Gi2Index::new(config());
        idx.insert(or_query(
            1,
            &[5, 6],
            Rect::from_coords(0.0, 0.0, 64.0, 64.0),
        ));
        assert_eq!(idx.match_object(&object(1, &[5], 1.0, 1.0)).len(), 1);
        assert_eq!(idx.match_object(&object(2, &[6], 60.0, 60.0)).len(), 1);
        assert_eq!(idx.match_object(&object(3, &[7], 1.0, 1.0)).len(), 0);
        // both keywords present must still produce exactly one result
        assert_eq!(idx.match_object(&object(4, &[5, 6], 1.0, 1.0)).len(), 1);
    }

    #[test]
    fn query_spanning_many_cells_matches_everywhere_once() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 64.0, 64.0)));
        for (i, (x, y)) in [(1.0, 1.0), (30.0, 30.0), (63.0, 63.0)].iter().enumerate() {
            let res = idx.match_object(&object(i as u64, &[1], *x, *y));
            assert_eq!(res.len(), 1, "location ({x},{y})");
        }
    }

    #[test]
    fn delete_stops_matching() {
        let mut idx = Gi2Index::new(config());
        let q = query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        idx.insert(q.clone());
        assert_eq!(idx.match_object(&object(1, &[1], 5.0, 5.0)).len(), 1);
        assert!(idx.delete(&q));
        assert_eq!(idx.num_queries(), 0);
        assert_eq!(idx.match_object(&object(2, &[1], 5.0, 5.0)).len(), 0);
        // deleting again is a no-op
        assert!(!idx.delete(&q));
    }

    #[test]
    fn lazy_deletion_purges_tombstones_during_matching() {
        let mut idx = Gi2Index::new(config());
        let q = query(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0));
        idx.insert(q.clone());
        idx.delete(&q);
        assert_eq!(idx.pending_tombstones(), 1);
        // traversing the posting list purges the tombstone
        let _ = idx.match_object(&object(1, &[1], 1.0, 1.0));
        assert_eq!(idx.pending_tombstones(), 0);
    }

    #[test]
    fn reinsert_after_delete_matches_again() {
        let mut idx = Gi2Index::new(config());
        let q = query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        idx.insert(q.clone());
        idx.delete(&q);
        idx.insert(q);
        assert_eq!(idx.match_object(&object(1, &[1], 5.0, 5.0)).len(), 1);
    }

    #[test]
    fn reinsert_same_id_replaces_query() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        idx.insert(query(1, &[2], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        assert_eq!(idx.num_queries(), 1);
        assert_eq!(idx.match_object(&object(1, &[1], 5.0, 5.0)).len(), 0);
        assert_eq!(idx.match_object(&object(2, &[2], 5.0, 5.0)).len(), 1);
    }

    #[test]
    fn slot_reuse_after_delete_never_resurrects_the_old_query() {
        let mut idx = Gi2Index::new(config());
        // q1 lives in one cell, posted under term 1
        let q1 = query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5));
        idx.insert(q1.clone());
        let (slot1, gen1) = idx.slot_of(QueryId(1)).unwrap();
        idx.delete(&q1);
        // settle the tombstone by traversing the list, freeing the slot
        assert!(idx.match_object(&object(1, &[1], 1.0, 1.0)).is_empty());
        assert_eq!(idx.pending_tombstones(), 0);
        assert!(idx.slot_of(QueryId(1)).is_none());

        // a different query reuses the freed slot (LIFO free list) with a
        // bumped generation
        let q2 = query(2, &[2], Rect::from_coords(40.0, 40.0, 50.0, 50.0));
        idx.insert(q2);
        let (slot2, gen2) = idx.slot_of(QueryId(2)).unwrap();
        assert_eq!(slot2, slot1, "freed slot is reused");
        assert_eq!(gen2, gen1 + 1, "reuse bumps the generation");
        assert_eq!(idx.slab_capacity(), 1, "no slab growth on reuse");

        // an object that matched q1 must not match the reused slot's query
        assert!(idx.match_object(&object(2, &[1], 1.0, 1.0)).is_empty());
        // and q2 matches where it actually lives
        assert_eq!(idx.match_object(&object(3, &[2], 45.0, 45.0)).len(), 1);
    }

    #[test]
    fn slot_is_not_reused_while_tombstone_postings_linger() {
        let mut idx = Gi2Index::new(config());
        let q1 = query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5));
        idx.insert(q1.clone());
        let (slot1, _) = idx.slot_of(QueryId(1)).unwrap();
        idx.delete(&q1);
        // no matching traffic: the tombstone still holds the slot
        assert_eq!(idx.pending_tombstones(), 1);
        idx.insert(query(2, &[2], Rect::from_coords(2.5, 2.5, 3.5, 3.5)));
        let (slot2, _) = idx.slot_of(QueryId(2)).unwrap();
        assert_ne!(slot2, slot1, "pending tombstone must keep its slot");
        // settling the tombstone frees the slot for the next insert
        assert!(idx.match_object(&object(1, &[1], 1.0, 1.0)).is_empty());
        idx.insert(query(3, &[3], Rect::from_coords(4.5, 4.5, 5.5, 5.5)));
        let (slot3, _) = idx.slot_of(QueryId(3)).unwrap();
        assert_eq!(slot3, slot1);
    }

    #[test]
    fn signature_prefilter_skips_full_checks() {
        let mut idx = Gi2Index::new(config());
        // 32 AND queries sharing keyword 1 (their posting term under empty
        // stats: frequency ties break towards the lowest id) but each
        // requiring a distinct second keyword.
        for i in 0..32u64 {
            idx.insert(query(
                i,
                &[1, 100 + i as u32],
                Rect::from_coords(0.0, 0.0, 3.0, 3.0),
            ));
        }
        // the object carries term 1 plus one of the pair terms: every query
        // is a candidate via term 1's posting list, but the signature
        // prefilter rejects (almost) all of the 31 non-matching ones.
        let _ = idx.match_object(&object(1, &[1, 100], 1.0, 1.0));
        assert!(
            idx.signature_rejections() > 0,
            "prefilter never fired on disjoint conjunctions"
        );
        assert!(idx.matches_checked() < 32);
    }

    #[test]
    fn cell_loads_reflect_objects_and_queries() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0)));
        let _ = idx.match_object(&object(1, &[1], 1.0, 1.0));
        let _ = idx.match_object(&object(2, &[2], 1.0, 1.0));
        let loads = idx.cell_loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].objects, 2);
        assert_eq!(loads[0].queries, 1);
        assert!(loads[0].bytes > 0);
        assert!(loads[0].load() > 0.0);
        idx.reset_load_counters();
        assert_eq!(idx.cell_loads()[0].objects, 0);
    }

    #[test]
    fn cell_term_stats_with_streams_the_same_stats() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0)));
        idx.insert(query(2, &[1], Rect::from_coords(0.0, 0.0, 3.0, 3.0)));
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let collected = idx.cell_term_stats(cell);
        let mut streamed = Vec::new();
        idx.cell_term_stats_with(cell, |s| streamed.push(s));
        assert_eq!(collected, streamed);
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].queries, 2);
    }

    #[test]
    fn extract_cell_moves_queries_out() {
        let mut idx = Gi2Index::new(config());
        // a query confined to one cell and one spanning the whole space
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        idx.insert(query(2, &[1], Rect::from_coords(0.0, 0.0, 64.0, 64.0)));
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let extracted = idx.extract_cell(cell);
        assert_eq!(extracted.len(), 2);
        // the confined query is gone entirely, the spanning one remains
        assert!(!idx.contains_query(QueryId(1)));
        assert!(idx.contains_query(QueryId(2)));
        // objects in that cell no longer match anything here
        assert_eq!(idx.match_object(&object(1, &[1], 1.0, 1.0)).len(), 0);
        // but the spanning query still matches elsewhere
        assert_eq!(idx.match_object(&object(2, &[1], 40.0, 40.0)).len(), 1);
    }

    #[test]
    fn extract_cell_where_filters() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        idx.insert(query(2, &[2], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let extracted = idx.extract_cell_where(cell, |q| {
            q.keywords.contains_term(ps2stream_text::TermId(1))
        });
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].id, QueryId(1));
        assert!(idx.contains_query(QueryId(2)));
    }

    #[test]
    fn tombstoned_postings_do_not_survive_cell_extraction() {
        // Regression test for the tombstone-resurrection bug: a query that is
        // deleted with no matching traffic (its lazy sweep never runs), whose
        // cell is then migrated out, used to leave its postings in the cell
        // and its pending count in the tombstone table. Re-inserting the same
        // QueryId (with a different region and keywords) then removed the
        // tombstone and resurrected the stale postings.
        let mut idx = Gi2Index::new(config());
        // lives in exactly one cell, posted under term 1
        let q1 = query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5));
        idx.insert(q1.clone());
        idx.delete(&q1);
        assert_eq!(idx.pending_tombstones(), 1);

        // migrate the cell out with no object ever having traversed the list
        let cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        let extracted = idx.extract_cell(cell);
        assert!(extracted.is_empty(), "a deleted query must not migrate");
        // the pending count is settled, not leaked
        assert_eq!(idx.pending_tombstones(), 0);

        // re-insert the same id with a different region (elsewhere) and keywords
        let q1_new = query(1, &[2], Rect::from_coords(40.0, 40.0, 50.0, 50.0));
        idx.insert(q1_new);

        // an object in the old cell carrying the old keyword must not match —
        // and must not even reach a candidate check against a resurrected
        // stale posting
        let checked_before = idx.matches_checked();
        let results = idx.match_object(&object(7, &[1], 1.0, 1.0));
        assert!(results.is_empty(), "stale posting resurrected a match");
        assert_eq!(
            idx.matches_checked(),
            checked_before,
            "a stale posting of the old generation was traversed as a candidate"
        );

        // a second extraction of the old cell must not ship the new query
        let re_extracted = idx.extract_cell(cell);
        assert!(re_extracted.is_empty());
        assert!(idx.contains_query(QueryId(1)));
        // the re-inserted query still works where it actually lives
        assert_eq!(idx.match_object(&object(8, &[2], 45.0, 45.0)).len(), 1);
    }

    #[test]
    fn replacing_a_live_id_purges_the_old_generation_postings() {
        // Re-inserting a live id (the replacement path, also exercised by
        // cell migration when a spanning query is re-shipped to a worker that
        // already holds it) must physically remove the old postings: the old
        // generation was tombstoned-then-untombstoned before, orphaning its
        // postings forever.
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        // replace with a different region and keywords
        idx.insert(query(1, &[2], Rect::from_coords(40.0, 40.0, 50.0, 50.0)));
        assert_eq!(idx.num_queries(), 1);
        assert_eq!(idx.pending_tombstones(), 0);

        // nothing of the old generation is traversed in the old cell
        let checked_before = idx.matches_checked();
        assert!(idx.match_object(&object(1, &[1], 1.0, 1.0)).is_empty());
        assert_eq!(idx.matches_checked(), checked_before);

        // the old cell ships nothing when migrated out
        let old_cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(idx.extract_cell(old_cell).is_empty());
        assert!(idx.contains_query(QueryId(1)));

        // re-inserting the same content repeatedly must not grow the posting
        // lists (no duplicate entries in the shared cell)
        let q = query(2, &[3], Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        idx.insert(q.clone());
        let mem_once = idx.memory_usage();
        for _ in 0..10 {
            idx.insert(q.clone());
        }
        assert_eq!(idx.memory_usage(), mem_once);
        assert_eq!(idx.match_object(&object(2, &[3], 5.0, 5.0)).len(), 1);
    }

    #[test]
    fn reinserting_a_tombstoned_id_purges_the_stale_postings() {
        // delete (no matching traffic) then re-insert with a different
        // region: the tombstoned generation's postings must not linger as
        // live-looking entries once the tombstone is removed.
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        idx.delete(&query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        assert_eq!(idx.pending_tombstones(), 1);
        idx.insert(query(1, &[1], Rect::from_coords(40.0, 40.0, 50.0, 50.0)));
        assert_eq!(idx.pending_tombstones(), 0);
        // the old cell holds nothing any more
        let checked_before = idx.matches_checked();
        assert!(idx.match_object(&object(1, &[1], 1.0, 1.0)).is_empty());
        assert_eq!(idx.matches_checked(), checked_before);
        let old_cell = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(idx.extract_cell(old_cell).is_empty());
        // the new generation works where it lives
        assert_eq!(idx.match_object(&object(2, &[1], 45.0, 45.0)).len(), 1);
    }

    #[test]
    fn extraction_settles_tombstones_of_multi_cell_queries() {
        // A deleted query spanning two cells: extracting one cell settles only
        // that cell's share of the pending count; the other cell's share is
        // settled by the lazy sweep when an object arrives there.
        let mut idx = Gi2Index::new(config());
        // spans cells (0,0) and (1,0): x in [0.5, 6.5] crosses the 4.0 cell border
        let q = query(1, &[1], Rect::from_coords(0.5, 0.5, 6.5, 1.5));
        idx.insert(q.clone());
        idx.delete(&q);
        assert_eq!(idx.pending_tombstones(), 1);
        let left = idx.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        assert!(idx.extract_cell(left).is_empty());
        // still pending: the right cell's posting is not purged yet
        assert_eq!(idx.pending_tombstones(), 1);
        let _ = idx.match_object(&object(1, &[1], 5.0, 1.0));
        assert_eq!(idx.pending_tombstones(), 0);
    }

    #[test]
    fn migration_roundtrip_preserves_matching() {
        let mut source = Gi2Index::new(config());
        let mut target = Gi2Index::new(config());
        source.insert(query(1, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        let cell = source.grid().cell_of(&Point::new(1.0, 1.0)).unwrap();
        for q in source.extract_cell(cell) {
            target.insert(q);
        }
        assert_eq!(source.match_object(&object(1, &[1], 1.0, 1.0)).len(), 0);
        assert_eq!(target.match_object(&object(1, &[1], 1.0, 1.0)).len(), 1);
    }

    #[test]
    fn memory_usage_grows_with_queries() {
        let mut idx = Gi2Index::new(config());
        let base = idx.memory_usage();
        for i in 0..100 {
            idx.insert(query(
                i,
                &[(i % 10) as u32],
                Rect::from_coords(0.0, 0.0, 20.0, 20.0),
            ));
        }
        assert!(idx.memory_usage() > base);
    }

    #[test]
    fn counters_track_work() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        let _ = idx.match_object(&object(1, &[1], 5.0, 5.0));
        assert_eq!(idx.objects_processed(), 1);
        assert_eq!(idx.matches_checked(), 1);
    }
}
