//! Per-cell inverted index of the GI² structure.
//!
//! GI² divides the space into uniform grid cells and, inside every cell,
//! organizes the STS queries overlapping the cell in an inverted index keyed
//! by the queries' least frequent keyword(s) (Section IV-D).

use ps2stream_model::QueryId;
use ps2stream_text::TermId;
use std::collections::HashMap;

/// Inverted index of one grid cell: for each posting term, the list of query
/// ids posted under that term.
#[derive(Debug, Default, Clone)]
pub struct CellIndex {
    postings: HashMap<TermId, Vec<QueryId>>,
    /// Number of distinct queries currently posted in this cell
    /// (a query posted under several terms is counted once).
    num_queries: usize,
    /// Total approximate size in bytes of the queries posted in this cell
    /// (the `S_g` quantity of the Minimum Cost Migration problem).
    query_bytes: usize,
    /// Number of objects that fell into this cell since the last counter
    /// reset (the `n_o` quantity of Definition 3).
    objects_seen: u64,
    /// For each posting term, how many recent objects of this cell contained
    /// the term (feeds the Phase-I text-split decision of the local load
    /// adjustment).
    object_hits: HashMap<TermId, u64>,
}

/// Per-term statistics of one cell, consumed by the dynamic load adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellTermStat {
    /// The posting term.
    pub term: TermId,
    /// Number of queries posted under the term in this cell.
    pub queries: u64,
    /// Number of recent objects in this cell containing the term.
    pub object_hits: u64,
}

impl CellIndex {
    /// Creates an empty cell index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a query under the given terms. `query_bytes` is the approximate
    /// in-memory size of the query, used for migration cost accounting.
    pub fn post(&mut self, query: QueryId, terms: &[TermId], query_bytes: usize) {
        if terms.is_empty() {
            return;
        }
        for &t in terms {
            self.postings.entry(t).or_default().push(query);
        }
        self.num_queries += 1;
        self.query_bytes += query_bytes;
    }

    /// The posting list for a term, if any.
    #[inline]
    pub fn postings(&self, term: TermId) -> Option<&[QueryId]> {
        self.postings.get(&term).map(Vec::as_slice)
    }

    /// Removes tombstoned entries from the posting list of `term` using the
    /// supplied predicate (`true` = remove). Returns the removed query ids.
    /// Used by the lazy-deletion sweep during object matching.
    pub fn purge_postings<F: Fn(QueryId) -> bool>(
        &mut self,
        term: TermId,
        is_deleted: F,
    ) -> Vec<QueryId> {
        let Some(list) = self.postings.get_mut(&term) else {
            return Vec::new();
        };
        let mut removed = Vec::new();
        list.retain(|q| {
            if is_deleted(*q) {
                removed.push(*q);
                false
            } else {
                true
            }
        });
        if list.is_empty() {
            self.postings.remove(&term);
        }
        removed
    }

    /// Removes every posting whose query id satisfies `is_deleted`, across
    /// **all** terms of the cell. Returns one entry per posting removed (an
    /// id posted under several terms appears once per removal) so callers can
    /// settle lazy-deletion pending counts exactly. Used when a cell is
    /// extracted for migration: tombstoned queries must not survive in the
    /// cell, or a later re-insert of the same id resurrects them.
    pub fn purge_all_postings<F: Fn(QueryId) -> bool>(&mut self, is_deleted: F) -> Vec<QueryId> {
        let mut removed = Vec::new();
        self.postings.retain(|_, list| {
            list.retain(|q| {
                if is_deleted(*q) {
                    removed.push(*q);
                    false
                } else {
                    true
                }
            });
            !list.is_empty()
        });
        removed
    }

    /// Account for the physical removal of a query (after all its postings
    /// have been purged or the cell was migrated away).
    pub fn note_removed(&mut self, query_bytes: usize) {
        self.num_queries = self.num_queries.saturating_sub(1);
        self.query_bytes = self.query_bytes.saturating_sub(query_bytes);
    }

    /// Records that an object fell into this cell.
    #[inline]
    pub fn record_object(&mut self) {
        self.objects_seen += 1;
    }

    /// Records that a recent object of this cell contained `term` (only terms
    /// with a posting list are worth tracking).
    #[inline]
    pub fn record_object_term(&mut self, term: TermId) {
        if self.postings.contains_key(&term) {
            *self.object_hits.entry(term).or_insert(0) += 1;
        }
    }

    /// Per-term statistics of the cell (queries posted and recent object hits
    /// per posting term).
    pub fn term_stats(&self) -> Vec<CellTermStat> {
        self.postings
            .iter()
            .map(|(t, qs)| CellTermStat {
                term: *t,
                queries: qs.len() as u64,
                object_hits: self.object_hits.get(t).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Number of objects recorded since the last reset (`n_o`).
    pub fn objects_seen(&self) -> u64 {
        self.objects_seen
    }

    /// Resets the object counters (called at the start of a load-measurement
    /// period).
    pub fn reset_object_counter(&mut self) {
        self.objects_seen = 0;
        self.object_hits.clear();
    }

    /// Number of distinct queries posted in this cell (`n_q`).
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Total approximate size in bytes of the queries in this cell (`S_g`).
    pub fn query_bytes(&self) -> usize {
        self.query_bytes
    }

    /// All distinct query ids posted in this cell (deduplicated).
    pub fn all_queries(&self) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = self.postings.values().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns true if no query is posted in this cell.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Clears the cell, returning the distinct query ids it held.
    pub fn drain(&mut self) -> Vec<QueryId> {
        let out = self.all_queries();
        self.postings.clear();
        self.object_hits.clear();
        self.num_queries = 0;
        self.query_bytes = 0;
        out
    }

    /// Approximate memory footprint of the cell's posting lists in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .postings
                .values()
                .map(|v| {
                    std::mem::size_of::<TermId>()
                        + std::mem::size_of::<Vec<QueryId>>()
                        + v.len() * std::mem::size_of::<QueryId>()
                        + 16
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u64) -> QueryId {
        QueryId(i)
    }
    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn post_and_lookup() {
        let mut c = CellIndex::new();
        c.post(q(1), &[t(5)], 100);
        c.post(q(2), &[t(5), t(7)], 200);
        assert_eq!(c.postings(t(5)).unwrap(), &[q(1), q(2)]);
        assert_eq!(c.postings(t(7)).unwrap(), &[q(2)]);
        assert!(c.postings(t(9)).is_none());
        assert_eq!(c.num_queries(), 2);
        assert_eq!(c.query_bytes(), 300);
    }

    #[test]
    fn post_with_no_terms_is_a_noop() {
        let mut c = CellIndex::new();
        c.post(q(1), &[], 100);
        assert!(c.is_empty());
        assert_eq!(c.num_queries(), 0);
    }

    #[test]
    fn purge_removes_deleted_queries() {
        let mut c = CellIndex::new();
        c.post(q(1), &[t(1)], 10);
        c.post(q(2), &[t(1)], 10);
        c.post(q(3), &[t(1)], 10);
        let removed = c.purge_postings(t(1), |id| id == q(2));
        assert_eq!(removed, vec![q(2)]);
        assert_eq!(c.postings(t(1)).unwrap(), &[q(1), q(3)]);
        // purging everything drops the term entry
        let removed = c.purge_postings(t(1), |_| true);
        assert_eq!(removed, vec![q(1), q(3)]);
        assert!(c.postings(t(1)).is_none());
    }

    #[test]
    fn object_counter() {
        let mut c = CellIndex::new();
        c.record_object();
        c.record_object();
        assert_eq!(c.objects_seen(), 2);
        c.reset_object_counter();
        assert_eq!(c.objects_seen(), 0);
    }

    #[test]
    fn all_queries_dedups_multi_term_postings() {
        let mut c = CellIndex::new();
        c.post(q(1), &[t(1), t(2)], 10);
        c.post(q(2), &[t(2)], 10);
        assert_eq!(c.all_queries(), vec![q(1), q(2)]);
    }

    #[test]
    fn drain_empties_the_cell() {
        let mut c = CellIndex::new();
        c.post(q(1), &[t(1)], 10);
        c.post(q(2), &[t(3)], 20);
        c.record_object();
        let drained = c.drain();
        assert_eq!(drained, vec![q(1), q(2)]);
        assert!(c.is_empty());
        assert_eq!(c.num_queries(), 0);
        assert_eq!(c.query_bytes(), 0);
    }

    #[test]
    fn note_removed_adjusts_counters() {
        let mut c = CellIndex::new();
        c.post(q(1), &[t(1)], 10);
        c.post(q(2), &[t(1)], 30);
        c.note_removed(10);
        assert_eq!(c.num_queries(), 1);
        assert_eq!(c.query_bytes(), 30);
        // saturates at zero
        c.note_removed(1000);
        c.note_removed(1000);
        assert_eq!(c.num_queries(), 0);
        assert_eq!(c.query_bytes(), 0);
    }

    #[test]
    fn term_stats_track_queries_and_object_hits() {
        let mut c = CellIndex::new();
        c.post(q(1), &[t(1)], 10);
        c.post(q(2), &[t(1)], 10);
        c.post(q(3), &[t(2)], 10);
        c.record_object_term(t(1));
        c.record_object_term(t(1));
        c.record_object_term(t(9)); // no posting list -> ignored
        let mut stats = c.term_stats();
        stats.sort_by_key(|s| s.term);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].term, t(1));
        assert_eq!(stats[0].queries, 2);
        assert_eq!(stats[0].object_hits, 2);
        assert_eq!(stats[1].queries, 1);
        assert_eq!(stats[1].object_hits, 0);
        c.reset_object_counter();
        assert!(c.term_stats().iter().all(|s| s.object_hits == 0));
    }

    #[test]
    fn memory_usage_grows_with_postings() {
        let mut c = CellIndex::new();
        let base = c.memory_usage();
        for i in 0..50 {
            c.post(q(i), &[t((i % 5) as u32)], 10);
        }
        assert!(c.memory_usage() > base);
    }
}
