//! Per-cell inverted index of the GI² structure.
//!
//! GI² divides the space into uniform grid cells and, inside each cell,
//! organizes the STS queries overlapping the cell in an inverted index keyed
//! by the queries' least frequent keyword(s) (Section IV-D).
//!
//! Posting lists carry dense [`SlotId`]s into the owning index's query slab
//! (see [`crate::slab`]), so candidate verification during matching is an
//! array index — no per-candidate hash probe. All purge entry points write
//! removed slots into a **caller-provided buffer** (recycled via
//! [`crate::MatchScratch`]) instead of allocating a fresh `Vec` per
//! traversal.

use crate::slab::SlotId;
use ps2stream_text::TermId;
use std::collections::HashMap;

/// Inverted index of one grid cell: for each posting term, the list of slab
/// slots posted under that term.
#[derive(Debug, Default, Clone)]
pub struct CellIndex {
    postings: HashMap<TermId, Vec<SlotId>>,
    /// Number of distinct queries currently posted in this cell
    /// (a query posted under several terms is counted once).
    num_queries: usize,
    /// Total approximate size in bytes of the queries posted in this cell
    /// (the `S_g` quantity of the Minimum Cost Migration problem).
    query_bytes: usize,
    /// Number of objects that fell into this cell since the last counter
    /// reset (the `n_o` quantity of Definition 3).
    objects_seen: u64,
    /// For each posting term, how many recent objects of this cell contained
    /// the term (feeds the Phase-I text-split decision of the local load
    /// adjustment).
    object_hits: HashMap<TermId, u64>,
}

/// Per-term statistics of one cell, consumed by the dynamic load adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellTermStat {
    /// The posting term.
    pub term: TermId,
    /// Number of queries posted under the term in this cell.
    pub queries: u64,
    /// Number of recent objects in this cell containing the term.
    pub object_hits: u64,
}

impl CellIndex {
    /// Creates an empty cell index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a query under the given terms. `query_bytes` is the approximate
    /// in-memory size of the query, used for migration cost accounting.
    pub fn post(&mut self, slot: SlotId, terms: &[TermId], query_bytes: usize) {
        if terms.is_empty() {
            return;
        }
        for &t in terms {
            self.postings.entry(t).or_default().push(slot);
        }
        self.num_queries += 1;
        self.query_bytes += query_bytes;
    }

    /// The posting list for a term, if any.
    #[inline]
    pub fn postings(&self, term: TermId) -> Option<&[SlotId]> {
        self.postings.get(&term).map(Vec::as_slice)
    }

    /// The mutable posting list of a term — the matching hot loop's entry
    /// point per object term (the caller compacts the list in place while
    /// traversing it, then calls [`CellIndex::remove_if_empty`], and records
    /// the object hit via [`CellIndex::note_object_hit`] only when live
    /// postings survived the compaction, matching the pre-compaction
    /// semantics of purge-then-record).
    #[inline]
    pub(crate) fn traverse(&mut self, term: TermId) -> Option<&mut Vec<SlotId>> {
        self.postings.get_mut(&term)
    }

    /// Records that a recent object of this cell contained `term` (only
    /// called for terms whose posting list survived the traversal, so a term
    /// whose postings were all tombstoned accrues no phantom hits).
    #[inline]
    pub(crate) fn note_object_hit(&mut self, term: TermId) {
        *self.object_hits.entry(term).or_insert(0) += 1;
    }

    /// Drops a term's posting list entry if the in-place compaction of
    /// [`CellIndex::traverse`] emptied it.
    #[inline]
    pub(crate) fn remove_if_empty(&mut self, term: TermId) {
        if self.postings.get(&term).is_some_and(Vec::is_empty) {
            self.postings.remove(&term);
        }
    }

    /// Removes entries matching `is_deleted` from the posting list of
    /// `term`, appending the removed slots to `removed` (one entry per
    /// posting removed). No allocation: the caller provides (and recycles)
    /// the buffer.
    pub fn purge_postings_into<F: Fn(SlotId) -> bool>(
        &mut self,
        term: TermId,
        is_deleted: F,
        removed: &mut Vec<SlotId>,
    ) {
        let Some(list) = self.postings.get_mut(&term) else {
            return;
        };
        list.retain(|s| {
            if is_deleted(*s) {
                removed.push(*s);
                false
            } else {
                true
            }
        });
        if list.is_empty() {
            self.postings.remove(&term);
        }
    }

    /// Removes every posting of one specific slot under `term` (the eager
    /// unpost path of insert-replacement and cell extraction; the removal
    /// count is implied, so no buffer is needed).
    pub(crate) fn unpost(&mut self, term: TermId, slot: SlotId) {
        let Some(list) = self.postings.get_mut(&term) else {
            return;
        };
        list.retain(|s| *s != slot);
        if list.is_empty() {
            self.postings.remove(&term);
        }
    }

    /// Removes every posting whose slot satisfies `is_deleted`, across
    /// **all** terms of the cell, appending one entry per removed posting to
    /// `removed` so callers can settle lazy-deletion pending counts exactly.
    /// Used when a cell is extracted for migration: tombstoned queries must
    /// not survive in the cell, or a later re-insert of the same id
    /// resurrects them.
    pub fn purge_all_postings_into<F: Fn(SlotId) -> bool>(
        &mut self,
        is_deleted: F,
        removed: &mut Vec<SlotId>,
    ) {
        self.postings.retain(|_, list| {
            list.retain(|s| {
                if is_deleted(*s) {
                    removed.push(*s);
                    false
                } else {
                    true
                }
            });
            !list.is_empty()
        });
    }

    /// Account for the physical removal of a query (after all its postings
    /// have been purged or the cell was migrated away).
    pub fn note_removed(&mut self, query_bytes: usize) {
        self.num_queries = self.num_queries.saturating_sub(1);
        self.query_bytes = self.query_bytes.saturating_sub(query_bytes);
    }

    /// Records that an object fell into this cell.
    #[inline]
    pub fn record_object(&mut self) {
        self.objects_seen += 1;
    }

    /// Per-term statistics of the cell (queries posted and recent object hits
    /// per posting term), streamed to `f` without building an intermediate
    /// collection.
    pub fn for_each_term_stat<F: FnMut(CellTermStat)>(&self, mut f: F) {
        for (t, slots) in &self.postings {
            f(CellTermStat {
                term: *t,
                queries: slots.len() as u64,
                object_hits: self.object_hits.get(t).copied().unwrap_or(0),
            });
        }
    }

    /// Per-term statistics of the cell as a collection (tests and cold
    /// paths; hot consumers use [`CellIndex::for_each_term_stat`]).
    pub fn term_stats(&self) -> Vec<CellTermStat> {
        let mut out = Vec::with_capacity(self.postings.len());
        self.for_each_term_stat(|s| out.push(s));
        out
    }

    /// Number of objects recorded since the last reset (`n_o`).
    pub fn objects_seen(&self) -> u64 {
        self.objects_seen
    }

    /// Resets the object counters (called at the start of a load-measurement
    /// period).
    pub fn reset_object_counter(&mut self) {
        self.objects_seen = 0;
        self.object_hits.clear();
    }

    /// Number of distinct queries posted in this cell (`n_q`).
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Total approximate size in bytes of the queries in this cell (`S_g`).
    pub fn query_bytes(&self) -> usize {
        self.query_bytes
    }

    /// Appends the distinct slots posted in this cell to `out` (sorted,
    /// deduplicated; the buffer is caller-provided so the migration paths
    /// can recycle it instead of flatten-collecting a fresh `Vec`).
    pub fn distinct_queries_into(&self, out: &mut Vec<SlotId>) {
        for list in self.postings.values() {
            out.extend_from_slice(list);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// All distinct slots posted in this cell (sorted, deduplicated).
    pub fn all_queries(&self) -> Vec<SlotId> {
        let mut out = Vec::new();
        self.distinct_queries_into(&mut out);
        out
    }

    /// Returns true if no query is posted in this cell.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Clears the cell, returning the distinct slots it held.
    pub fn drain(&mut self) -> Vec<SlotId> {
        let out = self.all_queries();
        self.postings.clear();
        self.object_hits.clear();
        self.num_queries = 0;
        self.query_bytes = 0;
        out
    }

    /// Approximate memory footprint of the cell's posting lists in bytes.
    pub fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .postings
                .values()
                .map(|v| {
                    std::mem::size_of::<TermId>()
                        + std::mem::size_of::<Vec<SlotId>>()
                        + v.len() * std::mem::size_of::<SlotId>()
                        + 16
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SlotId {
        SlotId(i)
    }
    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn post_and_lookup() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(5)], 100);
        c.post(s(2), &[t(5), t(7)], 200);
        assert_eq!(c.postings(t(5)).unwrap(), &[s(1), s(2)]);
        assert_eq!(c.postings(t(7)).unwrap(), &[s(2)]);
        assert!(c.postings(t(9)).is_none());
        assert_eq!(c.num_queries(), 2);
        assert_eq!(c.query_bytes(), 300);
    }

    #[test]
    fn post_with_no_terms_is_a_noop() {
        let mut c = CellIndex::new();
        c.post(s(1), &[], 100);
        assert!(c.is_empty());
        assert_eq!(c.num_queries(), 0);
    }

    #[test]
    fn purge_into_reuses_the_buffer() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1)], 10);
        c.post(s(2), &[t(1)], 10);
        c.post(s(3), &[t(1)], 10);
        let mut removed = Vec::new();
        c.purge_postings_into(t(1), |id| id == s(2), &mut removed);
        assert_eq!(removed, vec![s(2)]);
        assert_eq!(c.postings(t(1)).unwrap(), &[s(1), s(3)]);
        // purging everything drops the term entry; the buffer appends
        c.purge_postings_into(t(1), |_| true, &mut removed);
        assert_eq!(removed, vec![s(2), s(1), s(3)]);
        assert!(c.postings(t(1)).is_none());
        // purging a missing term is a no-op
        c.purge_postings_into(t(9), |_| true, &mut removed);
        assert_eq!(removed.len(), 3);
    }

    #[test]
    fn unpost_removes_one_slot() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1), t(2)], 10);
        c.post(s(2), &[t(1)], 10);
        c.unpost(t(1), s(1));
        assert_eq!(c.postings(t(1)).unwrap(), &[s(2)]);
        c.unpost(t(2), s(1));
        assert!(c.postings(t(2)).is_none());
    }

    #[test]
    fn traverse_allows_compaction_and_hits_are_explicit() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1)], 10);
        c.post(s(2), &[t(1)], 10);
        {
            let list = c.traverse(t(1)).unwrap();
            list.retain(|x| *x != s(1));
        }
        c.remove_if_empty(t(1));
        c.note_object_hit(t(1)); // a live posting survived
        assert_eq!(c.postings(t(1)).unwrap(), &[s(2)]);
        {
            let list = c.traverse(t(1)).unwrap();
            list.clear();
        }
        c.remove_if_empty(t(1));
        // no note_object_hit: the whole list was compacted away
        assert!(c.postings(t(1)).is_none());
        let stats = c.term_stats();
        assert!(stats.is_empty(), "term entry removed with its postings");
        assert!(c.traverse(t(9)).is_none());
    }

    #[test]
    fn object_counter() {
        let mut c = CellIndex::new();
        c.record_object();
        c.record_object();
        assert_eq!(c.objects_seen(), 2);
        c.reset_object_counter();
        assert_eq!(c.objects_seen(), 0);
    }

    #[test]
    fn all_queries_dedups_multi_term_postings() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1), t(2)], 10);
        c.post(s(2), &[t(2)], 10);
        assert_eq!(c.all_queries(), vec![s(1), s(2)]);
        // the _into variant recycles its buffer
        let mut buf = vec![s(9)];
        buf.clear();
        c.distinct_queries_into(&mut buf);
        assert_eq!(buf, vec![s(1), s(2)]);
    }

    #[test]
    fn drain_empties_the_cell() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1)], 10);
        c.post(s(2), &[t(3)], 20);
        c.record_object();
        let drained = c.drain();
        assert_eq!(drained, vec![s(1), s(2)]);
        assert!(c.is_empty());
        assert_eq!(c.num_queries(), 0);
        assert_eq!(c.query_bytes(), 0);
    }

    #[test]
    fn note_removed_adjusts_counters() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1)], 10);
        c.post(s(2), &[t(1)], 30);
        c.note_removed(10);
        assert_eq!(c.num_queries(), 1);
        assert_eq!(c.query_bytes(), 30);
        // saturates at zero
        c.note_removed(1000);
        c.note_removed(1000);
        assert_eq!(c.num_queries(), 0);
        assert_eq!(c.query_bytes(), 0);
    }

    #[test]
    fn term_stats_track_queries_and_object_hits() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1)], 10);
        c.post(s(2), &[t(1)], 10);
        c.post(s(3), &[t(2)], 10);
        c.note_object_hit(t(1));
        c.note_object_hit(t(1));
        assert!(c.traverse(t(9)).is_none()); // no posting list -> nothing to hit
        let mut stats = c.term_stats();
        stats.sort_by_key(|s| s.term);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].term, t(1));
        assert_eq!(stats[0].queries, 2);
        assert_eq!(stats[0].object_hits, 2);
        assert_eq!(stats[1].queries, 1);
        assert_eq!(stats[1].object_hits, 0);
        c.reset_object_counter();
        assert!(c.term_stats().iter().all(|s| s.object_hits == 0));
    }

    #[test]
    fn purge_all_postings_reports_every_removal() {
        let mut c = CellIndex::new();
        c.post(s(1), &[t(1), t(2)], 10);
        c.post(s(2), &[t(1)], 10);
        let mut removed = Vec::new();
        c.purge_all_postings_into(|x| x == s(1), &mut removed);
        removed.sort_unstable();
        assert_eq!(removed, vec![s(1), s(1)], "one entry per posting removed");
        assert_eq!(c.postings(t(1)).unwrap(), &[s(2)]);
        assert!(c.postings(t(2)).is_none());
    }

    #[test]
    fn memory_usage_grows_with_postings() {
        let mut c = CellIndex::new();
        let base = c.memory_usage();
        for i in 0..50 {
            c.post(s(i), &[t(i % 5)], 10);
        }
        assert!(c.memory_usage() > base);
    }
}
