//! Canonical serialization of a [`Gi2Index`].
//!
//! The snapshot is *canonical*, not structural: it stores the grid geometry,
//! the term statistics and the live queries in ascending-id order — never the
//! slab slot layout or the posting lists. Slot numbers depend on the whole
//! insert/delete/migration history, so two indexes holding the same queries
//! can disagree on every slot; the canonical form makes "recovered by replay"
//! and "freshly routed" byte-comparable, and rebuilding the postings on load
//! also re-picks each query's least-frequent posting term under the restored
//! statistics.

use crate::gi2::{Gi2Config, Gi2Index};
use ps2stream_model::wire::{self, WireError, WireReader};
use ps2stream_model::StsQuery;
use ps2stream_text::TermStats;

/// The decoded contents of an index snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotParts {
    /// Grid geometry of the snapshotted index.
    pub config: Gi2Config,
    /// Term statistics at snapshot time.
    pub stats: TermStats,
    /// Live queries in ascending-id order.
    pub queries: Vec<StsQuery>,
}

impl SnapshotParts {
    /// Rebuilds an index: statistics first (so posting-term selection sees
    /// them), then every query.
    pub fn build_index(&self) -> Gi2Index {
        let mut index = Gi2Index::new(self.config.clone());
        index.set_term_stats(self.stats.clone());
        for q in &self.queries {
            index.insert(q.clone());
        }
        index
    }
}

/// Decodes snapshot bytes produced by [`Gi2Index::snapshot_bytes`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotParts, WireError> {
    let mut r = WireReader::new(bytes);
    let bounds = wire::decode_rect(&mut r)?;
    let granularity_exp = r.u32()?;
    let num_docs = r.u64()?;
    let ncounts = r.count()?;
    let mut counts = Vec::with_capacity(ncounts as usize);
    for _ in 0..ncounts {
        counts.push(r.u64()?);
    }
    let nqueries = r.count()?;
    let mut queries = Vec::with_capacity(nqueries as usize);
    for _ in 0..nqueries {
        queries.push(wire::decode_query(&mut r)?);
    }
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(SnapshotParts {
        config: Gi2Config::new(bounds).with_granularity_exp(granularity_exp),
        stats: TermStats::from_parts(counts, num_docs),
        queries,
    })
}

impl Gi2Index {
    /// Serializes this index in canonical form (see the module docs). Two
    /// indexes holding the same live queries under the same statistics
    /// produce identical bytes regardless of their internal slot layout.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let grid = self.grid();
        wire::encode_rect(&mut out, &grid.bounds());
        wire::put_u32(&mut out, grid.nx().trailing_zeros());
        let stats = self.term_stats();
        wire::put_u64(&mut out, stats.num_docs());
        wire::put_u32(&mut out, stats.counts().len() as u32);
        for &c in stats.counts() {
            wire::put_u64(&mut out, c);
        }
        let mut queries: Vec<&StsQuery> = self.queries().collect();
        queries.sort_by_key(|q| q.id);
        wire::put_u32(&mut out, queries.len() as u32);
        for q in queries {
            wire::encode_query(&mut out, q);
        }
        out
    }

    /// Rebuilds an index from [`Gi2Index::snapshot_bytes`] output.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Gi2Index, WireError> {
        Ok(decode_snapshot(bytes)?.build_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_geo::{Point, Rect};
    use ps2stream_model::{ObjectId, QueryId, SpatioTextualObject, SubscriberId};
    use ps2stream_text::{BooleanExpr, TermId};

    fn query(id: u64, terms: &[u32], region: Rect) -> StsQuery {
        StsQuery::new(
            QueryId(id),
            SubscriberId(id * 10),
            BooleanExpr::and_of(terms.iter().map(|t| TermId(*t))),
            region,
        )
    }

    fn object(id: u64, terms: &[u32], x: f64, y: f64) -> SpatioTextualObject {
        SpatioTextualObject::new(
            ObjectId(id),
            terms.iter().map(|t| TermId(*t)).collect(),
            Point::new(x, y),
        )
    }

    fn config() -> Gi2Config {
        Gi2Config::new(Rect::from_coords(0.0, 0.0, 64.0, 64.0)).with_granularity_exp(4)
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries_and_matching() {
        let mut idx = Gi2Index::new(config());
        for i in 0..30u64 {
            idx.insert(query(
                i,
                &[(i % 5) as u32, 10 + (i % 3) as u32],
                Rect::from_coords(0.0, 0.0, (4 + i % 40) as f64, (4 + i % 40) as f64),
            ));
        }
        for i in [2u64, 9, 17] {
            idx.delete_by_id(QueryId(i));
        }
        for i in 0..20u64 {
            let _ = idx.match_object(&object(i, &[(i % 6) as u32], (i % 30) as f64, 3.0));
        }
        let restored = Gi2Index::from_snapshot_bytes(&idx.snapshot_bytes()).unwrap();
        assert_eq!(restored.num_queries(), idx.num_queries());
        assert_eq!(restored.term_stats(), idx.term_stats());
        for i in 0..25u64 {
            let o = object(
                100 + i,
                &[(i % 7) as u32, 11],
                (i % 40) as f64,
                (i % 9) as f64,
            );
            let mut a: Vec<QueryId> = idx.match_object(&o).iter().map(|m| m.query_id).collect();
            let mut b: Vec<QueryId> = restored
                .clone()
                .match_object(&o)
                .iter()
                .map(|m| m.query_id)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "object {i}");
        }
    }

    #[test]
    fn snapshot_is_canonical_across_histories() {
        // Same final query set via different histories (insertion order,
        // delete/re-insert churn) must serialize to identical bytes.
        let mut a = Gi2Index::new(config());
        let mut b = Gi2Index::new(config());
        let qs: Vec<StsQuery> = (0..12u64)
            .map(|i| {
                query(
                    i,
                    &[(i % 4) as u32],
                    Rect::from_coords(0.0, 0.0, 20.0, 20.0),
                )
            })
            .collect();
        for q in &qs {
            a.insert(q.clone());
        }
        // b: reverse order, with churn that shuffles slot assignments
        for q in qs.iter().rev() {
            b.insert(q.clone());
        }
        b.insert(query(99, &[1], Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        b.delete_by_id(QueryId(99));
        let _ = b.match_object(&object(0, &[1], 1.0, 1.0));
        b.delete_by_id(QueryId(3));
        b.insert(qs[3].clone());
        // settle any remaining tombstones so live sets agree
        assert_eq!(a.num_queries(), b.num_queries());
        // equalize the stats (b observed one object above)
        let stats = a.term_stats().clone();
        b.set_term_stats(stats);
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
    }

    #[test]
    fn truncated_snapshot_errors_instead_of_panicking() {
        let mut idx = Gi2Index::new(config());
        idx.insert(query(1, &[1], Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        let bytes = idx.snapshot_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Gi2Index::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
        assert!(Gi2Index::from_snapshot_bytes(&bytes).is_ok());
    }

    #[test]
    fn grid_geometry_survives_the_roundtrip() {
        let cfg =
            Gi2Config::new(Rect::from_coords(-10.0, -20.0, 30.0, 40.0)).with_granularity_exp(3);
        let idx = Gi2Index::new(cfg);
        let restored = Gi2Index::from_snapshot_bytes(&idx.snapshot_bytes()).unwrap();
        assert_eq!(restored.grid().bounds(), idx.grid().bounds());
        assert_eq!(restored.grid().nx(), 8);
        assert_eq!(restored.grid().ny(), 8);
    }
}
