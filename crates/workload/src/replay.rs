//! Accelerated event-time replay.
//!
//! The migration experiments of Section VI-D replay "a sample of
//! spatio-textual tweets in 60 days", scaled out "by reading 4 hours of
//! tweets in every 10 seconds" using the tweets' timestamps. [`ReplayClock`]
//! implements that acceleration: it maps event time (the timestamps carried
//! by the objects) onto processing time with a configurable speed-up factor,
//! and tells the driver how many events of the recorded stream should have
//! been released at any processing instant.

use std::time::Duration;

/// Maps event time onto accelerated processing time.
#[derive(Debug, Clone, Copy)]
pub struct ReplayClock {
    /// How many seconds of event time elapse per second of processing time.
    speedup: f64,
}

impl ReplayClock {
    /// Creates a clock replaying `event_window` of data every
    /// `processing_window` of wall-clock time (the paper uses 4 hours per
    /// 10 seconds, a speed-up of 1440×).
    ///
    /// # Panics
    /// Panics if either window is zero.
    pub fn new(event_window: Duration, processing_window: Duration) -> Self {
        assert!(!event_window.is_zero(), "event window must be non-zero");
        assert!(
            !processing_window.is_zero(),
            "processing window must be non-zero"
        );
        Self {
            speedup: event_window.as_secs_f64() / processing_window.as_secs_f64(),
        }
    }

    /// The paper's configuration: 4 hours of tweets every 10 seconds.
    pub fn paper_default() -> Self {
        Self::new(Duration::from_secs(4 * 3600), Duration::from_secs(10))
    }

    /// The acceleration factor (event seconds per processing second).
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// Converts a processing-time duration into the amount of event time that
    /// should have been replayed.
    pub fn event_time_for(&self, processing: Duration) -> Duration {
        Duration::from_secs_f64(processing.as_secs_f64() * self.speedup)
    }

    /// Converts an event-time duration into the processing time it occupies
    /// under this replay.
    pub fn processing_time_for(&self, event: Duration) -> Duration {
        Duration::from_secs_f64(event.as_secs_f64() / self.speedup)
    }

    /// Given a sorted slice of event timestamps (microseconds, as carried by
    /// [`ps2stream_model::SpatioTextualObject::timestamp_us`]) and the
    /// processing time elapsed since the replay started, returns how many of
    /// those events should have been released.
    pub fn released_count(&self, timestamps_us: &[u64], elapsed: Duration) -> usize {
        debug_assert!(timestamps_us.windows(2).all(|w| w[0] <= w[1]));
        let Some(&start) = timestamps_us.first() else {
            return 0;
        };
        let event_elapsed_us = self.event_time_for(elapsed).as_micros() as u64;
        let cutoff = start.saturating_add(event_elapsed_us);
        timestamps_us.partition_point(|&t| t <= cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_speedup_is_1440x() {
        let clock = ReplayClock::paper_default();
        assert!((clock.speedup() - 1440.0).abs() < 1e-9);
    }

    #[test]
    fn event_and_processing_time_are_inverse() {
        let clock = ReplayClock::new(Duration::from_secs(3600), Duration::from_secs(10));
        let event = clock.event_time_for(Duration::from_secs(5));
        assert_eq!(event, Duration::from_secs(1800));
        let back = clock.processing_time_for(event);
        assert!((back.as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn released_count_follows_the_accelerated_clock() {
        // events every 60 seconds of event time
        let timestamps: Vec<u64> = (0..100u64).map(|i| i * 60_000_000).collect();
        let clock = ReplayClock::new(Duration::from_secs(600), Duration::from_secs(1));
        // after 1 s of processing, 600 s of events (i.e. 11 events: t=0..=600)
        assert_eq!(
            clock.released_count(&timestamps, Duration::from_secs(1)),
            11
        );
        // after 10 s everything has been released
        assert_eq!(
            clock.released_count(&timestamps, Duration::from_secs(10)),
            100
        );
        // nothing released from an empty recording
        assert_eq!(clock.released_count(&[], Duration::from_secs(1)), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = ReplayClock::new(Duration::ZERO, Duration::from_secs(1));
    }
}
