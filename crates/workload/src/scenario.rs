//! Adversarial workload scenarios.
//!
//! The base [`WorkloadDriver`] reproduces the paper's steady-state mix:
//! Zipf-skewed keywords, clustered locations, a stable live-query population.
//! Static partitioning looks fine under that mix — the regimes where it
//! collapses (and where the dynamic adjustment controller has to earn its
//! keep) are the skewed, non-stationary ones described in the adaptive
//! processing and sliding-window pub/sub literature. This module overlays
//! four such regimes on the base stream, each a named [`Scenario`] selectable
//! as `--scenario <name>` on the figure binaries:
//!
//! * **flash-crowd** — periodic term spikes: during the second half of every
//!   window a small set of "trending" terms is stamped onto every object,
//!   spiking the document frequency of a few keywords (and the load of
//!   whichever worker owns them under text partitioning);
//! * **hotspot** — a moving spatial hotspot: most objects are relocated into
//!   a tight Gaussian around a center that drifts across the bounding box,
//!   so no static spatial split stays balanced;
//! * **churn-storm** — mass subscribe/unsubscribe: every window opens with a
//!   burst of query insertions and later unsubscribes exactly those queries,
//!   stressing index maintenance (slab churn, tombstone settlement) rather
//!   than matching;
//! * **diurnal** — a sinusoidal load curve: a time-varying fraction of
//!   objects is "awake", concentrated near fixed busy centers and tagged
//!   with frequent-head terms, emulating the day/night cycle of a tweet
//!   stream.
//!
//! [`ScenarioDriver`] wraps a [`WorkloadDriver`] and transforms its records
//! in place; everything stays deterministic (an own `ChaCha8Rng` plus a
//! record counter, no wall clock).

use crate::corpus::sample_normal;
use crate::driver::WorkloadDriver;
use ps2stream_geo::{Point, Rect};
use ps2stream_model::{QueryUpdate, SpatioTextualObject, StreamRecord, StsQuery, SubscriberId};
use ps2stream_text::TermId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Records per flash-crowd window; the spike covers the second half.
const FLASH_WINDOW: u64 = 4_000;
/// Number of trending terms stamped onto objects during a flash-crowd spike.
const FLASH_TRENDING_TERMS: usize = 4;
/// Fraction of objects relocated into the moving hotspot.
const HOTSPOT_FRACTION: f64 = 0.8;
/// Records per churn-storm window.
const STORM_WINDOW: u64 = 3_000;
/// Queries subscribed (and later unsubscribed) per churn-storm window.
const STORM_BURST: u64 = 150;
/// Records per diurnal day/night cycle.
const DIURNAL_PERIOD: u64 = 8_000;
/// Number of fixed busy centers of the diurnal scenario.
const DIURNAL_CENTERS: usize = 3;
/// Subscriber-id offset of scenario-minted queries, far above anything the
/// base driver assigns (it numbers subscribers by insertion count).
const SCENARIO_SUBSCRIBER_BASE: u64 = 1 << 40;

/// A named adversarial workload scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Periodic trending-term spikes ("flash-crowd").
    FlashCrowd,
    /// A moving spatial hotspot ("hotspot").
    Hotspot,
    /// Mass subscribe/unsubscribe bursts ("churn-storm").
    ChurnStorm,
    /// Sinusoidal day/night load curve ("diurnal").
    Diurnal,
}

impl Scenario {
    /// All scenarios, in canonical order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::FlashCrowd,
            Scenario::Hotspot,
            Scenario::ChurnStorm,
            Scenario::Diurnal,
        ]
    }

    /// The CLI name of the scenario (`--scenario <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::Hotspot => "hotspot",
            Scenario::ChurnStorm => "churn-storm",
            Scenario::Diurnal => "diurnal",
        }
    }

    /// Parses a CLI name; `None` for unknown names.
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name() == name)
    }
}

/// Wraps a [`WorkloadDriver`] and overlays one [`Scenario`] on its stream.
pub struct ScenarioDriver {
    base: WorkloadDriver,
    scenario: Scenario,
    rng: ChaCha8Rng,
    bounds: Rect,
    vocab: usize,
    /// Records emitted by this wrapper (the scenario's notion of time).
    pos: u64,
    /// Flash-crowd: the current window's trending terms.
    trending: Vec<TermId>,
    /// Hotspot: current center and per-record velocity.
    hotspot: Point,
    velocity: (f64, f64),
    /// Churn-storm: scenario-minted queries awaiting their unsubscribe burst.
    storm_live: VecDeque<StsQuery>,
    storm_subscribers: u64,
    /// Diurnal: fixed busy centers.
    busy_centers: Vec<Point>,
}

impl ScenarioDriver {
    /// Wraps `base` with the given scenario. The seed only drives the
    /// scenario's own randomness; the base driver keeps its stream.
    pub fn new(base: WorkloadDriver, scenario: Scenario, seed: u64) -> Self {
        let bounds = base.corpus().bounds();
        let vocab = base.corpus().spec().vocab_size;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let width = bounds.max.x - bounds.min.x;
        let height = bounds.max.y - bounds.min.y;
        let hotspot = Point::new(bounds.min.x + width * 0.25, bounds.min.y + height * 0.25);
        // the hotspot crosses the box over tens of thousands of records, so
        // it moves several grid cells over one figure run
        let velocity = (width / 40_000.0, height / 60_000.0);
        let busy_centers = (0..DIURNAL_CENTERS)
            .map(|_| {
                Point::new(
                    rng.gen_range(bounds.min.x..bounds.max.x),
                    rng.gen_range(bounds.min.y..bounds.max.y),
                )
            })
            .collect();
        Self {
            base,
            scenario,
            rng,
            bounds,
            vocab,
            pos: 0,
            trending: Vec::new(),
            hotspot,
            velocity,
            storm_live: VecDeque::new(),
            storm_subscribers: 0,
            busy_centers,
        }
    }

    /// The scenario being overlaid.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The wrapped base driver.
    pub fn base(&self) -> &WorkloadDriver {
        &self.base
    }

    /// The diurnal scenario's fixed busy centers (exposed for tests).
    pub fn busy_centers(&self) -> &[Point] {
        &self.busy_centers
    }

    fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.bounds.min.x, self.bounds.max.x),
            p.y.clamp(self.bounds.min.y, self.bounds.max.y),
        )
    }

    /// Stamps extra terms onto an object, preserving the sorted/deduplicated
    /// term-list invariant.
    fn overlay_terms(object: &mut SpatioTextualObject, extra: &[TermId]) {
        object.terms.extend_from_slice(extra);
        object.terms.sort_unstable();
        object.terms.dedup();
    }

    fn next_flash_crowd(&mut self, pos: u64) -> Option<StreamRecord> {
        if pos.is_multiple_of(FLASH_WINDOW) {
            // a fresh set of trending terms per window, drawn from the
            // frequent head so they collide with existing hot posting lists
            let head = (self.vocab / 50).max(FLASH_TRENDING_TERMS);
            self.trending.clear();
            while self.trending.len() < FLASH_TRENDING_TERMS {
                let t = TermId(self.rng.gen_range(0..head) as u32);
                if !self.trending.contains(&t) {
                    self.trending.push(t);
                }
            }
        }
        let mut record = self.base.next()?;
        if pos % FLASH_WINDOW >= FLASH_WINDOW / 2 {
            if let StreamRecord::Object(o) = &mut record {
                let trending = std::mem::take(&mut self.trending);
                Self::overlay_terms(o, &trending);
                self.trending = trending;
            }
        }
        Some(record)
    }

    fn next_hotspot(&mut self) -> Option<StreamRecord> {
        // advance the center, bouncing off the bounding box
        let mut x = self.hotspot.x + self.velocity.0;
        let mut y = self.hotspot.y + self.velocity.1;
        if x <= self.bounds.min.x || x >= self.bounds.max.x {
            self.velocity.0 = -self.velocity.0;
            x = x.clamp(self.bounds.min.x, self.bounds.max.x);
        }
        if y <= self.bounds.min.y || y >= self.bounds.max.y {
            self.velocity.1 = -self.velocity.1;
            y = y.clamp(self.bounds.min.y, self.bounds.max.y);
        }
        self.hotspot = Point::new(x, y);

        let mut record = self.base.next()?;
        if let StreamRecord::Object(o) = &mut record {
            if self.rng.gen_bool(HOTSPOT_FRACTION) {
                let std = (self.bounds.max.x - self.bounds.min.x) * 0.01;
                let p = Point::new(
                    sample_normal(&mut self.rng, self.hotspot.x, std),
                    sample_normal(&mut self.rng, self.hotspot.y, std),
                );
                o.location = self.clamp_point(p);
            }
        }
        Some(record)
    }

    fn next_churn_storm(&mut self, pos: u64) -> Option<StreamRecord> {
        let w = pos % STORM_WINDOW;
        if w < STORM_BURST {
            // subscribe burst: mint fresh queries through the base driver's
            // generator (its monotonically increasing ids keep scenario
            // queries distinct from the base population)
            let sub = SubscriberId(SCENARIO_SUBSCRIBER_BASE + self.storm_subscribers);
            self.storm_subscribers += 1;
            let query = self.base.query_generator_mut().next_query(sub);
            self.storm_live.push_back(query.clone());
            return Some(StreamRecord::Update(QueryUpdate::Insert(query)));
        }
        if (STORM_WINDOW / 2..STORM_WINDOW / 2 + STORM_BURST).contains(&w) {
            // unsubscribe burst: exactly the queries this scenario minted
            if let Some(query) = self.storm_live.pop_front() {
                return Some(StreamRecord::Update(QueryUpdate::Delete(query)));
            }
        }
        self.base.next()
    }

    fn next_diurnal(&mut self, pos: u64) -> Option<StreamRecord> {
        // "daytime fraction": 0 at the cycle boundaries, 1 mid-cycle
        let phase = pos as f64 / DIURNAL_PERIOD as f64 * std::f64::consts::TAU;
        let awake = (0.5 * (1.0 - phase.cos())).clamp(0.0, 1.0);
        let mut record = self.base.next()?;
        if let StreamRecord::Object(o) = &mut record {
            if self.rng.gen_bool(awake) {
                // daytime objects concentrate near the busy centers and talk
                // about the frequent head of the vocabulary
                let center = self.busy_centers[self.rng.gen_range(0..self.busy_centers.len())];
                let std = (self.bounds.max.x - self.bounds.min.x) * 0.02;
                let p = Point::new(
                    sample_normal(&mut self.rng, center.x, std),
                    sample_normal(&mut self.rng, center.y, std),
                );
                o.location = self.clamp_point(p);
                let head = (self.vocab / 100).max(1);
                let t = TermId(self.rng.gen_range(0..head) as u32);
                Self::overlay_terms(o, &[t]);
            }
        }
        Some(record)
    }
}

impl Iterator for ScenarioDriver {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let pos = self.pos;
        self.pos += 1;
        match self.scenario {
            Scenario::FlashCrowd => self.next_flash_crowd(pos),
            Scenario::Hotspot => self.next_hotspot(),
            Scenario::ChurnStorm => self.next_churn_storm(pos),
            Scenario::Diurnal => self.next_diurnal(pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusGenerator, DatasetSpec};
    use crate::driver::DriverConfig;
    use crate::queries::{QueryClass, QueryGenerator, QueryGeneratorConfig};
    use ps2stream_text::TermStats;

    fn base_driver() -> WorkloadDriver {
        let mut corpus = CorpusGenerator::new(DatasetSpec::tiny(), 1);
        let sample = corpus.generate(500);
        let queries = QueryGenerator::from_corpus(
            &corpus,
            &sample,
            QueryGeneratorConfig::new(QueryClass::Q1),
            7,
        );
        WorkloadDriver::new(DriverConfig::with_mu(100), corpus, queries, 13)
    }

    fn scenario_driver(s: Scenario) -> ScenarioDriver {
        ScenarioDriver::new(base_driver(), s, 99)
    }

    fn max_term_share(records: &[StreamRecord]) -> f64 {
        let mut stats = TermStats::new();
        for r in records {
            if let StreamRecord::Object(o) = r {
                stats.observe(&o.terms);
            }
        }
        let top = stats.terms_by_frequency()[0].1;
        top as f64 / stats.num_docs() as f64
    }

    #[test]
    fn names_round_trip_and_unknown_is_rejected() {
        for s in Scenario::all() {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("steady-state"), None);
        assert_eq!(Scenario::parse(""), None);
    }

    #[test]
    fn scenarios_are_deterministic() {
        for s in Scenario::all() {
            let a: Vec<StreamRecord> = scenario_driver(s).take(2_000).collect();
            let b: Vec<StreamRecord> = scenario_driver(s).take(2_000).collect();
            assert_eq!(a, b, "scenario {} not deterministic", s.name());
        }
    }

    #[test]
    fn scenario_objects_stay_in_bounds() {
        let bounds = DatasetSpec::tiny().bounds;
        for s in Scenario::all() {
            for r in scenario_driver(s).take(3_000) {
                if let StreamRecord::Object(o) = r {
                    assert!(
                        bounds.contains_point(&o.location),
                        "scenario {} emitted {:?} outside {:?}",
                        s.name(),
                        o.location,
                        bounds
                    );
                    assert!(o.terms.windows(2).all(|w| w[0] < w[1]), "terms not sorted");
                }
            }
        }
    }

    #[test]
    fn flash_crowd_spikes_term_frequencies() {
        let base: Vec<StreamRecord> = base_driver().take(FLASH_WINDOW as usize).collect();
        let crowd: Vec<StreamRecord> = scenario_driver(Scenario::FlashCrowd)
            .take(FLASH_WINDOW as usize)
            .collect();
        let base_share = max_term_share(&base);
        let crowd_share = max_term_share(&crowd);
        assert!(
            crowd_share > base_share * 1.5,
            "trending overlay should spike the head: base {base_share:.3}, crowd {crowd_share:.3}"
        );
    }

    #[test]
    fn hotspot_concentrates_objects_spatially() {
        let bounds = DatasetSpec::tiny().bounds;
        let grid = ps2stream_geo::UniformGrid::new(bounds, 8, 8);
        let occupancy = |records: &[StreamRecord]| -> f64 {
            let mut counts = vec![0u64; grid.num_cells()];
            let mut total = 0u64;
            for r in records {
                if let StreamRecord::Object(o) = r {
                    counts[grid.cell_index(grid.cell_of_clamped(&o.location))] += 1;
                    total += 1;
                }
            }
            *counts.iter().max().unwrap() as f64 / total as f64
        };
        let crowd: Vec<StreamRecord> = scenario_driver(Scenario::Hotspot).take(2_000).collect();
        assert!(
            occupancy(&crowd) > 0.4,
            "hotspot should pull most objects into one cell, got {:.3}",
            occupancy(&crowd)
        );
    }

    #[test]
    fn churn_storm_unsubscribes_exactly_the_minted_queries() {
        let records: Vec<StreamRecord> = scenario_driver(Scenario::ChurnStorm)
            .take(2 * STORM_WINDOW as usize)
            .collect();
        let mut storm_inserted = std::collections::BTreeSet::new();
        let mut storm_deleted = std::collections::BTreeSet::new();
        for r in &records {
            match r {
                StreamRecord::Update(QueryUpdate::Insert(q))
                    if q.subscriber.0 >= SCENARIO_SUBSCRIBER_BASE =>
                {
                    assert!(storm_inserted.insert(q.id), "duplicate storm insert");
                }
                StreamRecord::Update(QueryUpdate::Delete(q))
                    if q.subscriber.0 >= SCENARIO_SUBSCRIBER_BASE =>
                {
                    assert!(
                        storm_inserted.contains(&q.id),
                        "storm delete of a query never inserted"
                    );
                    assert!(storm_deleted.insert(q.id), "double storm delete");
                }
                _ => {}
            }
        }
        assert_eq!(storm_inserted.len(), 2 * STORM_BURST as usize);
        assert_eq!(
            storm_inserted, storm_deleted,
            "every storm query unsubscribed"
        );
    }

    #[test]
    fn churn_storm_query_ids_do_not_collide_with_base_inserts() {
        let records: Vec<StreamRecord> = scenario_driver(Scenario::ChurnStorm)
            .take(STORM_WINDOW as usize)
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for r in &records {
            if let StreamRecord::Update(QueryUpdate::Insert(q)) = r {
                assert!(seen.insert(q.id), "query id {:?} inserted twice", q.id);
            }
        }
    }

    #[test]
    fn diurnal_load_varies_over_the_cycle() {
        let driver = scenario_driver(Scenario::Diurnal);
        let centers = driver.busy_centers().to_vec();
        let records: Vec<StreamRecord> = driver.take(DIURNAL_PERIOD as usize).collect();
        let bounds = DatasetSpec::tiny().bounds;
        let radius = (bounds.max.x - bounds.min.x) * 0.1;
        let chunk = records.len() / 8;
        let mut fractions = Vec::new();
        for part in records.chunks(chunk) {
            let (mut near, mut total) = (0u64, 0u64);
            for r in part {
                if let StreamRecord::Object(o) = r {
                    total += 1;
                    if centers.iter().any(|c| c.distance(&o.location) < radius) {
                        near += 1;
                    }
                }
            }
            fractions.push(near as f64 / total as f64);
        }
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        let min = fractions.iter().cloned().fold(1.0, f64::min);
        assert!(
            max > min + 0.3,
            "diurnal busy fraction should swing over the cycle: {fractions:?}"
        );
    }
}
