//! STS query generators (Section VI-A).
//!
//! The paper synthesizes queries from the tweet corpora:
//!
//! * the number of keywords is uniform in 1..=3, connected by AND or OR;
//! * the query range is a square whose center is a randomly selected tweet
//!   location;
//! * **Q1**: side length 1–50 km, keywords drawn from the corpus keyword
//!   distribution (so query keywords are *frequent* among objects);
//! * **Q2**: side length 1–100 km, at least one keyword outside the top 1 %
//!   most frequent terms (so queries are more selective, ranges larger);
//! * **Q3**: the country is divided into a 10×10 grid of regions and each
//!   region uses Q1 or Q2, modelling users in different regions having
//!   different preferences.

use crate::corpus::CorpusGenerator;
use crate::zipf::ZipfSampler;
use ps2stream_geo::{km_to_degrees, Point, Rect, UniformGrid};
use ps2stream_model::{QueryId, SpatioTextualObject, StsQuery, SubscriberId};
use ps2stream_text::{BooleanExpr, TermId, TermStats};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which query family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Frequent keywords, 1–50 km ranges.
    Q1,
    /// At least one rare keyword, 1–100 km ranges.
    Q2,
    /// Region-dependent mix of Q1 and Q2 over a 10×10 grid.
    Q3,
}

impl QueryClass {
    /// Name used in benchmark output ("Q1", "Q2", "Q3").
    pub fn name(&self) -> &'static str {
        match self {
            QueryClass::Q1 => "Q1",
            QueryClass::Q2 => "Q2",
            QueryClass::Q3 => "Q3",
        }
    }
}

/// Configuration shared by the query generators.
#[derive(Debug, Clone)]
pub struct QueryGeneratorConfig {
    /// The query class to generate.
    pub class: QueryClass,
    /// Number of regions per axis for Q3 (the paper uses a 10×10 = 100-region
    /// split).
    pub q3_regions_per_axis: u32,
    /// Fraction of the most frequent terms considered "top" for the Q2
    /// constraint (the paper uses 1 %).
    pub top_fraction: f64,
    /// Maximum keyword rank sampled for Q1 keywords (keeps Q1 keywords inside
    /// the frequent head of the vocabulary).
    pub q1_keyword_pool: usize,
}

impl QueryGeneratorConfig {
    /// Default configuration for a query class.
    pub fn new(class: QueryClass) -> Self {
        Self {
            class,
            q3_regions_per_axis: 10,
            top_fraction: 0.01,
            q1_keyword_pool: 2_000,
        }
    }
}

/// Generates STS queries against a corpus sample.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    config: QueryGeneratorConfig,
    bounds: Rect,
    /// Tweet locations from which query centers are drawn.
    centers: Vec<Point>,
    /// Keyword sampler following the corpus distribution.
    zipf: ZipfSampler,
    /// Terms in the top `top_fraction` of the corpus (excluded set of Q2).
    frequent_terms: Vec<TermId>,
    /// Per-region class assignment for Q3.
    q3_grid: UniformGrid,
    q3_classes: Vec<QueryClass>,
    rng: ChaCha8Rng,
    next_id: u64,
}

impl QueryGenerator {
    /// Builds a generator from a corpus generator and a sample of its
    /// objects. The sample provides query centers and the term statistics
    /// needed by the Q2 "not in the top 1 %" constraint.
    pub fn from_corpus(
        corpus: &CorpusGenerator,
        sample: &[SpatioTextualObject],
        config: QueryGeneratorConfig,
        seed: u64,
    ) -> Self {
        let mut stats = TermStats::new();
        for o in sample {
            stats.observe(&o.terms);
        }
        let centers: Vec<Point> = sample.iter().map(|o| o.location).collect();
        Self::new(
            corpus.bounds(),
            centers,
            corpus.zipf().clone(),
            &stats,
            config,
            seed,
        )
    }

    /// Builds a generator from explicit parts.
    pub fn new(
        bounds: Rect,
        centers: Vec<Point>,
        zipf: ZipfSampler,
        stats: &TermStats,
        config: QueryGeneratorConfig,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frequent_terms = stats.top_fraction(config.top_fraction);
        let n = config.q3_regions_per_axis.max(1);
        let q3_grid = UniformGrid::new(bounds, n, n);
        let q3_classes: Vec<QueryClass> = (0..q3_grid.num_cells())
            .map(|_| {
                if rng.gen_bool(0.5) {
                    QueryClass::Q1
                } else {
                    QueryClass::Q2
                }
            })
            .collect();
        Self {
            config,
            bounds,
            centers,
            zipf,
            frequent_terms,
            q3_grid,
            q3_classes,
            rng,
            next_id: 0,
        }
    }

    /// The query class being generated.
    pub fn class(&self) -> QueryClass {
        self.config.class
    }

    /// The Q3 per-region class assignment (used by the drifting-workload
    /// experiment of Figure 16, which periodically flips 10 % of the regions).
    pub fn q3_classes_mut(&mut self) -> &mut Vec<QueryClass> {
        &mut self.q3_classes
    }

    /// Flips the Q1/Q2 assignment of a random `fraction` of the Q3 regions
    /// (the workload drift of the Figure 16 experiment).
    pub fn drift_q3_regions(&mut self, fraction: f64) {
        let n = self.q3_classes.len();
        let flips = ((n as f64) * fraction).round() as usize;
        for _ in 0..flips {
            let i = self.rng.gen_range(0..n);
            self.q3_classes[i] = match self.q3_classes[i] {
                QueryClass::Q1 => QueryClass::Q2,
                QueryClass::Q2 => QueryClass::Q1,
                QueryClass::Q3 => QueryClass::Q1,
            };
        }
    }

    fn sample_center(&mut self) -> Point {
        if self.centers.is_empty() {
            return Point::new(
                self.rng.gen_range(self.bounds.min.x..self.bounds.max.x),
                self.rng.gen_range(self.bounds.min.y..self.bounds.max.y),
            );
        }
        self.centers[self.rng.gen_range(0..self.centers.len())]
    }

    fn sample_keywords(&mut self, class: QueryClass) -> Vec<TermId> {
        let count = self.rng.gen_range(1..=3usize);
        let mut keywords: Vec<TermId> = Vec::with_capacity(count);
        match class {
            QueryClass::Q1 => {
                let pool = self.config.q1_keyword_pool.min(self.zipf.len()).max(1);
                while keywords.len() < count {
                    let rank = self.zipf.sample(&mut self.rng) % pool;
                    let t = TermId(rank as u32);
                    if !keywords.contains(&t) {
                        keywords.push(t);
                    }
                }
            }
            QueryClass::Q2 => {
                // every keyword is drawn from outside the most frequent head
                // of the vocabulary, which guarantees the paper's requirement
                // of "at least one keyword that is not in the top 1% most
                // frequent terms" and gives Q2 its selective character
                while keywords.len() < count {
                    let t = self.sample_rare_term();
                    if !keywords.contains(&t) {
                        keywords.push(t);
                    }
                }
            }
            QueryClass::Q3 => unreachable!("Q3 delegates to Q1/Q2 per region"),
        }
        keywords
    }

    fn sample_rare_term(&mut self) -> TermId {
        for _ in 0..64 {
            let t = TermId(self.zipf.sample(&mut self.rng) as u32);
            if !self.frequent_terms.contains(&t) {
                return t;
            }
        }
        // fall back to a uniformly drawn tail term
        TermId(self.rng.gen_range(0..self.zipf.len()) as u32)
    }

    fn side_length_degrees(&mut self, class: QueryClass) -> f64 {
        let km = match class {
            QueryClass::Q1 => self.rng.gen_range(1.0..=50.0),
            QueryClass::Q2 => self.rng.gen_range(1.0..=100.0),
            QueryClass::Q3 => unreachable!("Q3 delegates to Q1/Q2 per region"),
        };
        km_to_degrees(km)
    }

    /// Generates the next query for the given subscriber.
    pub fn next_query(&mut self, subscriber: SubscriberId) -> StsQuery {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let center = self.sample_center();
        let class = match self.config.class {
            QueryClass::Q3 => {
                let cell = self.q3_grid.cell_of_clamped(&center);
                self.q3_classes[self.q3_grid.cell_index(cell)]
            }
            c => c,
        };
        let keywords = self.sample_keywords(class);
        let expr = if keywords.len() == 1 || self.rng.gen_bool(0.5) {
            BooleanExpr::and_of(keywords)
        } else {
            BooleanExpr::or_of(keywords)
        };
        let side = self.side_length_degrees(class);
        StsQuery::new(id, subscriber, expr, Rect::square(center, side))
    }

    /// Generates `n` queries with subscriber ids equal to their query ids.
    pub fn generate(&mut self, n: usize) -> Vec<StsQuery> {
        (0..n)
            .map(|_| {
                let sub = SubscriberId(self.next_id);
                self.next_query(sub)
            })
            .collect()
    }

    /// The set of frequent terms excluded by the Q2 constraint.
    pub fn frequent_terms(&self) -> &[TermId] {
        &self.frequent_terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusGenerator, DatasetSpec};

    fn build(class: QueryClass) -> (QueryGenerator, Vec<SpatioTextualObject>) {
        let mut corpus = CorpusGenerator::new(DatasetSpec::tweets_uk(), 3);
        let sample = corpus.generate(2_000);
        let generator =
            QueryGenerator::from_corpus(&corpus, &sample, QueryGeneratorConfig::new(class), 99);
        (generator, sample)
    }

    #[test]
    fn q1_queries_have_expected_shape() {
        let (mut generator, sample) = build(QueryClass::Q1);
        let bounds = DatasetSpec::tweets_uk().bounds;
        let max_side = km_to_degrees(50.0) + 1e-9;
        let centers: Vec<Point> = sample.iter().map(|o| o.location).collect();
        for q in generator.generate(200) {
            assert!(q.keywords.num_keywords() >= 1 && q.keywords.num_keywords() <= 3);
            assert!(q.region.width() <= max_side);
            assert!(q.region.height() <= max_side);
            // the center of the region is one of the sampled tweet locations
            let c = q.region.center();
            assert!(
                centers.iter().any(|p| p.distance(&c) < 1e-9),
                "query center {c:?} is not a tweet location"
            );
            assert!(bounds.intersects(&q.region));
        }
    }

    #[test]
    fn q2_queries_contain_a_rare_keyword_and_larger_ranges() {
        let (mut generator, _) = build(QueryClass::Q2);
        let frequent = generator.frequent_terms().to_vec();
        let max_side = km_to_degrees(100.0) + 1e-9;
        let mut larger_than_q1 = 0;
        for q in generator.generate(200) {
            assert!(q.keywords.all_terms().iter().any(|t| !frequent.contains(t)));
            assert!(q.region.width() <= max_side);
            if q.region.width() > km_to_degrees(50.0) {
                larger_than_q1 += 1;
            }
        }
        // about half of the Q2 ranges exceed the Q1 maximum
        assert!(larger_than_q1 > 50);
    }

    #[test]
    fn q1_keywords_are_more_frequent_than_q2_keywords() {
        let (mut g1, sample) = build(QueryClass::Q1);
        let (mut g2, _) = build(QueryClass::Q2);
        let mut stats = TermStats::new();
        for o in &sample {
            stats.observe(&o.terms);
        }
        let avg_freq = |qs: &[StsQuery]| -> f64 {
            let mut total = 0.0;
            let mut n = 0.0;
            for q in qs {
                for t in q.keywords.all_terms() {
                    total += stats.frequency(t) as f64;
                    n += 1.0;
                }
            }
            total / n
        };
        let f1 = avg_freq(&g1.generate(300));
        let f2 = avg_freq(&g2.generate(300));
        assert!(
            f1 > f2 * 1.5,
            "Q1 keywords should be markedly more frequent (Q1 {f1:.1} vs Q2 {f2:.1})"
        );
    }

    #[test]
    fn q3_mixes_classes_by_region() {
        let (mut generator, _) = build(QueryClass::Q3);
        assert_eq!(generator.class(), QueryClass::Q3);
        let queries = generator.generate(400);
        let q1_max = km_to_degrees(50.0);
        let small = queries
            .iter()
            .filter(|q| q.region.width() <= q1_max)
            .count();
        let large = queries.len() - small;
        // both region styles must be present
        assert!(small > 0 && large > 0, "small={small} large={large}");
    }

    #[test]
    fn drift_changes_region_assignment() {
        let (mut generator, _) = build(QueryClass::Q3);
        let before = generator.q3_classes_mut().clone();
        generator.drift_q3_regions(0.5);
        let after = generator.q3_classes_mut().clone();
        assert_ne!(before, after);
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let (mut a, _) = build(QueryClass::Q1);
        let (mut b, _) = build(QueryClass::Q1);
        assert_eq!(a.generate(50), b.generate(50));
    }

    #[test]
    fn query_ids_are_unique_and_increasing() {
        let (mut generator, _) = build(QueryClass::Q2);
        let qs = generator.generate(100);
        for w in qs.windows(2) {
            assert!(w[1].id > w[0].id);
        }
    }
}
