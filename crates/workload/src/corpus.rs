//! Synthetic spatio-textual corpora (the TWEETS-US / TWEETS-UK substitutes).
//!
//! The real datasets (280 M US tweets, 58 M UK tweets) are not available, so
//! the generator reproduces the two properties the evaluation depends on:
//!
//! * keyword frequencies follow a power law (Zipf) — this is what makes the
//!   Q1 queries "frequent-keyword" queries and drives the text-partitioning
//!   replication cost;
//! * locations are heavily clustered around population centres inside the
//!   country bounding box — this is what skews space partitioning.

use crate::zipf::ZipfSampler;
use ps2stream_geo::{Point, Rect};
use ps2stream_model::{ObjectId, SpatioTextualObject};
use ps2stream_text::TermId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Samples a normally distributed value via the Box–Muller transform (kept
/// local to avoid pulling in `rand_distr`).
pub(crate) fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Specification of a synthetic corpus.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name used in benchmark output (e.g. "TWEETS-US").
    pub name: &'static str,
    /// Country bounding box (lon/lat degrees).
    pub bounds: Rect,
    /// Number of population-centre clusters.
    pub num_clusters: usize,
    /// Standard deviation of each cluster, in degrees.
    pub cluster_std: f64,
    /// Fraction of objects drawn uniformly over the bounding box instead of
    /// from a cluster.
    pub uniform_fraction: f64,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the keyword distribution.
    pub zipf_exponent: f64,
    /// Minimum and maximum number of distinct terms per object.
    pub terms_per_object: (usize, usize),
}

impl DatasetSpec {
    /// The TWEETS-US substitute: continental-US bounding box, 40 city
    /// clusters.
    pub fn tweets_us() -> Self {
        Self {
            name: "TWEETS-US",
            bounds: Rect::from_coords(-125.0, 24.0, -66.0, 49.0),
            num_clusters: 40,
            cluster_std: 0.8,
            uniform_fraction: 0.15,
            vocab_size: 8_000,
            zipf_exponent: 1.0,
            terms_per_object: (3, 10),
        }
    }

    /// The TWEETS-UK substitute: Great-Britain bounding box, 15 city
    /// clusters.
    pub fn tweets_uk() -> Self {
        Self {
            name: "TWEETS-UK",
            bounds: Rect::from_coords(-8.0, 50.0, 2.0, 59.0),
            num_clusters: 15,
            cluster_std: 0.25,
            uniform_fraction: 0.15,
            vocab_size: 6_000,
            zipf_exponent: 1.0,
            terms_per_object: (3, 10),
        }
    }

    /// A small dataset for unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            name: "TINY",
            bounds: Rect::from_coords(0.0, 0.0, 10.0, 10.0),
            num_clusters: 3,
            cluster_std: 0.5,
            uniform_fraction: 0.2,
            vocab_size: 200,
            zipf_exponent: 1.0,
            terms_per_object: (2, 5),
        }
    }
}

/// A deterministic generator of spatio-textual objects following a
/// [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    spec: DatasetSpec,
    zipf: ZipfSampler,
    clusters: Vec<(Point, f64)>,
    rng: ChaCha8Rng,
    next_id: u64,
    next_timestamp_us: u64,
}

impl CorpusGenerator {
    /// Creates a generator with the given seed. The same seed always yields
    /// the same object stream.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(spec.vocab_size, spec.zipf_exponent);
        // cluster centres with a skewed weight so some "cities" are larger
        let clusters: Vec<(Point, f64)> = (0..spec.num_clusters)
            .map(|i| {
                let x = rng.gen_range(spec.bounds.min.x..spec.bounds.max.x);
                let y = rng.gen_range(spec.bounds.min.y..spec.bounds.max.y);
                let weight = 1.0 / (i + 1) as f64;
                (Point::new(x, y), weight)
            })
            .collect();
        Self {
            spec,
            zipf,
            clusters,
            rng,
            next_id: 0,
            next_timestamp_us: 0,
        }
    }

    /// The dataset specification.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The spatial bounds of the corpus.
    pub fn bounds(&self) -> Rect {
        self.spec.bounds
    }

    fn sample_location(&mut self) -> Point {
        let bounds = self.spec.bounds;
        if self
            .rng
            .gen_bool(self.spec.uniform_fraction.clamp(0.0, 1.0))
        {
            return Point::new(
                self.rng.gen_range(bounds.min.x..bounds.max.x),
                self.rng.gen_range(bounds.min.y..bounds.max.y),
            );
        }
        let total_weight: f64 = self.clusters.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.gen_range(0.0..total_weight);
        let mut center = self.clusters[0].0;
        for (c, w) in &self.clusters {
            if pick <= *w {
                center = *c;
                break;
            }
            pick -= w;
        }
        let std = self.spec.cluster_std;
        let x = sample_normal(&mut self.rng, center.x, std).clamp(bounds.min.x, bounds.max.x);
        let y = sample_normal(&mut self.rng, center.y, std).clamp(bounds.min.y, bounds.max.y);
        Point::new(x, y)
    }

    fn sample_terms(&mut self) -> Vec<TermId> {
        let (lo, hi) = self.spec.terms_per_object;
        let n = self.rng.gen_range(lo..=hi.max(lo));
        let mut terms: Vec<TermId> = (0..n)
            .map(|_| TermId(self.zipf.sample(&mut self.rng) as u32))
            .collect();
        terms.sort_unstable();
        terms.dedup();
        terms
    }

    /// Generates the next object.
    pub fn next_object(&mut self) -> SpatioTextualObject {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        // tweets arrive roughly every few milliseconds of "event time"
        self.next_timestamp_us += self.rng.gen_range(500u64..5_000);
        let terms = self.sample_terms();
        let location = self.sample_location();
        SpatioTextualObject::new(id, terms, location).with_timestamp(self.next_timestamp_us)
    }

    /// Generates a batch of `n` objects.
    pub fn generate(&mut self, n: usize) -> Vec<SpatioTextualObject> {
        (0..n).map(|_| self.next_object()).collect()
    }

    /// Exposes the Zipf sampler (used by the query generators so query
    /// keywords follow the corpus distribution).
    pub fn zipf(&self) -> &ZipfSampler {
        &self.zipf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_text::TermStats;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = CorpusGenerator::new(DatasetSpec::tiny(), 7);
        let mut b = CorpusGenerator::new(DatasetSpec::tiny(), 7);
        let oa = a.generate(50);
        let ob = b.generate(50);
        assert_eq!(oa, ob);
        let mut c = CorpusGenerator::new(DatasetSpec::tiny(), 8);
        assert_ne!(oa, c.generate(50));
    }

    #[test]
    fn objects_lie_within_bounds_and_have_terms() {
        let mut g = CorpusGenerator::new(DatasetSpec::tweets_uk(), 1);
        for o in g.generate(500) {
            assert!(DatasetSpec::tweets_uk().bounds.contains_point(&o.location));
            assert!(!o.terms.is_empty());
            assert!(o.terms.len() <= 10);
        }
    }

    #[test]
    fn ids_and_timestamps_are_increasing() {
        let mut g = CorpusGenerator::new(DatasetSpec::tiny(), 3);
        let objects = g.generate(100);
        for w in objects.windows(2) {
            assert!(w[1].id > w[0].id);
            assert!(w[1].timestamp_us > w[0].timestamp_us);
        }
    }

    #[test]
    fn term_distribution_is_skewed() {
        let mut g = CorpusGenerator::new(DatasetSpec::tweets_us(), 11);
        let mut stats = TermStats::new();
        for o in g.generate(2_000) {
            stats.observe(&o.terms);
        }
        let ranked = stats.terms_by_frequency();
        assert!(ranked.len() > 100);
        // the head of the distribution is much heavier than the tail
        let head = ranked[0].1;
        let tail = ranked[ranked.len() / 2].1;
        assert!(head >= tail * 5, "head {head}, tail {tail}");
    }

    #[test]
    fn locations_are_clustered() {
        let spec = DatasetSpec::tweets_us();
        let mut g = CorpusGenerator::new(spec.clone(), 5);
        let objects = g.generate(2_000);
        // split the bounding box into a 8x8 grid and check occupancy skew
        let grid = ps2stream_geo::UniformGrid::new(spec.bounds, 8, 8);
        let mut counts = vec![0u64; grid.num_cells()];
        for o in &objects {
            if let Some(c) = grid.cell_of(&o.location) {
                counts[grid.cell_index(c)] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let mean = objects.len() as f64 / counts.len() as f64;
        assert!(
            max as f64 > mean * 3.0,
            "expected clustering, max {max} vs mean {mean}"
        );
    }
}
