//! Synthetic workload generation for PS2Stream.
//!
//! Substitutes for the unavailable TWEETS-US / TWEETS-UK corpora and the STS
//! query workloads of Section VI-A: a clustered, Zipf-skewed corpus
//! generator, the Q1/Q2/Q3 query generators, and the stream driver producing
//! the 5:1 object/update mix whose live query population is controlled by µ.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod driver;
pub mod queries;
pub mod replay;
pub mod scenario;
pub mod zipf;

pub use corpus::{CorpusGenerator, DatasetSpec};
pub use driver::{DriverConfig, WorkloadDriver};
pub use queries::{QueryClass, QueryGenerator, QueryGeneratorConfig};
pub use replay::ReplayClock;
pub use scenario::{Scenario, ScenarioDriver};
pub use zipf::ZipfSampler;

use ps2stream_partition::WorkloadSample;

/// Builds a [`WorkloadSample`] (the partitioners' input) by generating
/// `num_objects` objects and `num_queries` query insertions from the given
/// dataset and query class. This is the standard way the benchmarks and
/// examples produce calibration samples.
pub fn build_sample(
    spec: DatasetSpec,
    class: QueryClass,
    num_objects: usize,
    num_queries: usize,
    seed: u64,
) -> WorkloadSample {
    let bounds = spec.bounds;
    let mut corpus = CorpusGenerator::new(spec, seed);
    let objects = corpus.generate(num_objects);
    let mut queries = QueryGenerator::from_corpus(
        &corpus,
        &objects,
        QueryGeneratorConfig::new(class),
        seed.wrapping_add(1),
    );
    let insertions = queries.generate(num_queries);
    WorkloadSample::from_objects_and_queries(bounds, objects, insertions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sample_produces_requested_sizes() {
        let sample = build_sample(DatasetSpec::tiny(), QueryClass::Q1, 300, 60, 5);
        assert_eq!(sample.objects().len(), 300);
        assert_eq!(sample.insertions().len(), 60);
        assert!(!sample.is_empty());
        assert!(sample.bounds().area() > 0.0);
    }

    #[test]
    fn build_sample_is_deterministic() {
        let a = build_sample(DatasetSpec::tiny(), QueryClass::Q2, 100, 20, 9);
        let b = build_sample(DatasetSpec::tiny(), QueryClass::Q2, 100, 20, 9);
        assert_eq!(a.objects(), b.objects());
        assert_eq!(a.insertions(), b.insertions());
    }
}
