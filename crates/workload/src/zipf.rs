//! Zipf-distributed term sampling.
//!
//! The paper notes that "the keywords in queries satisfy the power-law
//! distribution" of the tweet corpora; the synthetic corpus generator uses a
//! [`ZipfSampler`] to reproduce that skew.

use rand::Rng;

/// Samples ranks `0 .. n` with probability proportional to `1 / (rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        assert!(s.is_finite(), "ZipfSampler exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns true if the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of a rank.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.probability(100), 0.0);
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn lower_ranks_are_more_likely() {
        let z = ZipfSampler::new(50, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(10));
        assert!(z.probability(10) > z.probability(49));
    }

    #[test]
    fn sampling_matches_skew() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // the most frequent rank should dominate the tail
        assert!(counts[0] > counts[100] * 10);
        assert!(counts[0] > counts[999]);
        // every sampled rank must be in range (indexing would have panicked)
        assert_eq!(counts.iter().sum::<u64>(), 100_000);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
