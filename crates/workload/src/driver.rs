//! The workload driver: interleaving objects with query updates.
//!
//! Section VI-A describes the stream fed to the system:
//!
//! * "The ratio of processing a spatio-textual tweet to inserting or deleting
//!   an STS query is approximately 5."
//! * "The arrival speeds of requests for inserting an STS query and deleting
//!   an STS query are equivalent", so the number of live queries stabilizes.
//! * "We use a parameter µ to control the number of STS queries … using a
//!   Gaussian distribution N(µ, σ²) to determine the number of newly arrived
//!   STS queries between inserting an STS query and deleting it", with
//!   σ = 0.2 µ.
//!
//! [`WorkloadDriver`] reproduces exactly that mix as an iterator of
//! [`StreamRecord`]s.

use crate::corpus::{sample_normal, CorpusGenerator};
use crate::queries::QueryGenerator;
use ps2stream_model::{QueryUpdate, StreamRecord, StsQuery, SubscriberId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;

/// Configuration of the stream mix.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Target number of live STS queries (the paper's µ).
    pub mu: u64,
    /// Relative standard deviation of the query lifetime (the paper uses
    /// σ = 0.2 µ).
    pub sigma_fraction: f64,
    /// Ratio of objects to query update requests (≈ 5 in the paper).
    pub objects_per_update: u64,
}

impl DriverConfig {
    /// Creates a configuration with the paper's defaults for a given µ.
    pub fn with_mu(mu: u64) -> Self {
        Self {
            mu,
            sigma_fraction: 0.2,
            objects_per_update: 5,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct PendingDeletion {
    due_at_insert: u64,
    query_index: usize,
}

impl Ord for PendingDeletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest deletion pops first
        other.due_at_insert.cmp(&self.due_at_insert)
    }
}

impl PartialOrd for PendingDeletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An infinite iterator producing the interleaved object / query-update
/// stream. The driver owns the corpus and query generators.
pub struct WorkloadDriver {
    config: DriverConfig,
    corpus: CorpusGenerator,
    queries: QueryGenerator,
    rng: ChaCha8Rng,
    /// Queries inserted so far (used to time deletions in "number of inserts"
    /// units, as the paper specifies).
    inserts_so_far: u64,
    /// Live queries by insertion order (kept so deletions carry the full
    /// query description, which the dispatcher needs for routing).
    live: Vec<StsQuery>,
    pending_deletions: BinaryHeap<PendingDeletion>,
    /// Cyclic position within one object/update round.
    phase: u64,
    emitted: u64,
}

impl WorkloadDriver {
    /// Creates a driver.
    pub fn new(
        config: DriverConfig,
        corpus: CorpusGenerator,
        queries: QueryGenerator,
        seed: u64,
    ) -> Self {
        Self {
            config,
            corpus,
            queries,
            rng: ChaCha8Rng::seed_from_u64(seed),
            inserts_so_far: 0,
            live: Vec::new(),
            pending_deletions: BinaryHeap::new(),
            phase: 0,
            emitted: 0,
        }
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of queries currently live (inserted but not yet deleted).
    pub fn live_queries(&self) -> usize {
        self.live.len()
    }

    /// Mutable access to the query generator (used by the drifting-workload
    /// experiment to flip Q3 regions mid-run and by the churn-storm scenario
    /// to mint burst queries with globally unique ids).
    pub fn query_generator_mut(&mut self) -> &mut QueryGenerator {
        &mut self.queries
    }

    /// The corpus generator feeding the object stream (the scenario overlays
    /// read its bounds and vocabulary).
    pub fn corpus(&self) -> &CorpusGenerator {
        &self.corpus
    }

    /// Pre-populates the system with `n` query insertions (the warm-up the
    /// paper performs before measuring throughput, bringing the live query
    /// count up to µ). Returns the produced insertion records.
    pub fn warm_up(&mut self, n: usize) -> Vec<StreamRecord> {
        (0..n).map(|_| self.next_insert()).collect()
    }

    fn next_insert(&mut self) -> StreamRecord {
        let subscriber = SubscriberId(self.inserts_so_far);
        let query = self.queries.next_query(subscriber);
        self.inserts_so_far += 1;
        // schedule this query's deletion after ~N(µ, (σ·µ)²) further inserts
        let mu = self.config.mu as f64;
        let lifetime = sample_normal(&mut self.rng, mu, mu * self.config.sigma_fraction)
            .max(1.0)
            .round() as u64;
        self.pending_deletions.push(PendingDeletion {
            due_at_insert: self.inserts_so_far + lifetime,
            query_index: self.live.len(),
        });
        self.live.push(query.clone());
        self.emitted += 1;
        StreamRecord::Update(QueryUpdate::Insert(query))
    }

    fn due_deletion(&mut self) -> Option<StreamRecord> {
        let due = self
            .pending_deletions
            .peek()
            .map(|p| p.due_at_insert <= self.inserts_so_far)
            .unwrap_or(false);
        if !due {
            return None;
        }
        let pending = self.pending_deletions.pop().expect("peeked");
        let query = self.live[pending.query_index].clone();
        self.emitted += 1;
        Some(StreamRecord::Update(QueryUpdate::Delete(query)))
    }

    fn next_object(&mut self) -> StreamRecord {
        self.emitted += 1;
        StreamRecord::Object(self.corpus.next_object())
    }
}

impl Iterator for WorkloadDriver {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<Self::Item> {
        // one "round" = objects_per_update objects, then one update
        // (alternating insert / deletion-if-due to keep the rates equal)
        let round = self.config.objects_per_update + 1;
        let pos = self.phase % round;
        self.phase += 1;
        if pos < self.config.objects_per_update {
            return Some(self.next_object());
        }
        // update slot: alternate between an insertion and a due deletion
        if (self.phase / round).is_multiple_of(2) {
            Some(self.next_insert())
        } else {
            match self.due_deletion() {
                Some(del) => Some(del),
                None => Some(self.next_insert()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DatasetSpec;
    use crate::queries::{QueryClass, QueryGeneratorConfig};

    fn driver(mu: u64) -> WorkloadDriver {
        let mut corpus = CorpusGenerator::new(DatasetSpec::tiny(), 1);
        let sample = corpus.generate(500);
        let queries = QueryGenerator::from_corpus(
            &corpus,
            &sample,
            QueryGeneratorConfig::new(QueryClass::Q1),
            7,
        );
        WorkloadDriver::new(DriverConfig::with_mu(mu), corpus, queries, 13)
    }

    #[test]
    fn object_to_update_ratio_is_about_five() {
        let mut d = driver(100);
        let records: Vec<StreamRecord> = (&mut d).take(12_000).collect();
        let objects = records.iter().filter(|r| r.is_object()).count();
        let updates = records.len() - objects;
        let ratio = objects as f64 / updates as f64;
        assert!(
            (4.5..=5.5).contains(&ratio),
            "object/update ratio {ratio}, objects {objects}, updates {updates}"
        );
        assert_eq!(d.emitted(), 12_000);
    }

    #[test]
    fn live_query_count_stabilizes_near_mu() {
        let mu = 200u64;
        let mut d = driver(mu);
        let mut live: i64 = 0;
        let mut max_live: i64 = 0;
        for r in (&mut d).take(30_000) {
            match r {
                StreamRecord::Update(QueryUpdate::Insert(_)) => live += 1,
                StreamRecord::Update(QueryUpdate::Delete(_)) => live -= 1,
                _ => {}
            }
            max_live = max_live.max(live);
        }
        // the live population must stop growing once it reaches ~µ
        assert!(
            (live as f64) < mu as f64 * 2.5,
            "live queries kept growing: {live} (µ = {mu})"
        );
        assert!(live > 0);
        assert!(max_live as f64 >= mu as f64 * 0.5);
    }

    #[test]
    fn deletions_reference_previously_inserted_queries() {
        let mut d = driver(50);
        let mut inserted = std::collections::HashSet::new();
        for r in (&mut d).take(20_000) {
            match r {
                StreamRecord::Update(QueryUpdate::Insert(q)) => {
                    inserted.insert(q.id);
                }
                StreamRecord::Update(QueryUpdate::Delete(q)) => {
                    assert!(inserted.contains(&q.id), "deleted unknown query {:?}", q.id);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn warm_up_emits_only_insertions() {
        let mut d = driver(100);
        let records = d.warm_up(200);
        assert_eq!(records.len(), 200);
        assert!(records.iter().all(|r| r.is_insert()));
        assert_eq!(d.live_queries(), 200);
    }

    #[test]
    fn driver_is_deterministic() {
        let a: Vec<StreamRecord> = driver(100).take(1_000).collect();
        let b: Vec<StreamRecord> = driver(100).take(1_000).collect();
        assert_eq!(a, b);
    }
}
