//! Criterion benchmark of the execution substrates as the operator count
//! grows.
//!
//! The point of the cooperative backend is that logical operators are cheap:
//! 64 workers on the thread backend are 64 OS threads contending for the
//! machine's cores, while on the cooperative backend they are 64 pollable
//! tasks multiplexed over a **fixed pool** (min(cores, 4) scheduler threads,
//! i.e. a bounded core budget). The benchmark drives the same fig07-style workload
//! through both substrates at 4 and 64 logical workers. Expected shape: the
//! backends are comparable at 4 workers, and coop holds or wins at 64 where
//! the thread backend pays for oversubscription (64 blocking consumers plus
//! dispatcher threads on a handful of cores).
//!
//! Set `PS2_BENCH_FAST=1` (the CI smoke mode) to shrink the driven stream
//! and sample count so the suite finishes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream::prelude::*;

fn fast_mode() -> bool {
    std::env::var("PS2_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Scheduler threads of the cooperative pool — the fixed core budget both
/// backends are compared on (capped at 4 so the comparison stays "many
/// logical workers, few cores" even on big machines; never more than the
/// machine actually has, since the thread backend also cannot use more).
fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(4)
}

fn build_records(queries: usize, stream_records: usize) -> (WorkloadSample, Vec<StreamRecord>) {
    let spec = DatasetSpec::tweets_us();
    let sample = ps2stream_workload::build_sample(spec.clone(), QueryClass::Q1, 2_000, 400, 42);
    let mut corpus = CorpusGenerator::new(spec.clone(), 49);
    let corpus_sample = corpus.generate(2_000);
    let generator = QueryGenerator::from_corpus(
        &corpus,
        &corpus_sample,
        QueryGeneratorConfig::new(QueryClass::Q1),
        55,
    );
    let mut driver =
        WorkloadDriver::new(DriverConfig::with_mu(queries as u64), corpus, generator, 65);
    let mut records = driver.warm_up(queries);
    records.extend((&mut driver).take(stream_records));
    (sample, records)
}

fn run_once(
    sample: &WorkloadSample,
    records: &[StreamRecord],
    workers: usize,
    runtime: RuntimeBackend,
) -> u64 {
    let mut system = Ps2StreamBuilder::new(
        SystemConfig {
            num_dispatchers: 2,
            num_workers: workers,
            num_mergers: 1,
            ..SystemConfig::default()
        }
        .with_runtime(runtime),
    )
    .with_partitioner(Box::new(HybridPartitioner::default()))
    .with_calibration_sample(sample.clone())
    .start();
    for record in records {
        system.send(record.clone());
    }
    let report = system.finish();
    report.records_in
}

fn bench_backends(c: &mut Criterion) {
    let (queries, stream) = if fast_mode() {
        (400, 2_000)
    } else {
        (1_500, 24_000)
    };
    let (sample, records) = build_records(queries, stream);
    let mut group = c.benchmark_group("runtime_backend_scaling");
    for workers in [4usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("threads", workers),
            &workers,
            |b, &workers| b.iter(|| run_once(&sample, &records, workers, RuntimeBackend::Threads)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("coop-pool{}", pool_threads()), workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    run_once(
                        &sample,
                        &records,
                        workers,
                        RuntimeBackend::Coop(CoopConfig {
                            pool_threads: pool_threads(),
                            ..CoopConfig::default()
                        }),
                    )
                })
            },
        );
    }
    group.finish();
}

fn c() -> Criterion {
    Criterion::default().sample_size(if fast_mode() { 2 } else { 5 })
}

criterion_group! {
    name = runtime;
    config = c();
    targets = bench_backends
}
criterion_main!(runtime);
