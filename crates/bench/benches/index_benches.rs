//! Criterion micro-benchmarks of the GI² worker index: insertion, matching
//! and deletion throughput, plus the grid-granularity ablation called out in
//! DESIGN.md (the paper fixes 2⁶×2⁶ empirically).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream::prelude::*;
use ps2stream_index::{Gi2Config, Gi2Index};

fn build_workload(n_queries: usize, n_objects: usize) -> (Vec<StsQuery>, Vec<SpatioTextualObject>) {
    let spec = DatasetSpec::tweets_us();
    let mut corpus = CorpusGenerator::new(spec.clone(), 1);
    let objects = corpus.generate(n_objects);
    let mut generator = QueryGenerator::from_corpus(
        &corpus,
        &objects,
        QueryGeneratorConfig::new(QueryClass::Q1),
        2,
    );
    (generator.generate(n_queries), objects)
}

fn bench_insert(c: &mut Criterion) {
    let (queries, _) = build_workload(5_000, 2_000);
    c.bench_function("gi2_insert_5k_queries", |b| {
        b.iter(|| {
            let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
            for q in &queries {
                index.insert(q.clone());
            }
            index.num_queries()
        })
    });
}

fn bench_match(c: &mut Criterion) {
    let (queries, objects) = build_workload(10_000, 2_000);
    let mut group = c.benchmark_group("gi2_match_object");
    for granularity in [4u32, 6, 8] {
        let mut index = Gi2Index::new(
            Gi2Config::new(DatasetSpec::tweets_us().bounds).with_granularity_exp(granularity),
        );
        for q in &queries {
            index.insert(q.clone());
        }
        group.bench_with_input(
            BenchmarkId::new("granularity_exp", granularity),
            &granularity,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let o = &objects[i % objects.len()];
                    i += 1;
                    index.match_object(o).len()
                })
            },
        );
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let (queries, objects) = build_workload(5_000, 500);
    c.bench_function("gi2_delete_and_lazy_purge", |b| {
        b.iter(|| {
            let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
            for q in &queries {
                index.insert(q.clone());
            }
            for q in &queries {
                index.delete(q);
            }
            // the lazy purge happens while matching
            let mut matches = 0usize;
            for o in &objects {
                matches += index.match_object(o).len();
            }
            matches
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_match, bench_delete
);
criterion_main!(benches);
