//! Criterion micro-benchmarks of the GI² worker index: insertion, matching
//! and deletion throughput, plus the grid-granularity ablation called out in
//! DESIGN.md (the paper fixes 2⁶×2⁶ empirically).
//!
//! The matching group compares the three kernel entry points: the legacy
//! allocating `match_object`, the scratch-threaded `match_object_into` and
//! the batched `match_batch` (the worker's steady-state path).
//!
//! Set `PS2_BENCH_FAST=1` (the CI smoke mode) to shrink the workloads and
//! sample counts so the suite finishes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream::prelude::*;
use ps2stream_index::{Gi2Config, Gi2Index, MatchScratch};

fn fast_mode() -> bool {
    std::env::var("PS2_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn sized(full: usize) -> usize {
    if fast_mode() {
        (full / 10).max(100)
    } else {
        full
    }
}

fn build_workload(n_queries: usize, n_objects: usize) -> (Vec<StsQuery>, Vec<SpatioTextualObject>) {
    let spec = DatasetSpec::tweets_us();
    let mut corpus = CorpusGenerator::new(spec.clone(), 1);
    let objects = corpus.generate(n_objects);
    let mut generator = QueryGenerator::from_corpus(
        &corpus,
        &objects,
        QueryGeneratorConfig::new(QueryClass::Q1),
        2,
    );
    (generator.generate(n_queries), objects)
}

fn bench_insert(c: &mut Criterion) {
    let (queries, _) = build_workload(sized(5_000), sized(2_000));
    c.bench_function("gi2_insert_5k_queries", |b| {
        b.iter(|| {
            let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
            for q in &queries {
                index.insert(q.clone());
            }
            index.num_queries()
        })
    });
}

fn bench_match(c: &mut Criterion) {
    let (queries, objects) = build_workload(sized(10_000), sized(2_000));
    let mut group = c.benchmark_group("gi2_match_object");
    for granularity in [4u32, 6, 8] {
        let mut index = Gi2Index::new(
            Gi2Config::new(DatasetSpec::tweets_us().bounds).with_granularity_exp(granularity),
        );
        for q in &queries {
            index.insert(q.clone());
        }
        group.bench_with_input(
            BenchmarkId::new("granularity_exp", granularity),
            &granularity,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let o = &objects[i % objects.len()];
                    i += 1;
                    index.match_object(o).len()
                })
            },
        );
    }
    group.finish();
}

fn bench_match_kernel_variants(c: &mut Criterion) {
    let (queries, objects) = build_workload(sized(10_000), sized(2_000));
    let mut group = c.benchmark_group("gi2_match_kernel");

    let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
    for q in &queries {
        index.insert(q.clone());
    }
    group.bench_function("match_object", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let o = &objects[i % objects.len()];
            i += 1;
            index.match_object(o).len()
        })
    });

    let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
    for q in &queries {
        index.insert(q.clone());
    }
    let mut scratch = MatchScratch::new();
    group.bench_function("match_object_into", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let o = &objects[i % objects.len()];
            i += 1;
            index.match_object_into(o, &mut scratch).len()
        })
    });

    let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
    for q in &queries {
        index.insert(q.clone());
    }
    let mut scratch = MatchScratch::new();
    // one iteration = one 64-object batch (criterion reports per-batch time)
    group.bench_function("match_batch_64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let start = i % objects.len().saturating_sub(64).max(1);
            i += 64;
            let end = (start + 64).min(objects.len());
            let mut matches = 0usize;
            index.match_batch(objects[start..end].iter(), &mut scratch, |_, _, r| {
                matches += r.len()
            });
            matches
        })
    });
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let (queries, objects) = build_workload(sized(5_000), sized(500));
    c.bench_function("gi2_delete_and_lazy_purge", |b| {
        b.iter(|| {
            let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
            for q in &queries {
                index.insert(q.clone());
            }
            for q in &queries {
                index.delete(q);
            }
            // the lazy purge happens while matching
            let mut matches = 0usize;
            for o in &objects {
                matches += index.match_object(o).len();
            }
            matches
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_match, bench_match_kernel_variants, bench_delete
);
criterion_main!(benches);
