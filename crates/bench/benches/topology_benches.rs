//! Criterion benchmark of topology-aware placement on the routing hot path.
//!
//! The point of core pinning plus the socket-sharded `TermRegistry` is that
//! a dispatcher's routing lookups stop bouncing cache lines between NUMA
//! nodes: each pinned executor resolves `H2` probes through the shard group
//! of its own node. This benchmark drives the same fig07-style workload
//! through the cooperative backend with placement off (floating threads,
//! flat registry reads) and on (`SystemConfig::with_pinning(true)`), at 4,
//! 16 and 64 logical workers.
//!
//! Expected shape: pinned is no slower than unpinned at 4 workers, and
//! measurably faster at 64 logical workers on a multi-socket box. On a
//! single-node machine the topology detector falls back to one node, the
//! registry keeps its flat layout and the two series coincide — the bench
//! then simply demonstrates that the placement layer costs nothing.
//!
//! Set `PS2_BENCH_FAST=1` (the CI smoke mode) to shrink the driven stream
//! and sample count so the suite finishes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream::prelude::*;

fn fast_mode() -> bool {
    std::env::var("PS2_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Scheduler threads of the cooperative pool: every online CPU, so a
/// multi-socket machine actually spreads executors across its nodes and the
/// pinned/unpinned comparison exercises cross-node traffic.
fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn build_records(queries: usize, stream_records: usize) -> (WorkloadSample, Vec<StreamRecord>) {
    let spec = DatasetSpec::tweets_us();
    let sample = ps2stream_workload::build_sample(spec.clone(), QueryClass::Q1, 2_000, 400, 42);
    let mut corpus = CorpusGenerator::new(spec.clone(), 49);
    let corpus_sample = corpus.generate(2_000);
    let generator = QueryGenerator::from_corpus(
        &corpus,
        &corpus_sample,
        QueryGeneratorConfig::new(QueryClass::Q1),
        55,
    );
    let mut driver =
        WorkloadDriver::new(DriverConfig::with_mu(queries as u64), corpus, generator, 65);
    let mut records = driver.warm_up(queries);
    records.extend((&mut driver).take(stream_records));
    (sample, records)
}

fn run_once(
    sample: &WorkloadSample,
    records: &[StreamRecord],
    workers: usize,
    pinning: bool,
) -> u64 {
    let mut system = Ps2StreamBuilder::new(
        SystemConfig {
            num_dispatchers: 2,
            num_workers: workers,
            num_mergers: 1,
            ..SystemConfig::default()
        }
        .with_runtime(RuntimeBackend::Coop(CoopConfig {
            pool_threads: pool_threads(),
            ..CoopConfig::default()
        }))
        .with_pinning(pinning),
    )
    .with_partitioner(Box::new(HybridPartitioner::default()))
    .with_calibration_sample(sample.clone())
    .start();
    for record in records {
        system.send(record.clone());
    }
    let report = system.finish();
    report.records_in
}

fn bench_placement(c: &mut Criterion) {
    let (queries, stream) = if fast_mode() {
        (400, 2_000)
    } else {
        (1_500, 24_000)
    };
    let (sample, records) = build_records(queries, stream);
    let topology = CpuTopology::detect();
    eprintln!(
        "topology: {} node(s), {} CPU(s)",
        topology.num_nodes(),
        topology.num_cpus()
    );
    let mut group = c.benchmark_group("topology_placement");
    for workers in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("unpinned", workers),
            &workers,
            |b, &workers| b.iter(|| run_once(&sample, &records, workers, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("pinned", workers),
            &workers,
            |b, &workers| b.iter(|| run_once(&sample, &records, workers, true)),
        );
    }
    group.finish();
}

fn c() -> Criterion {
    Criterion::default().sample_size(if fast_mode() { 2 } else { 5 })
}

criterion_group! {
    name = topology;
    config = c();
    targets = bench_placement
}
criterion_main!(topology);
