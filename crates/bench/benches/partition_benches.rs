//! Criterion micro-benchmarks of the workload partitioners: how long each
//! strategy needs to analyse a calibration sample and build its routing
//! table, and the δ / σ ablations of the hybrid algorithm called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream::prelude::*;
use ps2stream_partition::{all_partitioners, HybridConfig, Partitioner};

fn sample() -> WorkloadSample {
    ps2stream_workload::build_sample(DatasetSpec::tweets_us(), QueryClass::Q3, 5_000, 1_000, 3)
}

fn bench_partitioners(c: &mut Criterion) {
    let sample = sample();
    let mut group = c.benchmark_group("partition_build");
    for partitioner in all_partitioners() {
        group.bench_with_input(
            BenchmarkId::new("strategy", partitioner.name()),
            &partitioner,
            |b, p| b.iter(|| p.partition(&sample, 8).memory_usage()),
        );
    }
    group.finish();
}

fn bench_hybrid_delta_ablation(c: &mut Criterion) {
    let sample = sample();
    let mut group = c.benchmark_group("hybrid_delta_ablation");
    for delta in [0.25f64, 0.5, 0.75] {
        let p = HybridPartitioner::new(HybridConfig {
            delta,
            ..HybridConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("delta", format!("{delta}")), &p, |b, p| {
            b.iter(|| p.partition(&sample, 8).text_partitioned_fraction())
        });
    }
    group.finish();
}

fn bench_hybrid_sigma_ablation(c: &mut Criterion) {
    let sample = sample();
    let mut group = c.benchmark_group("hybrid_sigma_ablation");
    for sigma in [1.2f64, 1.5, 2.0] {
        let p = HybridPartitioner::new(HybridConfig {
            sigma,
            ..HybridConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("sigma", format!("{sigma}")), &p, |b, p| {
            b.iter(|| p.partition(&sample, 8).memory_usage())
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let sample = sample();
    let table = HybridPartitioner::default().partition(&sample, 8);
    for q in sample.insertions() {
        table.route_insert(q);
    }
    let objects = sample.objects();
    c.bench_function("gridt_route_object", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let o = &objects[i % objects.len()];
            i += 1;
            table.route_object(o).len()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioners, bench_hybrid_delta_ablation, bench_hybrid_sigma_ablation, bench_routing
);
criterion_main!(benches);
