//! Criterion benchmark of the hot-path batch size on a fig07-style workload.
//!
//! Drives a complete in-process deployment (dispatcher → workers → merger)
//! over the same interleaved insert/delete/object mix as the Figure 7
//! throughput experiment, at batch sizes 1 / 16 / 128. Batch size 1
//! reproduces the old record-at-a-time dataflow; the larger sizes amortize
//! the channel operations that otherwise dominate the per-tuple cost.
//!
//! Set `PS2_BENCH_FAST=1` (the CI smoke mode) to shrink the driven stream and
//! sample count so the suite finishes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream::prelude::*;

fn fast_mode() -> bool {
    std::env::var("PS2_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// A fig07-style record mix: the warm-up query population followed by the
/// measured interleaved stream (objects : updates ≈ 5 : 1).
fn build_records(queries: usize, stream_records: usize) -> (WorkloadSample, Vec<StreamRecord>) {
    let spec = DatasetSpec::tweets_us();
    let sample = ps2stream_workload::build_sample(spec.clone(), QueryClass::Q1, 2_000, 400, 42);
    let mut corpus = CorpusGenerator::new(spec.clone(), 49);
    let corpus_sample = corpus.generate(2_000);
    let generator = QueryGenerator::from_corpus(
        &corpus,
        &corpus_sample,
        QueryGeneratorConfig::new(QueryClass::Q1),
        55,
    );
    let mut driver =
        WorkloadDriver::new(DriverConfig::with_mu(queries as u64), corpus, generator, 65);
    let mut records = driver.warm_up(queries);
    records.extend((&mut driver).take(stream_records));
    (sample, records)
}

fn run_once(sample: &WorkloadSample, records: &[StreamRecord], batch: usize) -> u64 {
    let mut system = Ps2StreamBuilder::new(
        SystemConfig {
            num_dispatchers: 1,
            num_workers: 2,
            num_mergers: 1,
            ..SystemConfig::default()
        }
        .with_batch_size(batch),
    )
    .with_partitioner(Box::new(HybridPartitioner::default()))
    .with_calibration_sample(sample.clone())
    .start();
    for record in records {
        system.send(record.clone());
    }
    let report = system.finish();
    report.records_in
}

fn bench_batch_sizes(c: &mut Criterion) {
    let (queries, stream) = if fast_mode() {
        (400, 2_000)
    } else {
        (1_500, 24_000)
    };
    let (sample, records) = build_records(queries, stream);
    let mut group = c.benchmark_group("fig07_pipeline_batch_size");
    for batch in [1usize, 16, 128] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| run_once(&sample, &records, batch))
        });
    }
    group.finish();
}

fn c() -> Criterion {
    Criterion::default().sample_size(if fast_mode() { 2 } else { 5 })
}

criterion_group! {
    name = batching;
    config = c();
    targets = bench_batch_sizes
}
criterion_main!(batching);
