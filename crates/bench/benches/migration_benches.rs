//! Criterion micro-benchmarks of the Minimum Cost Migration selectors:
//! the DP-vs-GR quality/latency trade-off and the scaling of the selection
//! time with the number of candidate cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps2stream_balance::{
    all_selectors, DpSelector, GreedySelector, MigrationCell, MigrationSelector,
};
use ps2stream_geo::CellId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn synthetic_cells(n: usize, seed: u64) -> Vec<MigrationCell> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            MigrationCell::new(
                CellId::new((i % 64) as u32, (i / 64) as u32),
                rng.gen_range(1.0..500.0),
                rng.gen_range(1_000..200_000),
            )
        })
        .collect()
}

fn bench_selectors(c: &mut Criterion) {
    let cells = synthetic_cells(512, 7);
    let total: f64 = cells.iter().map(|c| c.load).sum();
    let tau = total * 0.3;
    let mut group = c.benchmark_group("migration_selectors_512_cells");
    for selector in all_selectors() {
        group.bench_with_input(
            BenchmarkId::new("selector", selector.name()),
            &selector,
            |b, s| b.iter(|| s.select(&cells, tau).total_size),
        );
    }
    group.finish();
}

fn bench_selection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_selection_scaling");
    for n in [128usize, 512, 2048] {
        let cells = synthetic_cells(n, 13);
        let total: f64 = cells.iter().map(|c| c.load).sum();
        let tau = total * 0.3;
        group.bench_with_input(BenchmarkId::new("cells", n), &cells, |b, cells| {
            b.iter(|| GreedySelector.select(cells, tau).total_size)
        });
    }
    group.finish();
}

fn bench_dp_quality_gap(c: &mut Criterion) {
    // measures the DP runtime needed to close the (small) quality gap to GR
    let cells = synthetic_cells(256, 21);
    let total: f64 = cells.iter().map(|c| c.load).sum();
    let tau = total * 0.3;
    c.bench_function("dp_exact_256_cells", |b| {
        let dp = DpSelector {
            size_unit: 1_024,
            ..DpSelector::default()
        };
        b.iter(|| dp.select(&cells, tau).total_size)
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selectors, bench_selection_scaling, bench_dp_quality_gap
);
criterion_main!(benches);
