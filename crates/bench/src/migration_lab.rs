//! Shared machinery for the migration experiments (Figures 12–15).
//!
//! The paper evaluates the four Minimum Cost Migration selectors (DP, GR, SI,
//! RA) on one overloaded worker: it measures (i) the running time of the cell
//! selection itself, (ii) the size of the migrated data and the time needed
//! to migrate it, and (iii) the impact on tuple latency when the selector is
//! used inside the running system. This module builds the overloaded-worker
//! state those experiments operate on.

use ps2stream::prelude::*;
use ps2stream_balance::{MigrationCell, MigrationSelection, MigrationSelector};
use ps2stream_index::{Gi2Config, Gi2Index};
use std::time::{Duration, Instant};

/// An "overloaded worker" laboratory: a populated GI² index plus the per-cell
/// load/size statistics the selectors consume.
pub struct MigrationLab {
    /// The populated worker index.
    pub index: Gi2Index,
    /// Per-cell migration candidates (load `L_g`, size `S_g`).
    pub cells: Vec<MigrationCell>,
}

impl MigrationLab {
    /// Builds a lab worker holding `num_queries` STS-US-Q1 queries and having
    /// observed `num_objects` recent objects.
    pub fn build(num_queries: usize, num_objects: usize, seed: u64) -> Self {
        let spec = DatasetSpec::tweets_us();
        let mut corpus = CorpusGenerator::new(spec.clone(), seed);
        let sample = corpus.generate(num_objects.max(1_000));
        let mut generator = QueryGenerator::from_corpus(
            &corpus,
            &sample,
            QueryGeneratorConfig::new(QueryClass::Q1),
            seed.wrapping_add(1),
        );
        let mut index = Gi2Index::new(Gi2Config::new(spec.bounds));
        for q in generator.generate(num_queries) {
            index.insert(q);
        }
        for o in sample.iter().take(num_objects) {
            let _ = index.match_object(o);
        }
        let cells = index
            .cell_loads()
            .into_iter()
            .filter(|c| c.queries > 0)
            .map(|c| MigrationCell::new(c.cell, c.load().max(1.0), c.bytes as u64))
            .collect();
        Self { index, cells }
    }

    /// Total load across all candidate cells.
    pub fn total_load(&self) -> f64 {
        self.cells.iter().map(|c| c.load).sum()
    }

    /// Times the selector on this worker for the given load requirement.
    /// Returns the selection and the elapsed wall-clock time.
    pub fn time_selection(
        &self,
        selector: &dyn MigrationSelector,
        tau: f64,
    ) -> (MigrationSelection, Duration) {
        let start = Instant::now();
        let selection = selector.select(&self.cells, tau);
        (selection, start.elapsed())
    }

    /// Executes a migration: extracts the selected cells from a clone of the
    /// worker index and re-indexes them on a fresh target worker, returning
    /// the number of queries moved, the bytes moved and the wall-clock time.
    pub fn execute_migration(&self, selection: &MigrationSelection) -> MigrationOutcome {
        let mut source = self.index.clone();
        let mut target = Gi2Index::new(Gi2Config::new(source.grid().bounds()));
        let start = Instant::now();
        let mut queries_moved = 0usize;
        let mut bytes_moved = 0u64;
        for &cell in &selection.cells {
            for q in source.extract_cell(cell) {
                bytes_moved += q.memory_usage() as u64;
                queries_moved += 1;
                target.insert(q);
            }
        }
        MigrationOutcome {
            queries_moved,
            bytes_moved,
            elapsed: start.elapsed(),
        }
    }
}

/// Result of executing one migration.
#[derive(Debug, Clone, Copy)]
pub struct MigrationOutcome {
    /// Number of STS queries moved to the target worker.
    pub queries_moved: usize,
    /// Total bytes of query state moved.
    pub bytes_moved: u64,
    /// Wall-clock time of the extract + re-index.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_balance::GreedySelector;

    #[test]
    fn lab_builds_and_migrates() {
        let lab = MigrationLab::build(500, 1_000, 3);
        assert!(!lab.cells.is_empty());
        assert!(lab.total_load() > 0.0);
        let tau = lab.total_load() * 0.3;
        let (selection, elapsed) = lab.time_selection(&GreedySelector, tau);
        assert!(selection.satisfies(tau));
        assert!(elapsed.as_nanos() > 0);
        let outcome = lab.execute_migration(&selection);
        assert!(outcome.queries_moved > 0);
        assert!(outcome.bytes_moved > 0);
    }
}
