//! Figure 14 — migration cost and migration time of GR, SI and RA with
//! #Queries = 5M and 10M (STS-US-Q1).

use ps2stream_balance::{GreedySelector, MigrationSelector, RandomSelector, SizeSelector};
use ps2stream_bench::{print_table, MigrationLab, Scale};

fn selectors() -> Vec<Box<dyn MigrationSelector>> {
    vec![
        Box::new(GreedySelector),
        Box::new(SizeSelector),
        Box::new(RandomSelector::default()),
    ]
}

fn run_panel(title: &str, queries: usize) {
    let lab = MigrationLab::build(queries, queries, 23);
    let tau = lab.total_load() * 0.25;
    let mut rows = Vec::new();
    for selector in selectors() {
        let (selection, _) = lab.time_selection(selector.as_ref(), tau);
        let outcome = lab.execute_migration(&selection);
        rows.push(vec![
            selector.name().to_string(),
            format!("{:.3}", outcome.bytes_moved as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", outcome.elapsed.as_secs_f64() * 1e3),
            format!("{}", outcome.queries_moved),
            format!("{}", selection.cells.len()),
        ]);
    }
    print_table(
        title,
        &[
            "algorithm",
            "avg migration cost (MB)",
            "avg migration time (ms)",
            "#queries moved",
            "#cells moved",
        ],
        &rows,
    );
}

fn main() {
    println!("Figure 14: migration cost and time (STS-US-Q1)");
    println!("(PS2_SCALE={})", Scale::factor());
    run_panel("Figure 14(a): #Queries=5M", Scale::q5m().queries);
    run_panel("Figure 14(b): #Queries=10M", Scale::q10m().queries);
    println!();
    println!(
        "Paper shape: GR migrates 30–40% fewer bytes than SI and RA and needs the\n\
         least time; the cost and time grow with the number of registered queries\n\
         because every cell becomes heavier."
    );
}
