//! Figure 10 — worker memory usage of Hybrid vs Metric vs kd-tree.
//!
//! The workers' memory is dominated by the GI² indexes holding the STS
//! queries. A strategy that replicates queries across workers (space
//! partitioning with large query ranges, or the handover of a poor text
//! partition) inflates the total; hybrid distributes queries with the least
//! duplication.

use ps2stream::prelude::*;
use ps2stream_bench::{
    dataset_tag, datasets, fmt_mib, headline_report, headline_strategies, print_table, Scale,
};

fn run_panel(title: &str, class: QueryClass, scale: Scale) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for strategy in headline_strategies() {
            let report = headline_report(dataset.clone(), class, strategy, scale, 8);
            let total: usize = report.worker_memory.iter().sum();
            let avg = total / report.worker_memory.len().max(1);
            let max = report.worker_memory.iter().copied().max().unwrap_or(0);
            rows.push(vec![
                format!("STS-{}-{}", dataset_tag(&dataset), class.name()),
                strategy.to_string(),
                fmt_mib(avg),
                fmt_mib(max),
                fmt_mib(total),
            ]);
        }
    }
    print_table(
        title,
        &[
            "workload",
            "strategy",
            "avg worker memory (MiB)",
            "max worker memory (MiB)",
            "total (MiB)",
        ],
        &rows,
    );
}

fn main() {
    println!("Figure 10: memory comparison of the workers");
    println!("(4 dispatchers, 8 workers; PS2_SCALE={})", Scale::factor());
    run_panel(
        "Figure 10(a): #Queries=5M (Q1)",
        QueryClass::Q1,
        Scale::q5m(),
    );
    run_panel(
        "Figure 10(b): #Queries=10M (Q2)",
        QueryClass::Q2,
        Scale::q10m(),
    );
    run_panel(
        "Figure 10(c): #Queries=10M (Q3)",
        QueryClass::Q3,
        Scale::q10m(),
    );
    println!();
    println!(
        "Paper shape: hybrid has the smallest worker footprint in most cases because\n\
         it reduces the number of STS queries stored on multiple workers; none of\n\
         the strategies imposes a large absolute memory requirement."
    );
}
