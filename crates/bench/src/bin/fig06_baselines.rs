//! Figure 6 — throughput of the baseline workload distribution algorithms.
//!
//! (a)(b): text-partitioning baselines (Frequency, Hypergraph, Metric) on the
//! Q1 (µ=5M) and Q2 (µ=10M) workloads; (c)(d): space-partitioning baselines
//! (Grid, kd-tree, R-tree) on the same workloads. 4 dispatchers, 8 workers.

use ps2stream::prelude::*;
use ps2stream_bench::{
    build_partitioner, dataset_tag, datasets, fmt_tps, print_table, Experiment, Scale,
};

fn run_group(title: &str, strategy_names: &[&str], class: QueryClass, scale: Scale) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for name in strategy_names {
            let report =
                Experiment::new(dataset.clone(), class, build_partitioner(name), scale).run();
            rows.push(vec![
                format!("STS-{}-{}", dataset_tag(&dataset), class.name()),
                (*name).to_string(),
                fmt_tps(report.throughput_tps),
                format!("{}", report.matches_delivered),
            ]);
        }
    }
    print_table(
        title,
        &["workload", "strategy", "throughput (tuples/s)", "matches"],
        &rows,
    );
}

fn main() {
    println!("Figure 6: throughput of the baseline workload distribution algorithms");
    println!("(4 dispatchers, 8 workers; PS2_SCALE={})", Scale::factor());

    let text = ["Frequency", "Hypergraph", "Metric"];
    let space = ["Grid", "kd-tree", "R-tree"];

    run_group(
        "Figure 6(a): Text-Partitioning, Q1 (#Q1=5M)",
        &text,
        QueryClass::Q1,
        Scale::q5m(),
    );
    run_group(
        "Figure 6(b): Text-Partitioning, Q2 (#Q2=10M)",
        &text,
        QueryClass::Q2,
        Scale::q10m(),
    );
    run_group(
        "Figure 6(c): Space-Partitioning, Q1 (#Q1=5M)",
        &space,
        QueryClass::Q1,
        Scale::q5m(),
    );
    run_group(
        "Figure 6(d): Space-Partitioning, Q2 (#Q2=10M)",
        &space,
        QueryClass::Q2,
        Scale::q10m(),
    );
    println!();
    println!(
        "Paper shape: space partitioning wins on Q1 (frequent keywords force text\n\
         partitioning to replicate objects); text partitioning wins on Q2 (larger\n\
         query ranges force space partitioning to replicate queries). Metric is the\n\
         best text baseline and kd-tree the best space baseline."
    );
}
