//! Figure 13 — average time of selecting cells for migration (GR, SI, RA)
//! with #Queries = 5M and 10M (STS-US-Q1).
//!
//! The paper omits DP here because it runs out of memory at these sizes; the
//! DP selector in this reproduction detects the oversized table and falls
//! back to the greedy result, so only GR, SI and RA are reported, as in the
//! paper.

use ps2stream_balance::{GreedySelector, MigrationSelector, RandomSelector, SizeSelector};
use ps2stream_bench::{print_table, MigrationLab, Scale};

fn selectors() -> Vec<Box<dyn MigrationSelector>> {
    vec![
        Box::new(GreedySelector),
        Box::new(SizeSelector),
        Box::new(RandomSelector::default()),
    ]
}

fn run_panel(title: &str, queries: usize) {
    let lab = MigrationLab::build(queries, queries, 11);
    let tau = lab.total_load() * 0.25;
    let mut rows = Vec::new();
    for selector in selectors() {
        // average over several runs to smooth out timer noise
        let runs = 5;
        let mut total = std::time::Duration::ZERO;
        let mut cells = 0usize;
        for _ in 0..runs {
            let (selection, elapsed) = lab.time_selection(selector.as_ref(), tau);
            total += elapsed;
            cells = selection.cells.len();
        }
        rows.push(vec![
            selector.name().to_string(),
            format!("{:.4}", total.as_secs_f64() * 1e3 / runs as f64),
            format!("{cells}"),
            format!("{}", lab.cells.len()),
        ]);
    }
    print_table(
        title,
        &[
            "algorithm",
            "avg selection time (ms)",
            "#cells selected",
            "#candidate cells",
        ],
        &rows,
    );
}

fn main() {
    println!("Figure 13: average time of selecting cells (STS-US-Q1)");
    println!("(PS2_SCALE={})", Scale::factor());
    run_panel("Figure 13(a): #Queries=5M", Scale::q5m().queries);
    run_panel("Figure 13(b): #Queries=10M", Scale::q10m().queries);
    println!();
    println!(
        "Paper shape: all three algorithms select cells in a few milliseconds and\n\
         their running time does not grow with the number of queries — it depends\n\
         only on the number of candidate cells."
    );
}
