//! Figure 16 — the effect of the dynamic load adjustments.
//!
//! The workload drifts over time: the query mix is Q3 (per-region Q1/Q2
//! preferences) and every interval 10% of the regions flip their preference,
//! as in the paper's experiment (µ = 10M, GR selector). The same drifting
//! stream is processed twice: once without dynamic load adjustment
//! ("NoAdjust") and once with it ("Adjust").

use ps2stream::prelude::*;
use ps2stream_bench::{fmt_tps, print_table, Scale};

/// Runs the drifting-workload experiment with or without adjustment.
fn run(adjust: bool, scale: Scale) -> RunReport {
    let dataset = DatasetSpec::tweets_us();
    let sample = ps2stream_workload::build_sample(
        dataset.clone(),
        QueryClass::Q3,
        scale.calibration_objects,
        scale.calibration_queries,
        42,
    );
    let mut config = SystemConfig {
        num_dispatchers: 4,
        num_workers: 8,
        num_mergers: 2,
        ..SystemConfig::default()
    };
    if adjust {
        config = config.with_adjustment(AdjustmentConfig {
            selector: SelectorKind::Greedy,
            poll_interval_ms: 50,
            ..AdjustmentConfig::default()
        });
    }
    let mut system = Ps2StreamBuilder::new(config)
        .with_partitioner(Box::new(HybridPartitioner::default()))
        .with_calibration_sample(sample)
        .start();

    let mut corpus = CorpusGenerator::new(dataset.clone(), 49);
    let corpus_sample = corpus.generate(scale.calibration_objects);
    let queries = QueryGenerator::from_corpus(
        &corpus,
        &corpus_sample,
        QueryGeneratorConfig::new(QueryClass::Q3),
        53,
    );
    let mut driver = WorkloadDriver::new(
        DriverConfig::with_mu(scale.queries as u64),
        corpus,
        queries,
        59,
    );
    for record in driver.warm_up(scale.queries) {
        system.send(record);
    }
    // drive the stream in intervals; after every interval 10% of the Q3
    // regions switch between Q1-style and Q2-style queries (the workload
    // drift of the paper's experiment)
    let intervals = 5;
    let per_interval = scale.stream_records / intervals;
    for _ in 0..intervals {
        for record in (&mut driver).take(per_interval) {
            system.send(record);
        }
        driver.query_generator_mut().drift_q3_regions(0.10);
    }
    system.finish()
}

fn main() {
    println!("Figure 16: the effect of the dynamic load adjustments");
    println!(
        "(Q3 with drifting regional preferences, GR selector, µ=10M; PS2_SCALE={})",
        Scale::factor()
    );
    let scale = Scale::q10m();
    let no_adjust = run(false, scale);
    let adjust = run(true, scale);
    let rows = vec![
        vec![
            "NoAdjust".to_string(),
            fmt_tps(no_adjust.throughput_tps),
            format!("{:.2}", no_adjust.balance_factor()),
            format!("{}", no_adjust.migration_moves),
        ],
        vec![
            "Adjust".to_string(),
            fmt_tps(adjust.throughput_tps),
            format!("{:.2}", adjust.balance_factor()),
            format!("{}", adjust.migration_moves),
        ],
    ];
    print_table(
        "Figure 16: throughput with and without dynamic load adjustment",
        &[
            "system",
            "throughput (tuples/s)",
            "balance Lmax/Lmin",
            "#cell moves",
        ],
        &rows,
    );
    let gain = if no_adjust.throughput_tps > 0.0 {
        (adjust.throughput_tps / no_adjust.throughput_tps - 1.0) * 100.0
    } else {
        0.0
    };
    println!();
    println!("Observed throughput change with adjustment: {gain:+.1}%");
    println!("Paper shape: the system with dynamic load adjustments outperforms the");
    println!("system without them by roughly 26% on this drifting workload.");
}
