//! Figure 8 — per-tuple latency of Hybrid vs Metric vs kd-tree partitioning.
//!
//! The latency is the average time a tuple spends in the system, measured at
//! a moderate input rate (the harness drives a fixed stream and reports the
//! mean and 99th-percentile end-to-end latency). `--json <path>` additionally
//! writes every row in machine-readable form (the perf-trajectory artifact).

use ps2stream::prelude::*;
use ps2stream_bench::{
    dataset_tag, datasets, fmt_ms, headline_report_batched, headline_strategies, json_arg,
    print_table, write_json_file, JsonValue, RunKnobs, Scale,
};

fn run_panel(
    title: &str,
    panel: &str,
    class: QueryClass,
    scale: Scale,
    knobs: &RunKnobs,
    json_rows: &mut Vec<Vec<(&'static str, JsonValue)>>,
) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for strategy in headline_strategies() {
            let report = headline_report_batched(dataset.clone(), class, strategy, scale, 8, knobs);
            let workload = format!("STS-{}-{}", dataset_tag(&dataset), class.name());
            rows.push(vec![
                workload.clone(),
                strategy.to_string(),
                fmt_ms(report.mean_latency),
                fmt_ms(report.p99_latency),
            ]);
            json_rows.push(vec![
                ("panel", JsonValue::Str(panel.to_string())),
                ("workload", JsonValue::Str(workload)),
                ("strategy", JsonValue::Str(strategy.to_string())),
                ("scenario", JsonValue::Str(knobs.scenario_name())),
                (
                    "mean_latency_ms",
                    JsonValue::Float(report.mean_latency.as_secs_f64() * 1e3),
                ),
                (
                    "p99_latency_ms",
                    JsonValue::Float(report.p99_latency.as_secs_f64() * 1e3),
                ),
                // the adjustment controller's reaction to the scenario
                // (all-zero when adjustment is off, i.e. steady-state runs)
                (
                    "migration_rounds",
                    JsonValue::Int(report.migration_rounds as i64),
                ),
                (
                    "migration_moves",
                    JsonValue::Int(report.migration_moves as i64),
                ),
                (
                    "migration_bytes",
                    JsonValue::Int(report.migration_bytes as i64),
                ),
            ]);
            // durability cost + recovery-probe columns (all-zero unless
            // the run was started with --durable)
            let p = report.persistence.clone().unwrap_or_default();
            json_rows.last_mut().unwrap().extend([
                ("ops_logged", JsonValue::Int(p.ops_logged as i64)),
                ("log_bytes", JsonValue::Int(p.log_bytes as i64)),
                ("snapshot_bytes", JsonValue::Int(p.snapshot_bytes as i64)),
                (
                    "snapshots_written",
                    JsonValue::Int(p.snapshots_written as i64),
                ),
                ("recovered_ops", JsonValue::Int(p.recovered_ops as i64)),
                (
                    "replay_ms",
                    JsonValue::Float(p.replay_time.as_secs_f64() * 1e3),
                ),
            ]);
            // supervision + overload counters (all-zero unless the run was
            // started with --faults or an overload policy tripped)
            let f = &report.faults;
            json_rows.last_mut().unwrap().extend([
                ("worker_crashes", JsonValue::Int(f.worker_crashes as i64)),
                ("worker_respawns", JsonValue::Int(f.worker_respawns as i64)),
                (
                    "replayed_records",
                    JsonValue::Int(f.replayed_records as i64),
                ),
                (
                    "restored_updates",
                    JsonValue::Int(f.restored_updates as i64),
                ),
                ("shed_records", JsonValue::Int(f.shed_records as i64)),
                ("shed_matches", JsonValue::Int(f.shed_matches as i64)),
                ("diverted_sends", JsonValue::Int(f.diverted_sends as i64)),
            ]);
        }
    }
    print_table(
        title,
        &[
            "workload",
            "strategy",
            "mean latency (ms)",
            "p99 latency (ms)",
        ],
        &rows,
    );
}

fn main() {
    let knobs = RunKnobs::from_args();
    let mut json_rows = Vec::new();
    println!("Figure 8: latency comparison (Metric, kd-tree, Hybrid)");
    println!(
        "(4 dispatchers, 8 workers; PS2_SCALE={}; {})",
        Scale::factor(),
        knobs.describe(),
    );
    run_panel(
        "Figure 8(a): #Queries=5M (Q1)",
        "a",
        QueryClass::Q1,
        Scale::q5m(),
        &knobs,
        &mut json_rows,
    );
    run_panel(
        "Figure 8(b): #Queries=10M (Q2)",
        "b",
        QueryClass::Q2,
        Scale::q10m(),
        &knobs,
        &mut json_rows,
    );
    run_panel(
        "Figure 8(c): #Queries=10M (Q3)",
        "c",
        QueryClass::Q3,
        Scale::q10m(),
        &knobs,
        &mut json_rows,
    );
    println!();
    println!(
        "Paper shape: Hybrid has the smallest latency; kd-tree is noticeably slower\n\
         on Q2 (large query ranges), and Metric degrades badly on STS-UK-Q1 where\n\
         the query keywords are frequent."
    );
    if let Some(path) = json_arg() {
        write_json_file(
            &path,
            "fig08_latency",
            &[
                ("scale_factor", JsonValue::Float(Scale::factor())),
                ("scenario", JsonValue::Str(knobs.scenario_name())),
                ("knobs", JsonValue::Str(knobs.describe())),
                ("durable", JsonValue::Int(knobs.durable as i64)),
            ],
            &json_rows,
        )
        .expect("writing --json output");
        println!("wrote {path}");
    }
}
