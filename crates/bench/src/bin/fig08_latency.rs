//! Figure 8 — per-tuple latency of Hybrid vs Metric vs kd-tree partitioning.
//!
//! The latency is the average time a tuple spends in the system, measured at
//! a moderate input rate (the harness drives a fixed stream and reports the
//! mean and 99th-percentile end-to-end latency).

use ps2stream::prelude::*;
use ps2stream_bench::{
    dataset_tag, datasets, fmt_ms, headline_report_batched, headline_strategies, print_table,
    RunKnobs, Scale,
};

fn run_panel(title: &str, class: QueryClass, scale: Scale, knobs: &RunKnobs) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for strategy in headline_strategies() {
            let report = headline_report_batched(dataset.clone(), class, strategy, scale, 8, knobs);
            rows.push(vec![
                format!("STS-{}-{}", dataset_tag(&dataset), class.name()),
                strategy.to_string(),
                fmt_ms(report.mean_latency),
                fmt_ms(report.p99_latency),
            ]);
        }
    }
    print_table(
        title,
        &[
            "workload",
            "strategy",
            "mean latency (ms)",
            "p99 latency (ms)",
        ],
        &rows,
    );
}

fn main() {
    let knobs = RunKnobs::from_args();
    println!("Figure 8: latency comparison (Metric, kd-tree, Hybrid)");
    println!(
        "(4 dispatchers, 8 workers; PS2_SCALE={}; {})",
        Scale::factor(),
        knobs.describe(),
    );
    run_panel(
        "Figure 8(a): #Queries=5M (Q1)",
        QueryClass::Q1,
        Scale::q5m(),
        &knobs,
    );
    run_panel(
        "Figure 8(b): #Queries=10M (Q2)",
        QueryClass::Q2,
        Scale::q10m(),
        &knobs,
    );
    run_panel(
        "Figure 8(c): #Queries=10M (Q3)",
        QueryClass::Q3,
        Scale::q10m(),
        &knobs,
    );
    println!();
    println!(
        "Paper shape: Hybrid has the smallest latency; kd-tree is noticeably slower\n\
         on Q2 (large query ranges), and Metric degrades badly on STS-UK-Q1 where\n\
         the query keywords are frequent."
    );
}
