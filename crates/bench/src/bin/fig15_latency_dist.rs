//! Figure 15 — tuple latency distribution under dynamic load adjustment with
//! GR, SI and RA, for #Queries = 5M and 10M (STS-US-Q1).
//!
//! The system runs with the dynamic load adjustment enabled and the chosen
//! selector; the table reports which fraction of tuples stayed below 100 ms,
//! fell between 100 ms and 1 s, or exceeded 1 s (the paper uses a 300 ms
//! lower bucket for the 10M configuration; the 100 ms bucket is kept here for
//! comparability across panels).

use ps2stream::prelude::*;
use ps2stream_bench::{print_table, Experiment, Scale};

fn run_panel(title: &str, scale: Scale) {
    let selectors = [
        SelectorKind::Greedy,
        SelectorKind::Size,
        SelectorKind::Random,
    ];
    let mut rows = Vec::new();
    for selector in selectors {
        let adjustment = AdjustmentConfig {
            selector,
            poll_interval_ms: 50,
            ..AdjustmentConfig::default()
        };
        let report = Experiment::new(
            DatasetSpec::tweets_us(),
            QueryClass::Q1,
            Box::new(HybridPartitioner::default()),
            scale,
        )
        .with_adjustment(adjustment)
        .run();
        let b = report.latency_breakdown;
        rows.push(vec![
            selector.name().to_string(),
            format!("{:.2}", b.fast),
            format!("{:.2}", b.medium),
            format!("{:.2}", b.slow),
            format!("{}", report.migration_moves),
            format!("{:.2}", report.migration_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    print_table(
        title,
        &[
            "algorithm",
            "<100ms",
            "[100ms,1s]",
            ">1s",
            "#cell moves",
            "migrated (MB)",
        ],
        &rows,
    );
}

fn main() {
    println!("Figure 15: latency distribution under dynamic load adjustment (STS-US-Q1)");
    println!("(PS2_SCALE={})", Scale::factor());
    run_panel("Figure 15(a): #Queries=5M", Scale::q5m());
    run_panel("Figure 15(b): #Queries=10M", Scale::q10m());
    println!();
    println!(
        "Paper shape: GR leaves the largest fraction of tuples unaffected by the\n\
         migrations; SI delays about 10% more tuples than GR and RA about 20% more."
    );
}
