//! Figure 9 — dispatcher memory usage of Hybrid vs Metric vs kd-tree.
//!
//! The dispatcher's memory is dominated by its routing structures: the gridt
//! index with its per-cell term maps (`H1`) and registered-keyword filters
//! (`H2`). Space partitioning needs only a cell → worker map, text
//! partitioning a global term → worker map, and hybrid a mixture — which is
//! exactly the ordering the paper reports.

use ps2stream::prelude::*;
use ps2stream_bench::{
    dataset_tag, datasets, fmt_mib, headline_report, headline_strategies, print_table, Scale,
};

fn run_panel(title: &str, class: QueryClass, scale: Scale) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for strategy in headline_strategies() {
            let report = headline_report(dataset.clone(), class, strategy, scale, 8);
            rows.push(vec![
                format!("STS-{}-{}", dataset_tag(&dataset), class.name()),
                strategy.to_string(),
                fmt_mib(report.dispatcher_memory),
            ]);
        }
    }
    print_table(
        title,
        &["workload", "strategy", "dispatcher memory (MiB)"],
        &rows,
    );
}

fn main() {
    println!("Figure 9: memory comparison of the dispatchers");
    println!("(4 dispatchers, 8 workers; PS2_SCALE={})", Scale::factor());
    run_panel(
        "Figure 9(a): #Queries=5M (Q1)",
        QueryClass::Q1,
        Scale::q5m(),
    );
    run_panel(
        "Figure 9(b): #Queries=10M (Q2)",
        QueryClass::Q2,
        Scale::q10m(),
    );
    run_panel(
        "Figure 9(c): #Queries=10M (Q3)",
        QueryClass::Q3,
        Scale::q10m(),
    );
    println!();
    println!(
        "Paper shape: kd-tree uses the least dispatcher memory, hybrid the most\n\
         (some cells keep their own text-partitioning maps), but all strategies\n\
         stay modest in absolute terms."
    );
}
