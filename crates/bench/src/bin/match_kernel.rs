//! Matching-kernel microbenchmark — the per-object GI² hot loop in isolation.
//!
//! Unlike the criterion benches this binary uses a **fixed seed** and prints
//! one deterministic workload's sustained matching throughput, so successive
//! runs on the same machine are directly comparable (the perf trajectory of
//! the zero-allocation kernel work — see `BENCH_MATCH.json` at the repo
//! root). `--json <path>` writes the numbers in machine-readable form;
//! `--smoke` shrinks the workload for CI.
//!
//! The three entry points are measured **interleaved, round by round** (one
//! sweep of each variant per round, in rotation): measuring each variant in
//! one solid block lets clock drift and thermal throttling penalize whichever
//! variant runs last, which is exactly how the original `match_batch`
//! regression hid in plain sight. The per-round throughput of every variant
//! is emitted as a `rows` entry in the JSON report.
//!
//! All three entry points are cross-checked: the per-round match count must
//! be identical for `match_object`, `match_object_into` and `match_batch`.

use ps2stream::prelude::*;
use ps2stream_bench::{json_arg, write_json_file, JsonValue};
use ps2stream_index::{Gi2Config, Gi2Index, MatchScratch};
use std::time::{Duration, Instant};

struct Workload {
    queries: Vec<StsQuery>,
    objects: Vec<SpatioTextualObject>,
}

fn build_workload(n_queries: usize, n_objects: usize) -> Workload {
    let spec = DatasetSpec::tweets_us();
    let mut corpus = CorpusGenerator::new(spec, 1);
    let objects = corpus.generate(n_objects);
    let mut generator = QueryGenerator::from_corpus(
        &corpus,
        &objects,
        QueryGeneratorConfig::new(QueryClass::Q1),
        2,
    );
    Workload {
        queries: generator.generate(n_queries),
        objects,
    }
}

fn build_index(workload: &Workload) -> Gi2Index {
    let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
    for q in &workload.queries {
        index.insert(q.clone());
    }
    index
}

/// Accumulated timing of one kernel entry point across the interleaved
/// rounds.
struct Variant {
    name: &'static str,
    total: Duration,
    matches: u64,
}

impl Variant {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            total: Duration::ZERO,
            matches: 0,
        }
    }

    /// Records one timed sweep; returns this round's throughput.
    fn record(&mut self, elapsed: Duration, matches: u64, objects: usize) -> f64 {
        self.total += elapsed;
        self.matches += matches;
        objects as f64 / elapsed.as_secs_f64()
    }

    fn tps(&self, objects: usize, rounds: usize) -> f64 {
        (objects * rounds) as f64 / self.total.as_secs_f64()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_queries, n_objects, rounds) = if smoke {
        (2_000, 500, 4)
    } else {
        (10_000, 2_000, 20)
    };
    let workload = build_workload(n_queries, n_objects);
    let objects = &workload.objects;

    // One index per entry point, each swept `rounds` times. Indexes persist
    // across rounds (the workload has no deletions, so no tombstone state
    // accumulates between sweeps).
    let mut index_object = build_index(&workload);
    let mut index_into = build_index(&workload);
    let mut scratch_into = MatchScratch::new();
    let mut index_batch = build_index(&workload);
    let mut scratch_batch = MatchScratch::new();

    let mut object_v = Variant::new("match_object");
    let mut into_v = Variant::new("match_object_into");
    let mut batch_v = Variant::new("match_batch");
    let mut rows: Vec<Vec<(&'static str, JsonValue)>> = Vec::new();
    let row = |round: usize, variant: &'static str, tps: f64| -> Vec<(&'static str, JsonValue)> {
        vec![
            ("round", JsonValue::Int(round as i64)),
            ("variant", JsonValue::Str(variant.to_string())),
            ("objects_per_sec", JsonValue::Float(tps)),
        ]
    };

    for round in 0..rounds {
        // Legacy allocating entry point (kept as the compatibility wrapper).
        let start = Instant::now();
        let mut matches = 0u64;
        for o in objects {
            matches += index_object.match_object(o).len() as u64;
        }
        let tps = object_v.record(start.elapsed(), matches, objects.len());
        rows.push(row(round, object_v.name, tps));
        let round_matches = matches;

        // Scratch-threaded zero-allocation entry point.
        let start = Instant::now();
        let mut matches = 0u64;
        for o in objects {
            matches += index_into.match_object_into(o, &mut scratch_into).len() as u64;
        }
        let tps = into_v.record(start.elapsed(), matches, objects.len());
        rows.push(row(round, into_v.name, tps));
        assert_eq!(
            round_matches, matches,
            "match_object and match_object_into disagree (round {round})"
        );

        // Batched entry point (64-object batches, the worker's steady state).
        let start = Instant::now();
        let mut matches = 0u64;
        for chunk in objects.chunks(64) {
            index_batch.match_batch(chunk.iter(), &mut scratch_batch, |_, _, results| {
                matches += results.len() as u64;
            });
        }
        let tps = batch_v.record(start.elapsed(), matches, objects.len());
        rows.push(row(round, batch_v.name, tps));
        assert_eq!(
            round_matches, matches,
            "match_object and match_batch disagree (round {round})"
        );
    }

    let object_tps = object_v.tps(objects.len(), rounds);
    let into_tps = into_v.tps(objects.len(), rounds);
    let batch_tps = batch_v.tps(objects.len(), rounds);
    let matches_per_sweep = object_v.matches / rounds as u64;
    let rejections = index_batch.signature_rejections();

    println!(
        "Matching kernel (fixed seed; {n_queries} queries, {n_objects} objects, {rounds} interleaved rounds)"
    );
    println!("  match_object      {object_tps:>12.0} objects/s");
    println!("  match_object_into {into_tps:>12.0} objects/s");
    println!("  match_batch(64)   {batch_tps:>12.0} objects/s");
    println!("  matches per sweep {matches_per_sweep}");
    println!("  signature rejections (batch run) {rejections}");

    if let Some(path) = json_arg() {
        write_json_file(
            &path,
            "match_kernel",
            &[
                ("queries", JsonValue::Int(n_queries as i64)),
                ("objects", JsonValue::Int(n_objects as i64)),
                ("rounds", JsonValue::Int(rounds as i64)),
                ("match_object_tps", JsonValue::Float(object_tps)),
                ("match_object_into_tps", JsonValue::Float(into_tps)),
                ("match_batch_tps", JsonValue::Float(batch_tps)),
                (
                    "matches_per_sweep",
                    JsonValue::Int(matches_per_sweep as i64),
                ),
                ("signature_rejections", JsonValue::Int(rejections as i64)),
            ],
            &rows,
        )
        .expect("writing --json output");
        println!("  wrote {path}");
    }
}
