//! Matching-kernel microbenchmark — the per-object GI² hot loop in isolation.
//!
//! Unlike the criterion benches this binary uses a **fixed seed** and prints
//! one deterministic workload's sustained matching throughput, so successive
//! runs on the same machine are directly comparable (the perf trajectory of
//! the zero-allocation kernel work — see `BENCH_MATCH.json` at the repo
//! root). `--json <path>` writes the numbers in machine-readable form;
//! `--smoke` shrinks the workload for CI.
//!
//! All three entry points are cross-checked: the total match count must be
//! identical for `match_object`, `match_object_into` and `match_batch`.

use ps2stream::prelude::*;
use ps2stream_bench::{json_arg, write_json_file, JsonValue};
use ps2stream_index::{Gi2Config, Gi2Index, MatchScratch};
use std::time::Instant;

struct Workload {
    queries: Vec<StsQuery>,
    objects: Vec<SpatioTextualObject>,
}

fn build_workload(n_queries: usize, n_objects: usize) -> Workload {
    let spec = DatasetSpec::tweets_us();
    let mut corpus = CorpusGenerator::new(spec, 1);
    let objects = corpus.generate(n_objects);
    let mut generator = QueryGenerator::from_corpus(
        &corpus,
        &objects,
        QueryGeneratorConfig::new(QueryClass::Q1),
        2,
    );
    Workload {
        queries: generator.generate(n_queries),
        objects,
    }
}

fn build_index(workload: &Workload) -> Gi2Index {
    let mut index = Gi2Index::new(Gi2Config::new(DatasetSpec::tweets_us().bounds));
    for q in &workload.queries {
        index.insert(q.clone());
    }
    index
}

/// One measured pass: `rounds` sweeps over the object set, returning
/// (objects/s, total matches) — the match count doubles as a cross-variant
/// equivalence check.
fn measure<F: FnMut(&SpatioTextualObject) -> usize>(
    objects: &[SpatioTextualObject],
    rounds: usize,
    mut f: F,
) -> (f64, u64) {
    let mut matches = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        for o in objects {
            matches += f(o) as u64;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((objects.len() * rounds) as f64 / elapsed, matches)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_queries, n_objects, rounds) = if smoke {
        (2_000, 500, 4)
    } else {
        (10_000, 2_000, 20)
    };
    let workload = build_workload(n_queries, n_objects);

    // Legacy allocating entry point (kept as the compatibility wrapper).
    let mut index = build_index(&workload);
    let (object_tps, matches_object) =
        measure(&workload.objects, rounds, |o| index.match_object(o).len());

    // Scratch-threaded zero-allocation entry point.
    let mut index = build_index(&workload);
    let mut scratch = MatchScratch::new();
    let (into_tps, matches_into) = measure(&workload.objects, rounds, |o| {
        index.match_object_into(o, &mut scratch).len()
    });

    // Batched entry point (64-object batches, the worker's steady state).
    let mut index = build_index(&workload);
    let mut scratch = MatchScratch::new();
    let mut batch_matches = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        for chunk in workload.objects.chunks(64) {
            index.match_batch(chunk.iter(), &mut scratch, |_, _, results| {
                batch_matches += results.len() as u64;
            });
        }
    }
    let batch_tps = (workload.objects.len() * rounds) as f64 / start.elapsed().as_secs_f64();
    let rejections = index.signature_rejections();

    assert_eq!(
        matches_object, matches_into,
        "match_object and match_object_into disagree"
    );
    assert_eq!(
        matches_object, batch_matches,
        "match_object and match_batch disagree"
    );

    println!(
        "Matching kernel (fixed seed; {n_queries} queries, {n_objects} objects, {rounds} rounds)"
    );
    println!("  match_object      {object_tps:>12.0} objects/s");
    println!("  match_object_into {into_tps:>12.0} objects/s");
    println!("  match_batch(64)   {batch_tps:>12.0} objects/s");
    println!("  matches per sweep {}", matches_object / rounds as u64);
    println!("  signature rejections (batch run) {rejections}");

    if let Some(path) = json_arg() {
        write_json_file(
            &path,
            "match_kernel",
            &[
                ("queries", JsonValue::Int(n_queries as i64)),
                ("objects", JsonValue::Int(n_objects as i64)),
                ("rounds", JsonValue::Int(rounds as i64)),
                ("match_object_tps", JsonValue::Float(object_tps)),
                ("match_object_into_tps", JsonValue::Float(into_tps)),
                ("match_batch_tps", JsonValue::Float(batch_tps)),
                (
                    "matches_per_sweep",
                    JsonValue::Int((matches_object / rounds as u64) as i64),
                ),
                ("signature_rejections", JsonValue::Int(rejections as i64)),
            ],
            &[],
        )
        .expect("writing --json output");
        println!("  wrote {path}");
    }
}
