//! Figure 12 — migration experiments with #Q = 1M (STS-US-Q1).
//!
//! (a) running time of selecting the cells to migrate, for DP, GR, SI and RA;
//! (b) average migration cost (MB) and migration time;
//! (c) fraction of tuples with latency below 100 ms, between 100 ms and 1 s,
//!     and above 1 s when the selector drives the dynamic load adjustment of
//!     a running system.

use ps2stream::prelude::*;
use ps2stream_balance::all_selectors;
use ps2stream_bench::{print_table, Experiment, MigrationLab, Scale};

fn selector_kind(name: &str) -> SelectorKind {
    match name {
        "DP" => SelectorKind::Dp,
        "GR" => SelectorKind::Greedy,
        "SI" => SelectorKind::Size,
        "RA" => SelectorKind::Random,
        other => panic!("unknown selector {other}"),
    }
}

fn main() {
    println!("Figure 12: migration experiments (#Q=1M, STS-US-Q1)");
    println!("(PS2_SCALE={})", Scale::factor());
    let scale = Scale::factor();
    let queries = ((4_000.0 * scale) as usize).max(500);
    let objects = queries * 2;
    let lab = MigrationLab::build(queries, objects, 7);
    let tau = lab.total_load() * 0.25;

    // (a) selection time, (b) migration cost and time
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for selector in all_selectors() {
        let (selection, selection_time) = lab.time_selection(selector.as_ref(), tau);
        rows_a.push(vec![
            selector.name().to_string(),
            format!("{:.3}", selection_time.as_secs_f64() * 1e3),
            format!("{}", selection.cells.len()),
        ]);
        let outcome = lab.execute_migration(&selection);
        rows_b.push(vec![
            selector.name().to_string(),
            format!("{:.3}", outcome.bytes_moved as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", outcome.elapsed.as_secs_f64() * 1e3),
            format!("{}", outcome.queries_moved),
        ]);
    }
    print_table(
        "Figure 12(a): time of selecting cells for migration",
        &["algorithm", "selection time (ms)", "#cells selected"],
        &rows_a,
    );
    print_table(
        "Figure 12(b): migration cost and time",
        &[
            "algorithm",
            "migration cost (MB)",
            "migration time (ms)",
            "#queries moved",
        ],
        &rows_b,
    );

    // (c) latency distribution when the selector drives the adjustment of a
    // running system
    let mut rows_c = Vec::new();
    for selector in all_selectors() {
        let adjustment = AdjustmentConfig {
            selector: selector_kind(selector.name()),
            poll_interval_ms: 50,
            ..AdjustmentConfig::default()
        };
        let report = Experiment::new(
            DatasetSpec::tweets_us(),
            QueryClass::Q1,
            Box::new(HybridPartitioner::default()),
            Scale::smoke(),
        )
        .with_adjustment(adjustment)
        .run();
        let b = report.latency_breakdown;
        rows_c.push(vec![
            selector.name().to_string(),
            format!("{:.2}", b.fast),
            format!("{:.2}", b.medium),
            format!("{:.2}", b.slow),
            format!("{}", report.migration_moves),
        ]);
    }
    print_table(
        "Figure 12(c): fraction of tuple latencies under adjustment",
        &["algorithm", "<100ms", "[100ms,1s]", ">1s", "#cell moves"],
        &rows_c,
    );
    println!();
    println!(
        "Paper shape: DP needs far longer to select cells than GR/SI/RA; DP and GR\n\
         incur the smallest migration cost and time; GR disturbs the fewest tuples\n\
         (largest <100ms fraction), followed by DP, then SI and RA."
    );
}
