//! Figure 7 — throughput of Hybrid vs Metric vs kd-tree partitioning.
//!
//! (a) Q1 with µ=5M, (b) Q2 with µ=10M, (c) Q3 with µ=10M; TWEETS-US and
//! TWEETS-UK; 4 dispatchers, 8 workers. `--json <path>` additionally writes
//! every row in machine-readable form (the perf-trajectory artifact).

use ps2stream::prelude::*;
use ps2stream_bench::{
    dataset_tag, datasets, fmt_tps, headline_report_batched, headline_strategies, json_arg,
    print_table, write_json_file, JsonValue, RunKnobs, Scale,
};

fn run_panel(
    title: &str,
    panel: &str,
    class: QueryClass,
    scale: Scale,
    knobs: &RunKnobs,
    json_rows: &mut Vec<Vec<(&'static str, JsonValue)>>,
) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for strategy in headline_strategies() {
            let report = headline_report_batched(dataset.clone(), class, strategy, scale, 8, knobs);
            let workload = format!("STS-{}-{}", dataset_tag(&dataset), class.name());
            rows.push(vec![
                workload.clone(),
                strategy.to_string(),
                fmt_tps(report.throughput_tps),
                format!("{:.2}", report.balance_factor()),
            ]);
            json_rows.push(vec![
                ("panel", JsonValue::Str(panel.to_string())),
                ("workload", JsonValue::Str(workload)),
                ("strategy", JsonValue::Str(strategy.to_string())),
                ("scenario", JsonValue::Str(knobs.scenario_name())),
                ("throughput_tps", JsonValue::Float(report.throughput_tps)),
                ("balance_factor", JsonValue::Float(report.balance_factor())),
                (
                    "matches_delivered",
                    JsonValue::Int(report.matches_delivered as i64),
                ),
                // the adjustment controller's reaction to the scenario
                // (all-zero when adjustment is off, i.e. steady-state runs)
                (
                    "migration_rounds",
                    JsonValue::Int(report.migration_rounds as i64),
                ),
                (
                    "migration_moves",
                    JsonValue::Int(report.migration_moves as i64),
                ),
                (
                    "migration_bytes",
                    JsonValue::Int(report.migration_bytes as i64),
                ),
            ]);
            // durability cost + recovery-probe columns (all-zero unless
            // the run was started with --durable)
            let p = report.persistence.clone().unwrap_or_default();
            json_rows.last_mut().unwrap().extend([
                ("ops_logged", JsonValue::Int(p.ops_logged as i64)),
                ("log_bytes", JsonValue::Int(p.log_bytes as i64)),
                ("snapshot_bytes", JsonValue::Int(p.snapshot_bytes as i64)),
                (
                    "snapshots_written",
                    JsonValue::Int(p.snapshots_written as i64),
                ),
                ("recovered_ops", JsonValue::Int(p.recovered_ops as i64)),
                (
                    "replay_ms",
                    JsonValue::Float(p.replay_time.as_secs_f64() * 1e3),
                ),
            ]);
            // supervision + overload counters (all-zero unless the run was
            // started with --faults or an overload policy tripped)
            let f = &report.faults;
            json_rows.last_mut().unwrap().extend([
                ("worker_crashes", JsonValue::Int(f.worker_crashes as i64)),
                ("worker_respawns", JsonValue::Int(f.worker_respawns as i64)),
                (
                    "replayed_records",
                    JsonValue::Int(f.replayed_records as i64),
                ),
                (
                    "restored_updates",
                    JsonValue::Int(f.restored_updates as i64),
                ),
                ("shed_records", JsonValue::Int(f.shed_records as i64)),
                ("shed_matches", JsonValue::Int(f.shed_matches as i64)),
                ("diverted_sends", JsonValue::Int(f.diverted_sends as i64)),
            ]);
        }
    }
    print_table(
        title,
        &[
            "workload",
            "strategy",
            "throughput (tuples/s)",
            "balance Lmax/Lmin",
        ],
        &rows,
    );
}

fn main() {
    let knobs = RunKnobs::from_args();
    let mut json_rows = Vec::new();
    println!("Figure 7: throughput comparison (Metric, kd-tree, Hybrid)");
    println!(
        "(4 dispatchers, 8 workers; PS2_SCALE={}; {})",
        Scale::factor(),
        knobs.describe(),
    );
    run_panel(
        "Figure 7(a): #Queries=5M (Q1)",
        "a",
        QueryClass::Q1,
        Scale::q5m(),
        &knobs,
        &mut json_rows,
    );
    run_panel(
        "Figure 7(b): #Queries=10M (Q2)",
        "b",
        QueryClass::Q2,
        Scale::q10m(),
        &knobs,
        &mut json_rows,
    );
    run_panel(
        "Figure 7(c): #Queries=10M (Q3)",
        "c",
        QueryClass::Q3,
        Scale::q10m(),
        &knobs,
        &mut json_rows,
    );
    println!();
    println!(
        "Paper shape: Hybrid has the overall best throughput; on Q1 it tracks the\n\
         kd-tree baseline, on Q2 it tracks Metric, and on the heterogeneous Q3\n\
         workload it beats both by roughly 30%."
    );
    if let Some(path) = json_arg() {
        write_json_file(
            &path,
            "fig07_throughput",
            &[
                ("scale_factor", JsonValue::Float(Scale::factor())),
                ("scenario", JsonValue::Str(knobs.scenario_name())),
                ("knobs", JsonValue::Str(knobs.describe())),
                ("durable", JsonValue::Int(knobs.durable as i64)),
            ],
            &json_rows,
        )
        .expect("writing --json output");
        println!("wrote {path}");
    }
}
