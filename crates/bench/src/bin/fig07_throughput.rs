//! Figure 7 — throughput of Hybrid vs Metric vs kd-tree partitioning.
//!
//! (a) Q1 with µ=5M, (b) Q2 with µ=10M, (c) Q3 with µ=10M; TWEETS-US and
//! TWEETS-UK; 4 dispatchers, 8 workers.

use ps2stream::prelude::*;
use ps2stream_bench::{
    dataset_tag, datasets, fmt_tps, headline_report_batched, headline_strategies, print_table,
    RunKnobs, Scale,
};

fn run_panel(title: &str, class: QueryClass, scale: Scale, knobs: &RunKnobs) {
    let mut rows = Vec::new();
    for dataset in datasets() {
        for strategy in headline_strategies() {
            let report = headline_report_batched(dataset.clone(), class, strategy, scale, 8, knobs);
            rows.push(vec![
                format!("STS-{}-{}", dataset_tag(&dataset), class.name()),
                strategy.to_string(),
                fmt_tps(report.throughput_tps),
                format!("{:.2}", report.balance_factor()),
            ]);
        }
    }
    print_table(
        title,
        &[
            "workload",
            "strategy",
            "throughput (tuples/s)",
            "balance Lmax/Lmin",
        ],
        &rows,
    );
}

fn main() {
    let knobs = RunKnobs::from_args();
    println!("Figure 7: throughput comparison (Metric, kd-tree, Hybrid)");
    println!(
        "(4 dispatchers, 8 workers; PS2_SCALE={}; {})",
        Scale::factor(),
        knobs.describe(),
    );
    run_panel(
        "Figure 7(a): #Queries=5M (Q1)",
        QueryClass::Q1,
        Scale::q5m(),
        &knobs,
    );
    run_panel(
        "Figure 7(b): #Queries=10M (Q2)",
        QueryClass::Q2,
        Scale::q10m(),
        &knobs,
    );
    run_panel(
        "Figure 7(c): #Queries=10M (Q3)",
        QueryClass::Q3,
        Scale::q10m(),
        &knobs,
    );
    println!();
    println!(
        "Paper shape: Hybrid has the overall best throughput; on Q1 it tracks the\n\
         kd-tree baseline, on Q2 it tracks Metric, and on the heterogeneous Q3\n\
         workload it beats both by roughly 30%."
    );
}
