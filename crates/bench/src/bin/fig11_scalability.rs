//! Figure 11 — scalability with the number of workers.
//!
//! Throughput of Metric, kd-tree and Hybrid on the TWEETS-UK workloads while
//! the number of workers grows from 8 to 24 (4 dispatchers throughout):
//! (a) Q1 with µ=10M, (b) Q2 with µ=20M, (c) Q3 with µ=20M.

use ps2stream::prelude::*;
use ps2stream_bench::{fmt_tps, headline_report, headline_strategies, print_table, Scale};

fn run_panel(title: &str, class: QueryClass, scale: Scale, worker_counts: &[usize]) {
    let mut rows = Vec::new();
    for &workers in worker_counts {
        for strategy in headline_strategies() {
            let report = headline_report(DatasetSpec::tweets_uk(), class, strategy, scale, workers);
            rows.push(vec![
                format!("{workers}"),
                strategy.to_string(),
                fmt_tps(report.throughput_tps),
            ]);
        }
    }
    print_table(
        title,
        &["#workers", "strategy", "throughput (tuples/s)"],
        &rows,
    );
}

fn main() {
    println!("Figure 11: scalability (TWEETS-UK, 4 dispatchers)");
    println!("(PS2_SCALE={})", Scale::factor());
    let workers = [8usize, 12, 16, 20, 24];
    run_panel(
        "Figure 11(a): #Queries=10M (STS-UK-Q1)",
        QueryClass::Q1,
        Scale::q10m(),
        &workers,
    );
    run_panel(
        "Figure 11(b): #Queries=20M (STS-UK-Q2)",
        QueryClass::Q2,
        Scale::q20m(),
        &workers,
    );
    run_panel(
        "Figure 11(c): #Queries=20M (STS-UK-Q3)",
        QueryClass::Q3,
        Scale::q20m(),
        &workers,
    );
    println!();
    println!(
        "Paper shape: Hybrid scales best with the number of workers; Metric scales\n\
         worst on Q1 (frequent keywords) and kd-tree worst on Q2 (large ranges)."
    );
}
