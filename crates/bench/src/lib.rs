//! Shared harness for reproducing the figures of the PS2Stream paper.
//!
//! Every figure of Section VI has a dedicated binary in `src/bin/` (see
//! `DESIGN.md` for the experiment index). The binaries share this harness:
//! it generates the scaled-down workloads, drives a full in-process
//! PS2Stream deployment and prints the same series the paper plots.
//!
//! The workload sizes are scaled down from the paper's 5M–20M queries so a
//! complete run finishes on a laptop; set the `PS2_SCALE` environment
//! variable (default `1.0`) to scale every workload up or down.
//!
//! # Example
//!
//! Running a tiny end-to-end experiment through the shared harness:
//!
//! ```
//! use ps2stream_bench::{build_partitioner, Experiment, Scale};
//! use ps2stream::prelude::{DatasetSpec, QueryClass};
//!
//! let scale = Scale {
//!     queries: 200,
//!     stream_records: 400,
//!     calibration_objects: 300,
//!     calibration_queries: 100,
//! };
//! let report = Experiment::new(
//!     DatasetSpec::tiny(),
//!     QueryClass::Q1,
//!     build_partitioner("Hybrid"),
//!     scale,
//! )
//! .with_workers(2)
//! .run();
//! assert_eq!(report.records_in, (200 + 400) as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod migration_lab;

use ps2stream::prelude::*;
use ps2stream_partition::Partitioner;

pub use migration_lab::{MigrationLab, MigrationOutcome};

/// Workload sizes used by the experiment binaries (already scaled).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of STS queries registered before measuring ("µ" in the paper,
    /// 5M/10M/20M there).
    pub queries: usize,
    /// Number of stream records (objects + updates) driven through the system
    /// during the measured phase.
    pub stream_records: usize,
    /// Number of objects in the calibration sample given to the partitioner.
    pub calibration_objects: usize,
    /// Number of queries in the calibration sample given to the partitioner.
    pub calibration_queries: usize,
}

impl Scale {
    /// The scale factor read from `PS2_SCALE` (default 1.0).
    pub fn factor() -> f64 {
        std::env::var("PS2_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| *v > 0.0)
            .unwrap_or(1.0)
    }

    /// The scale corresponding to the paper's "5M queries" configuration.
    pub fn q5m() -> Self {
        Self::from_base(20_000)
    }

    /// The scale corresponding to the paper's "10M queries" configuration.
    pub fn q10m() -> Self {
        Self::from_base(40_000)
    }

    /// The scale corresponding to the paper's "20M queries" configuration.
    pub fn q20m() -> Self {
        Self::from_base(80_000)
    }

    /// A small scale for quick smoke tests.
    pub fn smoke() -> Self {
        Self {
            queries: 2_000,
            stream_records: 6_000,
            calibration_objects: 2_000,
            calibration_queries: 500,
        }
    }

    fn from_base(base_queries: usize) -> Self {
        let f = Self::factor();
        let queries = ((base_queries as f64) * f) as usize;
        Self {
            queries: queries.max(100),
            stream_records: (queries * 3).max(300),
            calibration_objects: (queries / 2).clamp(1_000, 40_000),
            calibration_queries: (queries / 8).clamp(200, 10_000),
        }
    }
}

/// One experiment configuration: a dataset, a query class, a partitioning
/// strategy and a cluster size.
pub struct Experiment {
    /// Dataset ("TWEETS-US" or "TWEETS-UK" substitute).
    pub dataset: DatasetSpec,
    /// Query class (Q1 / Q2 / Q3).
    pub class: QueryClass,
    /// Partitioning strategy under test.
    pub partitioner: Box<dyn Partitioner>,
    /// Number of worker executors.
    pub workers: usize,
    /// Number of dispatcher executors.
    pub dispatchers: usize,
    /// Workload sizes.
    pub scale: Scale,
    /// Dynamic load adjustment configuration (None = disabled).
    pub adjustment: Option<AdjustmentConfig>,
    /// Hot-path batch size override (None = the system default).
    pub batch_size: Option<usize>,
    /// Execution substrate override (None = the system default, which
    /// honours `PS2_RUNTIME`).
    pub runtime: Option<RuntimeBackend>,
    /// Core-pinning override (None = the system default, which honours
    /// `PS2_PIN`).
    pub pinning: Option<bool>,
    /// Adversarial scenario overlaid on the measured stream (None = the
    /// paper's steady-state mix).
    pub scenario: Option<Scenario>,
    /// Durable-subscription store configuration (None = in-memory only).
    pub durability: Option<StoreConfig>,
    /// Declarative fault schedule injected into the run (None = fault-free).
    pub faults: Option<FaultPlan>,
    /// Random seed.
    pub seed: u64,
}

impl Experiment {
    /// Creates an experiment with the paper's default cluster (4 dispatchers,
    /// 8 workers) and no dynamic adjustment.
    pub fn new(
        dataset: DatasetSpec,
        class: QueryClass,
        partitioner: Box<dyn Partitioner>,
        scale: Scale,
    ) -> Self {
        Self {
            dataset,
            class,
            partitioner,
            workers: 8,
            dispatchers: 4,
            scale,
            adjustment: None,
            batch_size: None,
            runtime: None,
            pinning: None,
            scenario: None,
            durability: None,
            faults: None,
            seed: 42,
        }
    }

    /// Overrides the number of workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the hot-path batch size (see `SystemConfig::batch_size`).
    pub fn with_batch(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Enables dynamic load adjustment.
    pub fn with_adjustment(mut self, adjustment: AdjustmentConfig) -> Self {
        self.adjustment = Some(adjustment);
        self
    }

    /// Overrides the execution substrate (see `SystemConfig::runtime`).
    pub fn with_runtime(mut self, runtime: RuntimeBackend) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Overrides core pinning (see `SystemConfig::pinning`).
    pub fn with_pinning(mut self, pinning: bool) -> Self {
        self.pinning = Some(pinning);
        self
    }

    /// Overlays an adversarial workload scenario on the measured stream
    /// (warm-up stays steady-state so every run starts from the same live
    /// query population).
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Enables the durable subscription store (op log + snapshots in
    /// `store.dir`; see `SystemConfig::durability`).
    pub fn with_durability(mut self, store: StoreConfig) -> Self {
        self.durability = Some(store);
        self
    }

    /// Injects a declarative fault schedule (see `SystemConfig::faults` and
    /// the `PS2_FAULTS` grammar). The supervised pipeline masks every
    /// scheduled fault, so throughput/latency columns show the recovery
    /// cost rather than lost work.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the experiment: partition on a calibration sample, register the
    /// initial query population, drive the measured stream, and return the
    /// run report.
    pub fn run(self) -> RunReport {
        let scale = self.scale;
        // calibration sample for the partitioner
        let sample = ps2stream_workload::build_sample(
            self.dataset.clone(),
            self.class,
            scale.calibration_objects,
            scale.calibration_queries,
            self.seed,
        );
        let config = SystemConfig {
            num_dispatchers: self.dispatchers,
            num_workers: self.workers,
            num_mergers: 2,
            ..SystemConfig::default()
        };
        let config = match self.adjustment {
            Some(adj) => config.with_adjustment(adj),
            None => config,
        };
        let config = match self.batch_size {
            Some(batch) => config.with_batch_size(batch),
            None => config,
        };
        let config = match self.runtime {
            Some(runtime) => config.with_runtime(runtime),
            None => config,
        };
        let config = match self.pinning {
            Some(pinning) => config.with_pinning(pinning),
            None => config,
        };
        let config = match self.durability {
            Some(store) => config.with_durability(store),
            None => config,
        };
        let config = config.with_faults(self.faults);
        let mut system = Ps2StreamBuilder::new(config)
            .with_partitioner(self.partitioner)
            .with_calibration_sample(sample)
            .start();

        // workload driver: warm up to the target live-query population, then
        // drive the measured mix
        let mut corpus = CorpusGenerator::new(self.dataset.clone(), self.seed.wrapping_add(7));
        let corpus_sample = corpus.generate(scale.calibration_objects);
        let queries = QueryGenerator::from_corpus(
            &corpus,
            &corpus_sample,
            QueryGeneratorConfig::new(self.class),
            self.seed.wrapping_add(13),
        );
        let mut driver = WorkloadDriver::new(
            DriverConfig::with_mu(scale.queries as u64),
            corpus,
            queries,
            self.seed.wrapping_add(23),
        );
        for record in driver.warm_up(scale.queries) {
            system.send(record);
        }
        match self.scenario {
            Some(scenario) => {
                let mut scenario_driver =
                    ScenarioDriver::new(driver, scenario, self.seed.wrapping_add(31));
                for record in (&mut scenario_driver).take(scale.stream_records) {
                    system.send(record);
                }
            }
            None => {
                for record in (&mut driver).take(scale.stream_records) {
                    system.send(record);
                }
            }
        }
        system.finish()
    }
}

/// Pretty-prints a result table in the style of the paper's figures.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a tuples/second value the way the paper's axes do.
pub fn fmt_tps(tps: f64) -> String {
    format!("{:.0}", tps)
}

/// Formats a byte count as mebibytes.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration in milliseconds.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// The two datasets of the evaluation.
pub fn datasets() -> Vec<DatasetSpec> {
    vec![DatasetSpec::tweets_us(), DatasetSpec::tweets_uk()]
}

/// The three strategies compared in Figures 7–11 (Metric, kd-tree, Hybrid).
pub fn headline_strategies() -> Vec<&'static str> {
    vec!["Metric", "kd-tree", "Hybrid"]
}

/// Builds a partitioner by its name as used in the paper's figures.
///
/// # Panics
/// Panics on an unknown name.
pub fn build_partitioner(name: &str) -> Box<dyn Partitioner> {
    match name {
        "Frequency" => Box::new(FrequencyPartitioner::default()),
        "Hypergraph" => Box::new(HypergraphPartitioner::default()),
        "Metric" => Box::new(MetricPartitioner::default()),
        "Grid" => Box::new(GridPartitioner::default()),
        "kd-tree" => Box::new(KdTreePartitioner::default()),
        "R-tree" => Box::new(RTreePartitioner::default()),
        "Hybrid" => Box::new(HybridPartitioner::default()),
        other => panic!("unknown partitioner {other}"),
    }
}

/// The dataset tag used in workload names ("US" / "UK").
pub fn dataset_tag(spec: &DatasetSpec) -> &'static str {
    if spec.name.contains("US") {
        "US"
    } else {
        "UK"
    }
}

/// Runs one headline experiment (Figures 7–11): the given dataset, query
/// class and strategy on `workers` workers.
pub fn headline_report(
    dataset: DatasetSpec,
    class: QueryClass,
    strategy: &str,
    scale: Scale,
    workers: usize,
) -> RunReport {
    headline_report_batched(
        dataset,
        class,
        strategy,
        scale,
        workers,
        &RunKnobs::default(),
    )
}

/// The optional command-line knobs shared by the fig07/fig08 binaries
/// (`None` everywhere = system defaults, which honour `PS2_RUNTIME` and
/// `PS2_PIN`).
#[derive(Debug, Clone, Default)]
pub struct RunKnobs {
    /// `--batch N`: hot-path batch size.
    pub batch: Option<usize>,
    /// `--runtime <spec>`: execution substrate.
    pub runtime: Option<RuntimeBackend>,
    /// `--pin`: core pinning.
    pub pinning: Option<bool>,
    /// `--scenario <name>`: adversarial workload scenario. Implies dynamic
    /// load adjustment (the controller's reaction is the thing being
    /// measured).
    pub scenario: Option<Scenario>,
    /// `--durable`: append every query update to an op log (plus periodic
    /// snapshots) in a per-run temp directory, and probe recovery
    /// afterwards. Durability cost shows up in the throughput/latency
    /// columns; log/snapshot sizes and replay time land in the JSON rows.
    pub durable: bool,
    /// `--faults <spec>`: declarative fault schedule (the `PS2_FAULTS`
    /// grammar). The supervised pipeline masks every scheduled fault;
    /// recovery cost shows up in the throughput/latency columns, the
    /// crash/shed/replay counters land in the JSON rows.
    pub faults: Option<FaultPlan>,
}

impl RunKnobs {
    /// Parses all knobs from the process command line.
    pub fn from_args() -> Self {
        Self {
            batch: batch_arg(),
            runtime: runtime_arg(),
            pinning: pin_arg(),
            scenario: scenario_arg(),
            durable: durable_arg(),
            faults: faults_arg(),
        }
    }

    /// Renders the knob line printed in each figure header.
    pub fn describe(&self) -> String {
        format!(
            "--batch {}; --runtime {}; pinning {}; scenario {}; durable {}; faults {}",
            self.batch.map_or("default".to_string(), |b| b.to_string()),
            self.runtime
                .as_ref()
                .map_or("default".to_string(), |r| r.name().to_string()),
            self.pinning
                .map_or("default".to_string(), |p| p.to_string()),
            self.scenario
                .map_or("steady-state".to_string(), |s| s.name().to_string()),
            self.durable,
            self.faults
                .as_ref()
                .map_or("none".to_string(), |p| format!("{} spec(s)", p.specs.len())),
        )
    }

    /// The scenario name for JSON reports ("steady-state" when none).
    pub fn scenario_name(&self) -> String {
        self.scenario
            .map_or("steady-state".to_string(), |s| s.name().to_string())
    }
}

/// [`headline_report`] with the explicit batch / runtime / pinning knobs of
/// the fig07/fig08 binaries.
pub fn headline_report_batched(
    dataset: DatasetSpec,
    class: QueryClass,
    strategy: &str,
    scale: Scale,
    workers: usize,
    knobs: &RunKnobs,
) -> RunReport {
    let mut experiment =
        Experiment::new(dataset, class, build_partitioner(strategy), scale).with_workers(workers);
    if let Some(batch) = knobs.batch {
        experiment = experiment.with_batch(batch);
    }
    if let Some(runtime) = knobs.runtime.clone() {
        experiment = experiment.with_runtime(runtime);
    }
    if let Some(pinning) = knobs.pinning {
        experiment = experiment.with_pinning(pinning);
    }
    if let Some(plan) = knobs.faults.clone() {
        experiment = experiment.with_faults(plan);
    }
    if let Some(scenario) = knobs.scenario {
        // an adversarial run is about the controller's reaction, so enable
        // dynamic adjustment with the responsive poll interval the Figure 16
        // drift experiment uses
        experiment = experiment
            .with_scenario(scenario)
            .with_adjustment(AdjustmentConfig {
                poll_interval_ms: 50,
                ..AdjustmentConfig::default()
            });
    }
    if !knobs.durable {
        return experiment.run();
    }
    let dir = fresh_durability_dir();
    // snapshot a handful of times per run regardless of PS2_SCALE, so the
    // JSON artifact always carries a real snapshot size
    let snapshot_every = (scale.queries as u64 / 4).max(256);
    experiment = experiment
        .with_durability(StoreConfig::new(&dir).with_snapshot_every(Some(snapshot_every)));
    let mut report = experiment.run();
    // recovery probe: reopen what the run left on disk and time the decode
    // of snapshot + log tail — the state-reconstruction cost a restart pays
    // before it can route again
    let (probe, recovered) = PersistentStore::open(StoreConfig::new(&dir))
        .expect("reopen the durability directory for the recovery probe");
    let replay_start = std::time::Instant::now();
    let replayed = recovered.replay_updates().count() as u64;
    let replay_time = replay_start.elapsed();
    drop(probe);
    if let Some(p) = &mut report.persistence {
        p.recovered_ops = replayed;
        p.replay_time = replay_time;
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// A unique, empty temp directory for one `--durable` run.
fn fresh_durability_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ps2bench-durable-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parses a `--batch N` argument from the process command line (the batching
/// knob shared by the fig07/fig08 binaries). Returns `None` when absent;
/// panics on a malformed value so a typo does not silently benchmark the
/// default.
pub fn batch_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix("--batch=") {
            return Some(value.parse().expect("--batch expects a positive integer"));
        }
        if arg == "--batch" {
            let value = args.get(i + 1).expect("--batch expects a value");
            return Some(value.parse().expect("--batch expects a positive integer"));
        }
    }
    None
}

/// Parses a `--runtime {threads,coop,coop:<threads>,sim,sim:<seed>}` argument
/// (the execution-substrate knob of the fig07/fig08 binaries). Returns
/// `None` when absent; panics on an unknown backend so a typo does not
/// silently benchmark the default.
pub fn runtime_arg() -> Option<RuntimeBackend> {
    let args: Vec<String> = std::env::args().collect();
    let spec = args.iter().enumerate().find_map(|(i, arg)| {
        arg.strip_prefix("--runtime=")
            .map(str::to_owned)
            .or_else(|| {
                (arg == "--runtime")
                    .then(|| args.get(i + 1).expect("--runtime expects a value").clone())
            })
    })?;
    Some(RuntimeBackend::parse(&spec).unwrap_or_else(|| {
        panic!("--runtime {spec:?}: expected threads|coop|coop:<threads>|sim|sim:<seed>")
    }))
}

/// Parses a `--pin` flag (the core-pinning knob of the fig07/fig08
/// binaries): present means pin executor threads according to the detected
/// machine topology; absent means the system default (which honours
/// `PS2_PIN`).
pub fn pin_arg() -> Option<bool> {
    std::env::args().any(|a| a == "--pin").then_some(true)
}

/// Parses a `--durable` flag (the persistence knob of the fig07/fig08
/// binaries): present means every query update is op-logged and
/// periodically snapshotted to a per-run temp directory (fsync policy from
/// `PS2_FSYNC`), with a recovery probe after the run.
pub fn durable_arg() -> bool {
    std::env::args().any(|a| a == "--durable")
}

/// Parses a `--faults <spec>` argument (the fault-injection knob of the
/// fig07/fig08 binaries): a declarative fault schedule in the `PS2_FAULTS`
/// grammar, e.g. `crash:worker:0@tick=5000;drop:worker->merger:p=0.01:k=8`.
/// Returns `None` when absent; panics on a malformed schedule so a typo does
/// not silently benchmark a fault-free run.
pub fn faults_arg() -> Option<FaultPlan> {
    let args: Vec<String> = std::env::args().collect();
    let spec = args.iter().enumerate().find_map(|(i, arg)| {
        arg.strip_prefix("--faults=")
            .map(str::to_owned)
            .or_else(|| {
                (arg == "--faults")
                    .then(|| args.get(i + 1).expect("--faults expects a value").clone())
            })
    })?;
    Some(FaultPlan::parse(&spec).unwrap_or_else(|err| panic!("--faults {spec:?}: {err}")))
}

/// Parses a `--scenario <name>` argument (the adversarial-workload knob of
/// the fig07/fig08 binaries). Returns `None` when absent; panics on an
/// unknown scenario name, listing the valid ones, so a typo does not
/// silently benchmark the steady-state mix.
pub fn scenario_arg() -> Option<Scenario> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.iter().enumerate().find_map(|(i, arg)| {
        arg.strip_prefix("--scenario=")
            .map(str::to_owned)
            .or_else(|| {
                (arg == "--scenario")
                    .then(|| args.get(i + 1).expect("--scenario expects a value").clone())
            })
    })?;
    Some(Scenario::parse(&name).unwrap_or_else(|| {
        let valid: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
        panic!("--scenario {name:?}: expected one of {}", valid.join(", "))
    }))
}

/// Parses a `--json <path>` argument: the experiment binaries write their
/// result tables to `path` in machine-readable form (the perf-trajectory
/// artifact consumed by CI). Returns `None` when absent.
pub fn json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix("--json=") {
            return Some(value.to_string());
        }
        if arg == "--json" {
            return Some(args.get(i + 1).expect("--json expects a path").clone());
        }
    }
    None
}

/// A JSON scalar for the hand-rolled report writer (the workspace
/// deliberately has no serde_json dependency; the report structure is flat
/// enough to render directly).
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A string value (escaped on render).
    Str(String),
    /// A floating-point value (rendered with 3 decimals; non-finite values
    /// render as `null`).
    Float(f64),
    /// An integer value.
    Int(i64),
}

impl JsonValue {
    fn render(&self) -> String {
        match self {
            JsonValue::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            JsonValue::Float(f) if f.is_finite() => format!("{f:.3}"),
            JsonValue::Float(_) => "null".to_string(),
            JsonValue::Int(i) => i.to_string(),
        }
    }
}

fn render_object(fields: &[(&str, JsonValue)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| {
            format!(
                "{}: {}",
                JsonValue::Str((*k).to_string()).render(),
                v.render()
            )
        })
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Writes a machine-readable result report: a JSON object with `name`, the
/// given scalar fields, and a `rows` array of objects (one per result-table
/// row).
pub fn write_json_file(
    path: &str,
    name: &str,
    scalars: &[(&str, JsonValue)],
    rows: &[Vec<(&str, JsonValue)>],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"name\": {},\n",
        JsonValue::Str(name.to_string()).render()
    ));
    for (k, v) in scalars {
        out.push_str(&format!(
            "  {}: {},\n",
            JsonValue::Str((*k).to_string()).render(),
            v.render()
        ));
    }
    out.push_str("  \"rows\": [\n");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| format!("    {}", render_object(r)))
        .collect();
    out.push_str(&rendered.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_monotone() {
        assert!(Scale::q5m().queries < Scale::q10m().queries);
        assert!(Scale::q10m().queries < Scale::q20m().queries);
        assert!(Scale::smoke().queries <= Scale::q5m().queries);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_tps(1234.56), "1235");
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
        assert_eq!(fmt_ms(std::time::Duration::from_millis(15)), "15.00");
    }

    #[test]
    fn build_partitioner_knows_every_strategy() {
        for name in [
            "Frequency",
            "Hypergraph",
            "Metric",
            "Grid",
            "kd-tree",
            "R-tree",
            "Hybrid",
        ] {
            assert_eq!(build_partitioner(name).name(), name);
        }
    }

    #[test]
    fn smoke_experiment_runs_end_to_end() {
        let report = Experiment::new(
            DatasetSpec::tiny(),
            QueryClass::Q1,
            Box::new(KdTreePartitioner::default()),
            Scale::smoke(),
        )
        .with_workers(2)
        .run();
        assert!(report.records_in > 0);
        assert!(report.throughput_tps > 0.0);
    }

    #[test]
    fn scenario_experiments_run_end_to_end() {
        let scale = Scale {
            queries: 200,
            stream_records: 400,
            calibration_objects: 300,
            calibration_queries: 100,
        };
        for scenario in Scenario::all() {
            let report = Experiment::new(
                DatasetSpec::tiny(),
                QueryClass::Q1,
                Box::new(KdTreePartitioner::default()),
                scale,
            )
            .with_workers(2)
            .with_scenario(scenario)
            .run();
            assert_eq!(
                report.records_in,
                600,
                "scenario {} lost records",
                scenario.name()
            );
            assert!(report.throughput_tps > 0.0);
        }
    }

    #[test]
    fn faulted_experiment_masks_the_crash() {
        let scale = Scale {
            queries: 200,
            stream_records: 400,
            calibration_objects: 300,
            calibration_queries: 100,
        };
        let report = Experiment::new(
            DatasetSpec::tiny(),
            QueryClass::Q1,
            Box::new(KdTreePartitioner::default()),
            scale,
        )
        .with_workers(2)
        .with_runtime(RuntimeBackend::deterministic(7))
        .with_faults(FaultPlan::parse("crash:worker:0@tick=50").unwrap())
        .run();
        // the crash fired, the respawn answered it, and no records were lost
        assert_eq!(report.records_in, 600);
        assert_eq!(report.faults.worker_crashes, 1);
        assert_eq!(report.faults.worker_respawns, 1);
        assert!(report.throughput_tps > 0.0);
    }

    #[test]
    fn json_report_renders_and_escapes() {
        let path = std::env::temp_dir().join("ps2stream_json_report_test.json");
        let path_str = path.to_str().unwrap();
        write_json_file(
            path_str,
            "demo",
            &[("scale", JsonValue::Float(1.5)), ("n", JsonValue::Int(3))],
            &[
                vec![
                    ("workload", JsonValue::Str("STS-\"US\"-Q1".into())),
                    ("tps", JsonValue::Float(1234.5678)),
                ],
                vec![("workload", JsonValue::Str("STS-UK-Q1".into()))],
            ],
        )
        .unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"name\": \"demo\""));
        assert!(written.contains("\"scale\": 1.500"));
        assert!(written.contains("\\\"US\\\""));
        assert!(written.contains("\"tps\": 1234.568"));
        let _ = std::fs::remove_file(&path);
        // non-finite floats render as null, empty rows render as []
        write_json_file(
            path_str,
            "x",
            &[("bad", JsonValue::Float(f64::INFINITY))],
            &[],
        )
        .unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"bad\": null"));
        assert!(written.contains("\"rows\": [\n  ]"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["strategy", "tps"],
            &[vec!["Hybrid".into(), "123".into()]],
        );
    }
}
