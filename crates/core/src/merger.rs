//! The merger executor.
//!
//! Workers may produce the same (query, object) match more than once when a
//! query is replicated on several workers (space partitioning duplicates
//! queries across region boundaries, the handover of the global adjustment
//! temporarily duplicates them across routing tables). The merger removes
//! those duplicates and delivers the remaining results to the subscribers
//! (Section III-B).
//!
//! Deduplication state is bounded: only the most recent `capacity` objects
//! keep a per-object set of delivered queries. Eviction is
//! **insert-order-safe for in-flight objects**: once an object has been
//! evicted, a late match batch for it is *not* allowed to re-create its
//! entry — re-registering would forget which queries were already delivered
//! and double-deliver them, making the deliver-count metrics disagree with
//! the subscriber channel.
//!
//! The guard against such resurrection is a **sequence watermark** rather
//! than a set of evicted object ids (which would grow with the total number
//! of objects over a run): every match envelope carries its object's ingest
//! sequence number, and evicting an object raises the watermark to that
//! object's sequence. A match batch for an *untracked* object at or below
//! the watermark is necessarily late traffic from the evicted era and is
//! suppressed as a duplicate — possibly over-suppressing a genuinely new
//! match whose first batch arrived very late, the deliberate trade-off of a
//! bounded dedup window (size the window with the `capacity` knob).

use crate::messages::MergerMessage;
use crate::metrics::SystemMetrics;
use ps2stream_model::{MatchResult, ObjectId, QueryId};
use ps2stream_stream::{Emitter, Operator, QueueDepth, Sender};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A merger executor.
pub struct Merger {
    metrics: Arc<SystemMetrics>,
    /// Optional delivery channel towards the subscribers (tests and examples
    /// consume matches from here).
    delivery: Option<Sender<MatchResult>>,
    /// Recently seen (object → matched queries) used for deduplication.
    seen: HashMap<ObjectId, HashSet<QueryId>>,
    /// FIFO of `(object, ingest sequence)` for bounded-memory eviction.
    order: VecDeque<(ObjectId, u64)>,
    /// Highest ingest sequence among evicted objects: late matches at or
    /// below it must not re-register. `None` until the first eviction, so
    /// the scheme is inert while the window has room.
    evicted_watermark: Option<u64>,
    /// Maximum number of objects tracked for deduplication.
    capacity: usize,
    /// Overload protection: `(input backlog gauge, mailbox bound)`. When the
    /// backlog exceeds the bound, whole match batches are shed (see
    /// [`OverloadPolicy::ShedOldest`](crate::config::OverloadPolicy)).
    shed: Option<(QueueDepth, usize)>,
}

impl Merger {
    /// Creates a merger tracking up to `capacity` recent objects for
    /// deduplication.
    pub fn new(
        metrics: Arc<SystemMetrics>,
        delivery: Option<Sender<MatchResult>>,
        capacity: usize,
    ) -> Self {
        Self {
            metrics,
            delivery,
            seen: HashMap::new(),
            order: VecDeque::new(),
            evicted_watermark: None,
            capacity: capacity.max(1),
            shed: None,
        }
    }

    /// Arms overload protection: when `depth` (this merger's input backlog)
    /// exceeds `mailbox`, incoming match batches are shed instead of merged.
    /// Shedding raises the eviction watermark over the shed batch so a
    /// retransmitted or duplicated copy of a shed match can never be
    /// delivered later as if it were new (dedup stays sound around the gap).
    pub fn with_overload(mut self, depth: QueueDepth, mailbox: usize) -> Self {
        self.shed = Some((depth, mailbox));
        self
    }

    /// The dedup entry of an object (whose matches arrived with ingest
    /// sequence `sequence`), or `None` when the object falls behind the
    /// eviction watermark (late arrivals must not resurrect evicted state).
    fn note_object(&mut self, object: ObjectId, sequence: u64) -> Option<&mut HashSet<QueryId>> {
        if !self.seen.contains_key(&object) {
            if self
                .evicted_watermark
                .is_some_and(|watermark| sequence <= watermark)
            {
                return None;
            }
            if self.order.len() >= self.capacity {
                if let Some((old, old_sequence)) = self.order.pop_front() {
                    self.seen.remove(&old);
                    self.evicted_watermark = Some(
                        self.evicted_watermark
                            .map_or(old_sequence, |w| w.max(old_sequence)),
                    );
                }
            }
            self.order.push_back((object, sequence));
            self.seen.insert(object, HashSet::new());
        }
        self.seen.get_mut(&object)
    }

    /// Number of objects currently tracked for deduplication (the eviction
    /// guard itself is a single watermark, so this *is* the dedup footprint).
    pub fn tracked_objects(&self) -> usize {
        self.seen.len()
    }
}

impl Operator for Merger {
    type In = MergerMessage;
    type Out = ();

    fn process(&mut self, input: MergerMessage, _emitter: &Emitter<()>) {
        let MergerMessage::Matches(batch) = input;
        if let Some((depth, mailbox)) = &self.shed {
            if depth.get() > *mailbox {
                // Overloaded: shed the whole batch. Raising the watermark to
                // the batch's highest sequence keeps dedup sound — any copy
                // of a shed match arriving later for an untracked object is
                // suppressed as late traffic instead of delivered anew.
                let mut shed = 0u64;
                let mut high = self.evicted_watermark;
                for envelope in batch.records() {
                    shed += envelope.payload.len() as u64;
                    high = Some(high.map_or(envelope.sequence, |w| w.max(envelope.sequence)));
                }
                self.evicted_watermark = high;
                self.metrics
                    .faults
                    .shed_matches
                    .fetch_add(shed, Ordering::Relaxed);
                // shed objects still count as serviced for the throughput rate
                self.metrics.throughput.record(batch.len() as u64);
                return;
            }
        }
        let mut delivered = 0u64;
        let mut duplicates = 0u64;
        let objects = batch.len() as u64;
        for envelope in batch {
            let latency = envelope.latency();
            let sequence = envelope.sequence;
            for m in &envelope.payload {
                match self.note_object(m.object_id, sequence) {
                    Some(per_object) => {
                        if per_object.insert(m.query_id) {
                            delivered += 1;
                            if let Some(tx) = &self.delivery {
                                let _ = tx.send(*m);
                            }
                        } else {
                            duplicates += 1;
                        }
                    }
                    // evicted object: suppress rather than double-deliver
                    None => duplicates += 1,
                }
            }
            self.metrics.latency.record(latency);
        }
        self.metrics
            .matches_delivered
            .fetch_add(delivered, Ordering::Relaxed);
        self.metrics
            .duplicates_removed
            .fetch_add(duplicates, Ordering::Relaxed);
        self.metrics.throughput.record(objects);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_model::SubscriberId;
    use ps2stream_stream::{unbounded, Batch, Envelope};

    fn matches(object: u64, queries: &[u64]) -> MergerMessage {
        MergerMessage::Matches(Batch::of_one(Envelope::now(
            object,
            queries
                .iter()
                .map(|q| MatchResult::new(QueryId(*q), SubscriberId(*q), ObjectId(object)))
                .collect(),
        )))
    }

    #[test]
    fn merger_deduplicates_and_delivers() {
        let metrics = SystemMetrics::new(1);
        let (tx, rx) = unbounded::<MatchResult>();
        let mut merger = Merger::new(Arc::clone(&metrics), Some(tx), 100);
        let emitter = Emitter::sink();
        merger.process(matches(1, &[10, 11]), &emitter);
        // the same (object, query) pair arriving from another worker is a duplicate
        merger.process(matches(1, &[10, 12]), &emitter);
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
        let delivered: Vec<MatchResult> = rx.try_iter().collect();
        assert_eq!(delivered.len(), 3);
    }

    #[test]
    fn batched_matches_are_processed_per_object() {
        let metrics = SystemMetrics::new(1);
        let (tx, rx) = unbounded::<MatchResult>();
        let mut merger = Merger::new(Arc::clone(&metrics), Some(tx), 100);
        let mut batch = Batch::new();
        for object in 0..3u64 {
            batch.push(Envelope::now(
                object,
                vec![MatchResult::new(
                    QueryId(7),
                    SubscriberId(7),
                    ObjectId(object),
                )],
            ));
        }
        merger.process(MergerMessage::Matches(batch), &Emitter::sink());
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.throughput.count(), 3);
        assert_eq!(metrics.latency.count(), 3);
        assert_eq!(rx.try_iter().count(), 3);
    }

    #[test]
    fn merger_without_delivery_channel_still_counts() {
        let metrics = SystemMetrics::new(1);
        let mut merger = Merger::new(Arc::clone(&metrics), None, 100);
        merger.process(matches(5, &[1]), &Emitter::sink());
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eviction_bounds_memory_but_keeps_recent_objects_deduplicated() {
        let metrics = SystemMetrics::new(1);
        let mut merger = Merger::new(Arc::clone(&metrics), None, 2);
        let emitter = Emitter::sink();
        merger.process(matches(1, &[1]), &emitter);
        merger.process(matches(2, &[1]), &emitter);
        merger.process(matches(3, &[1]), &emitter); // evicts object 1
        assert!(merger.seen.len() <= 2);
        // object 3 is still tracked: a duplicate is suppressed
        merger.process(matches(3, &[1]), &emitter);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn late_matches_for_evicted_objects_never_double_deliver() {
        // Regression test: at capacity 1, a match batch for an object
        // arriving after that object was evicted used to re-create its dedup
        // entry and re-deliver pairs that had already gone out, so the
        // metrics and the subscriber channel disagreed.
        let metrics = SystemMetrics::new(1);
        let (tx, rx) = unbounded::<MatchResult>();
        let mut merger = Merger::new(Arc::clone(&metrics), Some(tx), 1);
        let emitter = Emitter::sink();
        merger.process(matches(1, &[10]), &emitter); // delivered
        merger.process(matches(2, &[10]), &emitter); // delivered; evicts object 1
        merger.process(matches(1, &[10]), &emitter); // late duplicate for evicted object
        merger.process(matches(1, &[11]), &emitter); // late *new* match: suppressed too
        let delivered: Vec<MatchResult> = rx.try_iter().collect();
        assert_eq!(delivered.len(), 2, "no pair may be delivered twice");
        assert_eq!(
            metrics.matches_delivered.load(Ordering::Relaxed),
            delivered.len() as u64,
            "deliver-count metric must agree with the subscriber channel"
        );
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 2);
        // the dedup window itself stays bounded
        assert!(merger.seen.len() <= 1);
    }

    #[test]
    fn eviction_guard_memory_stays_bounded_over_a_long_run() {
        // ROADMAP item: the old resurrection guard was a HashSet holding
        // every evicted object id, growing with the run. The watermark
        // replacement must keep the *whole* dedup state bounded by
        // `capacity` while still never double-delivering across eviction.
        let metrics = SystemMetrics::new(1);
        let (tx, rx) = unbounded::<MatchResult>();
        let capacity = 4;
        let mut merger = Merger::new(Arc::clone(&metrics), Some(tx), capacity);
        let emitter = Emitter::sink();
        let total_objects = 1_000u64;
        for object in 1..=total_objects {
            // every batch duplicated: the second copy must always be
            // suppressed, whether the entry is live or evicted
            merger.process(matches(object, &[7]), &emitter);
            merger.process(matches(object, &[7]), &emitter);
            // sporadic very late traffic for long-evicted objects
            if object % 97 == 0 {
                merger.process(matches(object / 2, &[7]), &emitter);
            }
            assert!(
                merger.tracked_objects() <= capacity,
                "dedup entries bounded"
            );
            assert!(merger.order.len() <= capacity, "eviction FIFO bounded");
        }
        let delivered: Vec<MatchResult> = rx.try_iter().collect();
        let mut unique: HashSet<(QueryId, ObjectId)> = HashSet::new();
        for m in &delivered {
            assert!(
                unique.insert((m.query_id, m.object_id)),
                "pair {m:?} delivered twice across eviction"
            );
        }
        // every object's first batch arrived in sequence order, so nothing
        // was suppressed by the watermark spuriously
        assert_eq!(delivered.len() as u64, total_objects);
        assert_eq!(
            metrics.matches_delivered.load(Ordering::Relaxed),
            total_objects
        );
    }

    #[test]
    fn overload_shed_raises_the_watermark_and_keeps_dedup_sound() {
        let metrics = SystemMetrics::new(1);
        let (tx, rx) = unbounded::<MatchResult>();
        let (match_tx, match_rx) = unbounded::<MergerMessage>();
        let depth = match_rx.depth_handle();
        let mut merger = Merger::new(Arc::clone(&metrics), Some(tx), 100).with_overload(depth, 0);
        let emitter = Emitter::sink();
        // a message waits behind the one being processed → backlog 1 > 0 → shed
        match_tx.send(matches(99, &[1])).unwrap();
        merger.process(matches(1, &[10]), &emitter);
        assert_eq!(metrics.faults.shed_matches.load(Ordering::Relaxed), 1);
        assert!(rx.try_recv().is_err(), "the shed match was not delivered");
        // the backlog drains → merging resumes
        let backlog = match_rx.recv().unwrap();
        merger.process(backlog, &emitter);
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 1);
        // a retransmitted copy of the shed match falls behind the raised
        // watermark: suppressed as late traffic, never delivered as new
        merger.process(matches(1, &[10]), &emitter);
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_disconnect_mid_stream_neither_hangs_nor_double_delivers() {
        // Two workers feed the same merger input channel; one dies (drops
        // its sender) mid-stream. The merger's run loop must terminate once
        // the survivor also finishes — not hang — and matches the dead
        // worker already reported must still be deduplicated.
        let metrics = SystemMetrics::new(1);
        let (delivery_tx, delivery_rx) = unbounded::<MatchResult>();
        let (tx_a, rx) = unbounded::<MergerMessage>();
        let tx_b = tx_a.clone();
        let thread_metrics = Arc::clone(&metrics);
        let handle = std::thread::spawn(move || {
            let mut merger = Merger::new(thread_metrics, Some(delivery_tx), 100);
            let emitter = Emitter::sink();
            for message in rx.iter() {
                merger.process(message, &emitter);
            }
        });
        // worker A delivers two matches, then disconnects mid-stream
        tx_a.send(matches(1, &[10, 11])).unwrap();
        drop(tx_a);
        // worker B (replicated queries) re-reports one of A's matches and
        // adds a new one, then finishes normally
        tx_b.send(matches(1, &[10])).unwrap();
        tx_b.send(matches(2, &[10])).unwrap();
        drop(tx_b);
        handle.join().expect("the merger run loop must terminate");
        let delivered: Vec<MatchResult> = delivery_rx.try_iter().collect();
        let mut unique: HashSet<(QueryId, ObjectId)> = HashSet::new();
        for m in &delivered {
            assert!(
                unique.insert((m.query_id, m.object_id)),
                "pair {m:?} delivered twice across the disconnect"
            );
        }
        assert_eq!(delivered.len(), 3);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn watermark_suppresses_only_late_sequences() {
        // An out-of-order *new* object above the watermark must still be
        // admitted after evictions; one at/below it is treated as late.
        let metrics = SystemMetrics::new(1);
        let mut merger = Merger::new(Arc::clone(&metrics), None, 1);
        let emitter = Emitter::sink();
        merger.process(matches(10, &[1]), &emitter); // seq 10, delivered
        merger.process(matches(20, &[1]), &emitter); // evicts seq 10 → watermark 10
        merger.process(matches(15, &[1]), &emitter); // seq 15 > 10: admitted
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 3);
        // seq 5 ≤ watermark (now ≥ 10): suppressed as late traffic
        merger.process(matches(5, &[1]), &emitter);
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
    }
}
