//! The merger executor.
//!
//! Workers may produce the same (query, object) match more than once when a
//! query is replicated on several workers (space partitioning duplicates
//! queries across region boundaries, the handover of the global adjustment
//! temporarily duplicates them across routing tables). The merger removes
//! those duplicates and delivers the remaining results to the subscribers
//! (Section III-B).

use crate::messages::MergerMessage;
use crate::metrics::SystemMetrics;
use ps2stream_model::{MatchResult, ObjectId, QueryId};
use ps2stream_stream::{Emitter, Operator, Sender};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A merger executor.
pub struct Merger {
    metrics: Arc<SystemMetrics>,
    /// Optional delivery channel towards the subscribers (tests and examples
    /// consume matches from here).
    delivery: Option<Sender<MatchResult>>,
    /// Recently seen (object → matched queries) used for deduplication.
    seen: HashMap<ObjectId, HashSet<QueryId>>,
    /// FIFO of objects for bounded-memory eviction.
    order: VecDeque<ObjectId>,
    /// Maximum number of objects tracked for deduplication.
    capacity: usize,
}

impl Merger {
    /// Creates a merger tracking up to `capacity` recent objects for
    /// deduplication.
    pub fn new(
        metrics: Arc<SystemMetrics>,
        delivery: Option<Sender<MatchResult>>,
        capacity: usize,
    ) -> Self {
        Self {
            metrics,
            delivery,
            seen: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn note_object(&mut self, object: ObjectId) -> &mut HashSet<QueryId> {
        if !self.seen.contains_key(&object) {
            if self.order.len() >= self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.seen.remove(&evicted);
                }
            }
            self.order.push_back(object);
            self.seen.insert(object, HashSet::new());
        }
        self.seen.get_mut(&object).expect("just inserted")
    }
}

impl Operator for Merger {
    type In = MergerMessage;
    type Out = ();

    fn process(&mut self, input: MergerMessage, _emitter: &Emitter<()>) {
        let MergerMessage::Matches(envelope) = input;
        let latency = envelope.latency();
        let mut delivered = 0u64;
        let mut duplicates = 0u64;
        for m in &envelope.payload {
            let per_object = self.note_object(m.object_id);
            if per_object.insert(m.query_id) {
                delivered += 1;
                if let Some(tx) = &self.delivery {
                    let _ = tx.send(*m);
                }
            } else {
                duplicates += 1;
            }
        }
        self.metrics
            .matches_delivered
            .fetch_add(delivered, Ordering::Relaxed);
        self.metrics
            .duplicates_removed
            .fetch_add(duplicates, Ordering::Relaxed);
        self.metrics.latency.record(latency);
        self.metrics.throughput.record(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps2stream_model::SubscriberId;
    use ps2stream_stream::{unbounded, Envelope};

    fn matches(object: u64, queries: &[u64]) -> MergerMessage {
        MergerMessage::Matches(Envelope::now(
            object,
            queries
                .iter()
                .map(|q| MatchResult::new(QueryId(*q), SubscriberId(*q), ObjectId(object)))
                .collect(),
        ))
    }

    #[test]
    fn merger_deduplicates_and_delivers() {
        let metrics = SystemMetrics::new(1);
        let (tx, rx) = unbounded::<MatchResult>();
        let mut merger = Merger::new(Arc::clone(&metrics), Some(tx), 100);
        let emitter = Emitter::sink();
        merger.process(matches(1, &[10, 11]), &emitter);
        // the same (object, query) pair arriving from another worker is a duplicate
        merger.process(matches(1, &[10, 12]), &emitter);
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
        let delivered: Vec<MatchResult> = rx.try_iter().collect();
        assert_eq!(delivered.len(), 3);
    }

    #[test]
    fn merger_without_delivery_channel_still_counts() {
        let metrics = SystemMetrics::new(1);
        let mut merger = Merger::new(Arc::clone(&metrics), None, 100);
        merger.process(matches(5, &[1]), &Emitter::sink());
        assert_eq!(metrics.matches_delivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eviction_bounds_memory_but_keeps_recent_objects_deduplicated() {
        let metrics = SystemMetrics::new(1);
        let mut merger = Merger::new(Arc::clone(&metrics), None, 2);
        let emitter = Emitter::sink();
        merger.process(matches(1, &[1]), &emitter);
        merger.process(matches(2, &[1]), &emitter);
        merger.process(matches(3, &[1]), &emitter); // evicts object 1
        assert!(merger.seen.len() <= 2);
        // object 3 is still tracked: a duplicate is suppressed
        merger.process(matches(3, &[1]), &emitter);
        assert_eq!(metrics.duplicates_removed.load(Ordering::Relaxed), 1);
    }
}
