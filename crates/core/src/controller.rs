//! The dynamic load adjustment controller.
//!
//! The paper's dispatcher monitors the worker loads and, when the balance
//! constraint `L_max / L_min ≤ σ` is violated, triggers the local load
//! adjustment of Section V-A: the most loaded worker migrates cells to the
//! least loaded one. In this implementation the monitoring runs on a
//! dedicated controller thread that periodically polls the workers for their
//! per-cell load statistics, plans a migration with [`LocalAdjuster`], applies
//! the routing-table changes and instructs the workers to move their queries.

use crate::config::{AdjustmentConfig, SelectorKind};
use crate::messages::{WorkerMessage, WorkerStatsReport};
use crate::metrics::SystemMetrics;
use crate::supervisor::Supervisor;
use parking_lot::RwLock;
use ps2stream_balance::{
    DpSelector, GreedySelector, LocalAdjuster, LocalAdjusterConfig, MigrationMove,
    MigrationSelector, RandomSelector, SizeSelector, WorkerLoadInfo,
};
use ps2stream_model::WorkerId;
use ps2stream_partition::{CostConstants, RoutingTable};
use ps2stream_stream::{bounded, PollTask, Receiver, Sender, TaskPoll, TryRecvError};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_selector(kind: SelectorKind) -> Box<dyn MigrationSelector + Send> {
    match kind {
        SelectorKind::Dp => Box::new(DpSelector::default()),
        SelectorKind::Greedy => Box::new(GreedySelector),
        SelectorKind::Size => Box::new(SizeSelector),
        SelectorKind::Random => Box::new(RandomSelector::default()),
    }
}

/// The controller driving dynamic load adjustments for a running system.
pub struct AdjustmentController {
    config: AdjustmentConfig,
    costs: CostConstants,
    routing: Arc<RwLock<RoutingTable>>,
    workers: Vec<Sender<WorkerMessage>>,
    metrics: Arc<SystemMetrics>,
    stop: Arc<AtomicBool>,
    /// When set, a worker whose channel is disconnected or that misses the
    /// stats deadline is reported instead of being silently skipped.
    supervisor: Option<Arc<Supervisor>>,
}

impl AdjustmentController {
    /// Creates a controller.
    pub fn new(
        config: AdjustmentConfig,
        costs: CostConstants,
        routing: Arc<RwLock<RoutingTable>>,
        workers: Vec<Sender<WorkerMessage>>,
        metrics: Arc<SystemMetrics>,
        stop: Arc<AtomicBool>,
    ) -> Self {
        Self {
            config,
            costs,
            routing,
            workers,
            metrics,
            stop,
            supervisor: None,
        }
    }

    /// Arms supervisor reporting: disconnected worker channels become
    /// peer-death flags and stats-deadline misses become liveness suspects.
    pub fn with_supervisor(mut self, supervisor: Arc<Supervisor>) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Flags worker `worker` down on the supervisor (counted once).
    fn note_worker_down(&self, worker: usize) {
        if let Some(supervisor) = &self.supervisor {
            if supervisor.note_peer_down(worker) {
                self.metrics
                    .faults
                    .peer_disconnects
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Requests a load report from every worker: the shared first half of
    /// [`Self::collect_stats`] and the simulated [`ControllerTask`]. Returns
    /// the reply channel and the number of replies to expect; a worker whose
    /// channel is already disconnected is reported as peer death.
    fn request_stats(&self) -> (Receiver<WorkerStatsReport>, usize) {
        // One reply per worker, so a capacity of `workers.len()` means the
        // replying side can never block on this channel.
        let (tx, rx) = bounded::<WorkerStatsReport>(self.workers.len().max(1));
        let mut expected = 0usize;
        for (index, w) in self.workers.iter().enumerate() {
            if w.send(WorkerMessage::CollectStats { reply: tx.clone() })
                .is_ok()
            {
                expected += 1;
            } else {
                self.note_worker_down(index);
            }
        }
        (rx, expected)
    }

    /// Polls every worker for its load report. Workers that have already shut
    /// down simply do not answer; the call times out after a short grace
    /// period, and any shortfall is reported as liveness suspicion.
    fn collect_stats(&self) -> Vec<WorkerStatsReport> {
        let (rx, expected) = self.request_stats();
        let deadline = Instant::now() + Duration::from_millis(2_000);
        let mut out = Vec::with_capacity(expected);
        while out.len() < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(report) => out.push(report),
                Err(_) => break,
            }
        }
        if out.len() < expected {
            // a worker accepted the request but never answered: suspicious,
            // though not proof of death (it may just be saturated)
            self.metrics
                .faults
                .liveness_suspects
                .fetch_add((expected - out.len()) as u64, Ordering::Relaxed);
        }
        out.sort_by_key(|r| r.worker);
        out
    }

    /// Performs one adjustment round. Returns true if a migration was issued.
    pub fn adjust_once(&self, adjuster: &LocalAdjuster) -> bool {
        let reports = self.collect_stats();
        self.adjust_with_reports(adjuster, &reports)
    }

    /// The planning half of an adjustment round, fed with already-collected
    /// worker reports (sorted by worker id). Split out so the deterministic
    /// simulation backend can collect reports without blocking (see
    /// [`ControllerTask`]).
    pub fn adjust_with_reports(
        &self,
        adjuster: &LocalAdjuster,
        reports: &[WorkerStatsReport],
    ) -> bool {
        if reports.len() < 2 {
            return false;
        }
        let loads: Vec<f64> = reports.iter().map(|r| r.load.load(&self.costs)).collect();
        let Some((hi, lo)) = adjuster.detect_imbalance(&loads) else {
            return false;
        };
        let overloaded = WorkerLoadInfo {
            worker: reports[hi].worker,
            cells: reports[hi].cells.clone(),
        };
        let underloaded = WorkerLoadInfo {
            worker: reports[lo].worker,
            cells: reports[lo].cells.clone(),
        };
        let plan_start = Instant::now();
        let plan = adjuster.plan(&overloaded, &underloaded);
        self.metrics
            .migration
            .selection_time_us
            .fetch_add(plan_start.elapsed().as_micros() as u64, Ordering::Relaxed);
        if plan.is_empty() {
            return false;
        }
        self.metrics
            .migration
            .rounds
            .fetch_add(1, Ordering::Relaxed);
        self.apply_plan(&plan.moves);
        true
    }

    fn apply_plan(&self, moves: &[MigrationMove]) {
        for m in moves {
            match m {
                MigrationMove::WholeCell { cell, from, to } => {
                    {
                        let mut routing = self.routing.write();
                        routing.reassign_cell(*cell, *to);
                        self.arm_handover_barrier(*cell, *to);
                    }
                    self.send_migration(*from, *cell, None, *to);
                }
                MigrationMove::TextSplit {
                    cell,
                    from,
                    to,
                    terms,
                } => {
                    let term_set: HashSet<_> = terms.iter().copied().collect();
                    {
                        let mut routing = self.routing.write();
                        routing.split_cell_by_terms(*cell, &term_set, *to);
                        self.arm_handover_barrier(*cell, *to);
                    }
                    self.send_migration(*from, *cell, Some(terms.clone()), *to);
                }
                MigrationMove::MergeCell { cell, from, to } => {
                    // every term currently routed to `from` in this cell is
                    // reassigned (and its queries migrated) to `to`
                    let terms = {
                        let routing = self.routing.read();
                        routing
                            .cell_worker_terms(*cell)
                            .remove(from)
                            .unwrap_or_default()
                    };
                    let term_set: HashSet<_> = terms.iter().copied().collect();
                    let terms = if term_set.is_empty() {
                        None
                    } else {
                        Some(terms)
                    };
                    {
                        let mut routing = self.routing.write();
                        if term_set.is_empty() {
                            routing.reassign_cell(*cell, *to);
                        } else {
                            routing.split_cell_by_terms(*cell, &term_set, *to);
                        }
                        self.arm_handover_barrier(*cell, *to);
                    }
                    self.send_migration(*from, *cell, terms, *to);
                }
            }
        }
    }

    /// Arms the destination's hand-off barrier. Must be called **while the
    /// routing-table write lock is held**: dispatchers flush their routed
    /// batches before releasing the read lock, so every record routed by the
    /// updated table is enqueued at the destination strictly after this
    /// `CellPending` — the worker can therefore park those records until the
    /// migrated queries arrive, making the hand-off lossless.
    fn arm_handover_barrier(&self, cell: ps2stream_geo::CellId, to: WorkerId) {
        if let Some(tx) = self.workers.get(to.index()) {
            let _ = tx.send(WorkerMessage::CellPending { cell });
        }
    }

    fn send_migration(
        &self,
        from: WorkerId,
        cell: ps2stream_geo::CellId,
        terms: Option<Vec<ps2stream_text::TermId>>,
        to: WorkerId,
    ) {
        if let Some(tx) = self.workers.get(from.index()) {
            let _ = tx.send(WorkerMessage::MigrateCell { cell, terms, to });
        }
    }

    /// Builds the local adjuster configured for this controller.
    fn make_adjuster(&self) -> LocalAdjuster {
        LocalAdjuster::new(LocalAdjusterConfig {
            sigma: self.config.sigma,
            phase1_cells: self.config.phase1_cells,
            ..LocalAdjusterConfig::default()
        })
        .with_selector(build_selector(self.config.selector))
    }

    /// Runs the controller loop until the stop flag is raised (the blocking
    /// service used by the thread and cooperative-pool backends).
    pub fn run(self) {
        let adjuster = self.make_adjuster();
        let interval = Duration::from_millis(self.config.poll_interval_ms.max(1));
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(interval);
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            self.adjust_once(&adjuster);
        }
    }
}

/// The controller as a cooperative [`PollTask`] for the deterministic
/// simulation backend, where wall-clock polling would break reproducibility.
/// Time is replaced by scheduler polls: every
/// [`AdjustmentConfig::sim_poll_ticks`] polls of this task it requests the
/// worker stats, then gathers the replies non-blockingly over subsequent
/// polls and runs the same planning/apply path as the blocking loop —
/// migrations therefore land mid-stream at seed-determined points.
pub struct ControllerTask {
    controller: AdjustmentController,
    adjuster: LocalAdjuster,
    ticks: u64,
    phase: ControllerPhase,
}

enum ControllerPhase {
    /// Counting down scheduler polls to the next stats collection.
    Idle { polls_left: u64 },
    /// Stats requested; gathering replies without blocking.
    Collecting {
        reply: Receiver<WorkerStatsReport>,
        expected: usize,
        reports: Vec<WorkerStatsReport>,
    },
}

impl ControllerTask {
    /// Wraps a controller for the simulated substrate.
    pub fn new(controller: AdjustmentController) -> Self {
        let adjuster = controller.make_adjuster();
        let ticks = controller.config.sim_poll_ticks.max(1);
        Self {
            controller,
            adjuster,
            ticks,
            phase: ControllerPhase::Idle { polls_left: ticks },
        }
    }
}

impl PollTask for ControllerTask {
    fn poll(&mut self) -> TaskPoll {
        if self.controller.stop.load(Ordering::Relaxed) {
            return TaskPoll::Done;
        }
        match &mut self.phase {
            ControllerPhase::Idle { polls_left } => {
                if *polls_left > 0 {
                    *polls_left -= 1;
                    return TaskPoll::Blocked;
                }
                let (reply, expected) = self.controller.request_stats();
                self.phase = ControllerPhase::Collecting {
                    reply,
                    expected,
                    reports: Vec::with_capacity(expected),
                };
                TaskPoll::Progress
            }
            ControllerPhase::Collecting {
                reply,
                expected,
                reports,
            } => {
                let mut disconnected = false;
                loop {
                    match reply.try_recv() {
                        Ok(report) => reports.push(report),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                if reports.len() < *expected {
                    // A disconnected reply channel means some worker died
                    // between accepting the request and answering it: plan
                    // with the survivors rather than blocking forever.
                    if !disconnected {
                        return TaskPoll::Blocked;
                    }
                    self.controller
                        .metrics
                        .faults
                        .liveness_suspects
                        .fetch_add((*expected - reports.len()) as u64, Ordering::Relaxed);
                }
                let mut reports = std::mem::take(reports);
                reports.sort_by_key(|r| r.worker);
                self.controller
                    .adjust_with_reports(&self.adjuster, &reports);
                self.phase = ControllerPhase::Idle {
                    polls_left: self.ticks,
                };
                TaskPoll::Progress
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::WorkerStatsReport;
    use ps2stream_balance::CellLoadInfo;
    use ps2stream_geo::{CellId, Rect};
    use ps2stream_partition::{CellRouting, WorkerLoad};
    use ps2stream_stream::unbounded;
    use ps2stream_text::TermStats;

    fn routing_two_workers() -> RoutingTable {
        let grid = ps2stream_geo::UniformGrid::new(Rect::from_coords(0.0, 0.0, 16.0, 16.0), 4, 4);
        let cells = vec![CellRouting::Single(WorkerId(0)); grid.num_cells()];
        RoutingTable::new(grid, cells, 2, Arc::new(TermStats::new()), "test")
    }

    fn fake_worker(
        report: WorkerStatsReport,
    ) -> (
        Sender<WorkerMessage>,
        std::thread::JoinHandle<Vec<WorkerMessage>>,
    ) {
        let (tx, rx) = unbounded::<WorkerMessage>();
        let handle = std::thread::spawn(move || {
            let mut control_messages = Vec::new();
            while let Ok(msg) = rx.recv() {
                match msg {
                    WorkerMessage::CollectStats { reply } => {
                        let _ = reply.send(report.clone());
                    }
                    WorkerMessage::Shutdown => break,
                    other => control_messages.push(other),
                }
            }
            control_messages
        });
        (tx, handle)
    }

    #[test]
    fn controller_migrates_from_overloaded_to_underloaded_worker() {
        let metrics = SystemMetrics::new(2);
        let routing = Arc::new(RwLock::new(routing_two_workers()));
        // worker 0 heavily loaded with two cells; worker 1 idle
        let heavy = WorkerStatsReport {
            worker: WorkerId(0),
            load: WorkerLoad::new(1_000, 100, 0),
            cells: vec![
                CellLoadInfo {
                    cell: CellId::new(0, 0),
                    objects: 500,
                    queries: 50,
                    size: 5_000,
                    text_split: false,
                    term_loads: vec![],
                },
                CellLoadInfo {
                    cell: CellId::new(1, 0),
                    objects: 500,
                    queries: 50,
                    size: 5_000,
                    text_split: false,
                    term_loads: vec![],
                },
            ],
            indexed_queries: 100,
            memory_bytes: 10_000,
        };
        let idle = WorkerStatsReport {
            worker: WorkerId(1),
            load: WorkerLoad::new(10, 1, 0),
            cells: vec![],
            indexed_queries: 1,
            memory_bytes: 100,
        };
        let (tx0, h0) = fake_worker(heavy);
        let (tx1, h1) = fake_worker(idle);
        let stop = Arc::new(AtomicBool::new(false));
        let controller = AdjustmentController::new(
            AdjustmentConfig::default(),
            CostConstants::default(),
            Arc::clone(&routing),
            vec![tx0.clone(), tx1.clone()],
            Arc::clone(&metrics),
            stop,
        );
        let adjuster = LocalAdjuster::new(LocalAdjusterConfig::default());
        assert!(controller.adjust_once(&adjuster));
        assert_eq!(metrics.migration.rounds.load(Ordering::Relaxed), 1);

        // shut the fake workers down and inspect the control traffic
        tx0.send(WorkerMessage::Shutdown).unwrap();
        tx1.send(WorkerMessage::Shutdown).unwrap();
        let to_w0 = h0.join().unwrap();
        let to_w1 = h1.join().unwrap();
        assert!(
            to_w0
                .iter()
                .any(|m| matches!(m, WorkerMessage::MigrateCell { to, .. } if *to == WorkerId(1))),
            "worker 0 should have been told to migrate a cell"
        );
        // the destination gets exactly the hand-off barrier(s), armed before
        // the source is told to migrate
        assert!(!to_w1.is_empty());
        assert!(to_w1
            .iter()
            .all(|m| matches!(m, WorkerMessage::CellPending { .. })));
        // the routing table now sends at least one cell to worker 1
        let routing = routing.read();
        let moved = routing.grid().all_cells().any(
            |c| matches!(routing.cell_routing(c), CellRouting::Single(w) if *w == WorkerId(1)),
        );
        assert!(moved);
    }

    #[test]
    fn controller_does_nothing_when_balanced() {
        let metrics = SystemMetrics::new(2);
        let routing = Arc::new(RwLock::new(routing_two_workers()));
        let report = |w: u32| WorkerStatsReport {
            worker: WorkerId(w),
            load: WorkerLoad::new(100, 10, 0),
            cells: vec![],
            indexed_queries: 10,
            memory_bytes: 1_000,
        };
        let (tx0, h0) = fake_worker(report(0));
        let (tx1, h1) = fake_worker(report(1));
        let stop = Arc::new(AtomicBool::new(false));
        let controller = AdjustmentController::new(
            AdjustmentConfig::default(),
            CostConstants::default(),
            routing,
            vec![tx0.clone(), tx1.clone()],
            Arc::clone(&metrics),
            stop,
        );
        let adjuster = LocalAdjuster::new(LocalAdjusterConfig::default());
        assert!(!controller.adjust_once(&adjuster));
        assert_eq!(metrics.migration.rounds.load(Ordering::Relaxed), 0);
        tx0.send(WorkerMessage::Shutdown).unwrap();
        tx1.send(WorkerMessage::Shutdown).unwrap();
        h0.join().unwrap();
        h1.join().unwrap();
    }

    #[test]
    fn dead_and_silent_workers_are_accounted_by_the_supervisor() {
        let metrics = SystemMetrics::new(2);
        let supervisor = Supervisor::new(2, false);
        // worker 0's channel is already disconnected
        let (dead_tx, dead_rx) = unbounded::<WorkerMessage>();
        drop(dead_rx);
        // worker 1 accepts the stats request but never answers (it drops the
        // reply channel), so the collection falls short of `expected`
        let (silent_tx, silent_rx) = unbounded::<WorkerMessage>();
        let silent = std::thread::spawn(move || {
            while let Ok(msg) = silent_rx.recv() {
                match msg {
                    WorkerMessage::CollectStats { reply } => drop(reply),
                    WorkerMessage::Shutdown => break,
                    _ => {}
                }
            }
        });
        let stop = Arc::new(AtomicBool::new(false));
        let controller = AdjustmentController::new(
            AdjustmentConfig::default(),
            CostConstants::default(),
            Arc::new(RwLock::new(routing_two_workers())),
            vec![dead_tx, silent_tx.clone()],
            Arc::clone(&metrics),
            stop,
        )
        .with_supervisor(Arc::clone(&supervisor));
        let reports = controller.collect_stats();
        assert!(reports.is_empty());
        assert!(supervisor.is_down(0), "the dead channel is peer death");
        assert!(!supervisor.is_down(1), "silence alone is not death");
        assert_eq!(metrics.faults.peer_disconnects.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.faults.liveness_suspects.load(Ordering::Relaxed), 1);
        silent_tx.send(WorkerMessage::Shutdown).unwrap();
        silent.join().unwrap();
    }

    #[test]
    fn selector_factory_builds_all_kinds() {
        for kind in [
            SelectorKind::Dp,
            SelectorKind::Greedy,
            SelectorKind::Size,
            SelectorKind::Random,
        ] {
            let s = build_selector(kind);
            assert_eq!(s.name(), kind.name());
        }
    }
}
